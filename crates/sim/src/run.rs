//! Running one workload inside one VM under one hypervisor.

use crate::cache::{BoundEnv, CellOutcome, LedgerKey, TraceCache};
use crate::compile::GuestLedger;
use crate::noise::noisy;
use dram::{DimmProfile, DramSystem, DramSystemBuilder};
use memctrl::{CompiledTrace, MemOp, MemoryController, TraceResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use siloz::{BackingBlock, Hypervisor, HypervisorKind, SilozConfig, SilozError, VmSpec};
use std::sync::Arc;
use telemetry::Registry;
use workloads::{Metric, WorkloadGen};

/// Precomputed guest-offset → host-physical translation over a VM's
/// unmediated backing blocks.
///
/// When total RAM and the block size are both powers of two — the common
/// case for every geometry in this repo — the per-op wrap/index/offset
/// chain reduces to one mask, one shift, and one mask instead of three
/// 64-bit divisions.
pub(crate) struct HpaMap {
    blocks: Vec<BackingBlock>,
    ram_bytes: u64,
    block_bytes: u64,
    /// `(ram_mask, blk_shift, blk_mask)` when both sizes are powers of two.
    pow2: Option<(u64, u32, u64)>,
}

impl HpaMap {
    pub(crate) fn new(blocks: Vec<BackingBlock>) -> Self {
        assert!(!blocks.is_empty());
        let block_bytes = blocks[0].bytes();
        let ram_bytes: u64 = blocks.iter().map(|b| b.bytes()).sum();
        let pow2 = (ram_bytes.is_power_of_two() && block_bytes.is_power_of_two())
            .then(|| (ram_bytes - 1, block_bytes.trailing_zeros(), block_bytes - 1));
        Self {
            blocks,
            ram_bytes,
            block_bytes,
            pow2,
        }
    }

    /// Translates a guest offset (wrapped into RAM) to a host physical
    /// address.
    #[inline]
    pub(crate) fn to_hpa(&self, guest: u64) -> u64 {
        if let Some((ram_mask, blk_shift, blk_mask)) = self.pow2 {
            let guest = guest & ram_mask;
            self.blocks[(guest >> blk_shift) as usize].hpa() + (guest & blk_mask)
        } else {
            let guest = guest % self.ram_bytes;
            let idx = (guest / self.block_bytes) as usize;
            self.blocks[idx].hpa() + guest % self.block_bytes
        }
    }
}

/// Shape of one tenant's physical trace: how many guest ops to draw, how
/// many vCPU streams to deal them across, the global thread-id base those
/// streams start at (so several tenants' traces can interleave through one
/// controller without colliding), and the RNG seed for the draw.
#[derive(Debug, Clone, Copy)]
pub struct TraceShape {
    /// Guest operations to generate.
    pub ops: usize,
    /// vCPU streams the ops are dealt to (chains stay within a stream).
    pub threads: u16,
    /// First global controller thread id of this tenant's streams.
    pub thread_base: u16,
    /// Seed for the workload draw.
    pub seed: u64,
}

/// Builds one tenant's physical [`MemOp`] trace: draws `shape.ops` guest
/// operations from `workload`, deals each logical request (a chain starting
/// at a non-dependent op) round-robin to the tenant's vCPU streams, and
/// resolves guest offsets through the VM's actual unmediated backing.
///
/// Shared by the colocation experiment and the fleet simulator's per-VM
/// load generators.
///
/// # Errors
///
/// Fails if `vm` is unknown to `hv`.
pub fn vm_trace(
    hv: &Hypervisor,
    vm: siloz::VmHandle,
    workload: &mut dyn WorkloadGen,
    shape: &TraceShape,
) -> Result<Vec<MemOp>, SilozError> {
    let hpa_map = HpaMap::new(hv.vm_unmediated_backing(vm)?);
    let mut rng = StdRng::seed_from_u64(shape.seed);
    let ledger = GuestLedger::generate(workload, shape.ops, shape.threads, &mut rng);
    Ok(ledger.expand_mem_ops(&hpa_map, shape.thread_base))
}

/// Binds an already-compiled [`GuestLedger`] to a VM's concrete backing,
/// emitting a pre-decoded replay program for
/// [`MemoryController::run_compiled`]. The fleet's load generators compile
/// each tenant's ledger once and re-bind it here whenever the tenant's
/// backing changes (respawn, expansion, defrag migration).
///
/// # Errors
///
/// Fails if `vm` is unknown to `hv`.
pub fn vm_compiled(
    hv: &Hypervisor,
    vm: siloz::VmHandle,
    ledger: &GuestLedger,
    thread_base: u16,
) -> Result<CompiledTrace, SilozError> {
    let hpa_map = HpaMap::new(hv.vm_unmediated_backing(vm)?);
    Ok(ledger.bind(&hpa_map, hv.decoder().clone(), thread_base))
}

/// Simulation parameters shared across experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Memory operations replayed per measurement.
    pub ops: usize,
    /// Repeats (independent seeds) per configuration, for error bars.
    pub repeats: u32,
    /// VM memory size (must cover the workloads' working sets).
    pub vm_memory: u64,
    /// VM vCPUs.
    pub vcpus: u32,
    /// Workload working-set size.
    pub working_set: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            ops: 120_000,
            repeats: 5,
            vm_memory: 3 << 30,
            vcpus: 40,
            working_set: 256 << 20,
        }
    }
}

impl SimConfig {
    /// A smaller configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            ops: 20_000,
            repeats: 3,
            vm_memory: 256 << 20,
            vcpus: 4,
            working_set: 32 << 20,
        }
    }
}

/// Domain separator for the measurement-noise RNG stream (`"noise_v1"`),
/// keeping noise draws independent of the workload draw even when both
/// halves of a [`RunSeeds`] carry the same value.
pub const NOISE_DOMAIN: u64 = 0x6e6f_6973_655f_7631;

/// The two independent random streams of one measurement cell.
///
/// The *trace* seed drives the workload draw (which guest ops run); the
/// *noise* seed drives the run-to-run measurement noise. Splitting them
/// lets paired configurations share one trace draw — common random numbers
/// across a comparison, and one [`GuestLedger`] compile instead of two —
/// while still sampling independent nuisance factors per measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSeeds {
    /// Seed for the workload draw (and substrate preload).
    pub trace: u64,
    /// Seed for the measurement-noise stream.
    pub noise: u64,
}

impl RunSeeds {
    /// Both streams keyed by one seed — the single-seed entry points'
    /// behavior.
    #[must_use]
    pub fn uniform(seed: u64) -> Self {
        Self {
            trace: seed,
            noise: seed,
        }
    }

    fn noise_rng(self) -> StdRng {
        StdRng::seed_from_u64(self.noise ^ NOISE_DOMAIN)
    }
}

/// How a measurement cell replays its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Replay {
    /// Generate, translate, and decode per cell; replay via
    /// [`MemoryController::run_trace`]. The equivalence oracle.
    Direct,
    /// Reuse compiled ledgers, pooled substrates, booted environments, and
    /// bound programs through a [`TraceCache`]; replay via
    /// [`MemoryController::run_compiled`]. Bit-identical to [`Self::Direct`].
    Compiled,
}

/// One measured sample: execution time in milliseconds (ExecTime) or
/// bandwidth in GiB/s (Throughput).
pub fn run_workload(
    config: &SilozConfig,
    kind: HypervisorKind,
    workload: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
) -> Result<f64, SilozError> {
    run_workload_observed(config, kind, workload, sim, seed, &Registry::new())
}

/// [`run_workload`] that also exports stack-wide telemetry into `reg`.
///
/// After the trace replay, the memory controller's totals land in the
/// `ctrl` child, the device model's in `dram`, and the hypervisor's VM /
/// EPT accounting in `hv`. All exported metrics merge by addition, so many
/// concurrent runs can share one registry and the merged snapshot is
/// independent of scheduling order.
pub fn run_workload_observed(
    config: &SilozConfig,
    kind: HypervisorKind,
    workload: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
    reg: &Registry,
) -> Result<f64, SilozError> {
    workload_cell(
        config,
        kind,
        CellWorkload::Ready(workload),
        sim,
        RunSeeds::uniform(seed),
        Replay::Direct,
        None,
        None,
        reg,
    )
}

/// [`run_workload`] through the trace compiler: the sample is bit-identical
/// to the direct path, but ledgers, substrates, booted environments, and
/// bound programs are shared through `cache` across every cell that can
/// reuse them.
pub fn run_workload_compiled(
    config: &SilozConfig,
    kind: HypervisorKind,
    workload: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
    cache: &TraceCache,
) -> Result<f64, SilozError> {
    run_workload_compiled_observed(config, kind, workload, sim, seed, cache, &Registry::new())
}

/// [`run_workload_compiled`] that also exports stack-wide telemetry into
/// `reg` — the same `ctrl`/`dram`/`hv` children, with identical values, as
/// [`run_workload_observed`].
pub fn run_workload_compiled_observed(
    config: &SilozConfig,
    kind: HypervisorKind,
    workload: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
    cache: &TraceCache,
    reg: &Registry,
) -> Result<f64, SilozError> {
    workload_cell(
        config,
        kind,
        CellWorkload::Ready(workload),
        sim,
        RunSeeds::uniform(seed),
        Replay::Compiled,
        Some(cache),
        None,
        reg,
    )
}

/// Boots the measurement environment for one configuration: hypervisor
/// with an invulnerable DIMM (disturbance bookkeeping off — allocation
/// policy is what is being measured), one VM, and its guest→HPA map.
fn boot_env(
    config: &SilozConfig,
    kind: HypervisorKind,
    sim: &SimConfig,
) -> Result<BoundEnv, SilozError> {
    let dram = DramSystemBuilder::new(config.geometry)
        .profiles(vec![DimmProfile::invulnerable()])
        .build();
    let mut hv = Hypervisor::boot_with(config.clone(), kind, dram, dram_addr::RepairMap::new())?;
    let vm = hv.create_vm(VmSpec::new("perf-vm", sim.vcpus, sim.vm_memory))?;
    let hpa = HpaMap::new(hv.vm_unmediated_backing(vm)?);
    Ok(BoundEnv { hv, hpa })
}

/// Converts a replay result into the cell's sample and exports telemetry.
fn finish_cell(
    metric: Metric,
    result: &TraceResult,
    ctrl: &MemoryController,
    env: &BoundEnv,
    seeds: RunSeeds,
    reg: &Registry,
) -> f64 {
    ctrl.export_telemetry(&reg.child("ctrl"));
    env.hv.dram().export_telemetry(&reg.child("dram"));
    env.hv.export_telemetry(&reg.child("hv"));
    let raw = match metric {
        Metric::ExecTime => result.elapsed_ms(),
        Metric::Throughput => result.bandwidth_gib_s(),
    };
    noisy(raw, &mut seeds.noise_rng())
}

/// A cell's workload: either a generator the caller already built (the
/// public single-cell entry points) or a deferred build (grid drivers).
/// Compiled cells only invoke a deferred build when the ledger for the
/// cell's draw is not already cached — on a warm cache, no workload (or
/// substrate preload) is constructed at all.
pub(crate) enum CellWorkload<'a> {
    /// A ready generator; its identity is read off the instance.
    Ready(&'a mut dyn WorkloadGen),
    /// Identity known up front, generator built on demand.
    Deferred {
        /// [`WorkloadGen::name`] of the workload `build` produces.
        name: String,
        /// [`WorkloadGen::working_set`] of the built workload.
        working_set: u64,
        /// [`WorkloadGen::metric`] of the built workload.
        metric: Metric,
        /// Builds the generator (invoked at most once).
        build: Box<dyn FnOnce() -> Box<dyn WorkloadGen> + 'a>,
    },
}

impl CellWorkload<'_> {
    /// `(name, working_set, metric)` without forcing a deferred build.
    fn identity(&self) -> (String, u64, Metric) {
        match self {
            CellWorkload::Ready(w) => (w.name(), w.working_set(), w.metric()),
            CellWorkload::Deferred {
                name,
                working_set,
                metric,
                ..
            } => (name.clone(), *working_set, *metric),
        }
    }
}

/// One measurement cell: both the direct path and the compiled path, which
/// the equivalence battery pins bit-identical (samples *and* exported
/// telemetry).
///
/// `defense` optionally installs a mitigation backend's controller hook
/// for the replay (the arena grid's axis). Backends without a controller
/// hook (`None`, `Siloz`) leave the cell byte-for-byte identical to an
/// undefended one — `Siloz`'s defense is the placement `kind` itself.
#[allow(clippy::too_many_arguments)]
pub(crate) fn workload_cell(
    config: &SilozConfig,
    kind: HypervisorKind,
    workload: CellWorkload<'_>,
    sim: &SimConfig,
    seeds: RunSeeds,
    replay: Replay,
    cache: Option<&TraceCache>,
    defense: Option<mitigation::Backend>,
    reg: &Registry,
) -> Result<f64, SilozError> {
    // Deal each logical request (a chain starting at a non-dependent op) to
    // the next vCPU, as a multi-threaded server would; dependencies stay
    // within their thread.
    let threads = sim.vcpus.clamp(1, 16) as u16;
    let (name, working_set, metric) = workload.identity();
    match replay {
        Replay::Direct => {
            let mut built;
            let workload: &mut dyn WorkloadGen = match workload {
                CellWorkload::Ready(w) => w,
                CellWorkload::Deferred { build, .. } => {
                    built = build();
                    built.as_mut()
                }
            };
            let mut env = boot_env(config, kind, sim)?;
            let mut rng = StdRng::seed_from_u64(seeds.trace);
            let ledger = GuestLedger::generate(workload, sim.ops, threads, &mut rng);
            let trace = ledger.expand_mem_ops(&env.hpa, 0);
            let mut ctrl = MemoryController::new(env.hv.decoder().clone()).without_physics();
            if let Some(hook) = defense.and_then(mitigation::Backend::controller_hook) {
                ctrl = ctrl.with_mitigation(hook);
            }
            let result = ctrl.run_trace(env.hv.dram_mut(), trace);
            Ok(finish_cell(metric, &result, &ctrl, &env, seeds, reg))
        }
        Replay::Compiled => {
            let local;
            let cache = match cache {
                Some(shared) => shared,
                None => {
                    local = TraceCache::new();
                    &local
                }
            };
            let ledger_key: LedgerKey = (name, working_set, sim.ops, threads, seeds.trace);
            // Environment identity covers every configuration axis a cell
            // can vary: hypervisor kind, VM shape, the full config
            // (geometry, subarray size, policy toggles), and — when one is
            // installed — the controller defense, since a hooked replay's
            // outcome is not interchangeable with an undefended one.
            let hook_tag = match defense {
                Some(d) if d.controller_hook().is_some() => d.name(),
                _ => "",
            };
            let env_key = format!(
                "{kind:?}|{}|{}|{config:?}|{hook_tag}",
                sim.vm_memory, sim.vcpus
            );
            let env = cache.env(&env_key, || boot_env(config, kind, sim))?;
            // Cells replay with physics off against a fresh controller and
            // scratch device, so the whole outcome is a pure function of
            // (ledger, env): a recurring measurement is never re-simulated.
            let outcome = cache.replay(&ledger_key, &env_key, || {
                let ledger = cache.ledger(&ledger_key, || {
                    let mut built;
                    let workload: &mut dyn WorkloadGen = match workload {
                        CellWorkload::Ready(w) => w,
                        CellWorkload::Deferred { build, .. } => {
                            built = build();
                            built.as_mut()
                        }
                    };
                    let mut rng = StdRng::seed_from_u64(seeds.trace);
                    // Substrate pool: workloads sharing one load phase
                    // (e.g. all six YCSB mixes over one store size) adopt
                    // the pooled post-load snapshot and resume the pooled
                    // RNG, skipping the preload while drawing
                    // byte-identical traces.
                    if let Some(substrate) = workload.substrate_key() {
                        let pool_key = (substrate, seeds.trace);
                        if let Some((snap, loaded_rng)) = cache.substrate(&pool_key) {
                            workload.adopt_substrate(&snap);
                            rng = loaded_rng;
                        } else {
                            workload.preload(&mut rng);
                            if let Some(snap) = workload.export_substrate() {
                                cache.store_substrate(pool_key, snap, rng.clone());
                            }
                        }
                    }
                    Arc::new(GuestLedger::generate(workload, sim.ops, threads, &mut rng))
                });
                let program = cache.program(&ledger_key, &env_key, || {
                    Arc::new(ledger.bind(&env.hpa, env.hv.decoder().clone(), 0))
                });
                // The env is shared and immutable; replay drives a
                // per-cell scratch device (never touched with physics
                // disabled).
                let mut scratch = DramSystem::new(config.geometry);
                let mut ctrl = MemoryController::new(env.hv.decoder().clone()).without_physics();
                if let Some(hook) = defense.and_then(mitigation::Backend::controller_hook) {
                    ctrl = ctrl.with_mitigation(hook);
                }
                let result = ctrl.run_compiled(&mut scratch, &program);
                Arc::new(CellOutcome { result, ctrl })
            });
            Ok(finish_cell(
                metric,
                &outcome.result,
                &outcome.ctrl,
                &env,
                seeds,
                reg,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mlc::{Mlc, MlcKind};
    use workloads::ycsb::{Ycsb, YcsbKind};

    fn block(gpa: u64, frame: u64, order: u8) -> BackingBlock {
        BackingBlock {
            gpa,
            frame,
            order,
            node: numa::NodeId(0),
        }
    }

    #[test]
    fn hpa_map_fast_path_matches_division_chain() {
        // 4 × 2 MiB blocks: RAM and block size both powers of two, so the
        // mask/shift fast path is taken; check it against the plain
        // modulo/divide chain it replaces.
        let blocks: Vec<BackingBlock> = (0..4)
            .map(|i| block(i << 21, 0x4000 + i * 512, 9))
            .collect();
        let map = HpaMap::new(blocks.clone());
        assert!(map.pow2.is_some());
        let ram: u64 = blocks.iter().map(|b| b.bytes()).sum();
        let bb = blocks[0].bytes();
        for guest in (0..4 * ram).step_by(4097) {
            let g = guest % ram;
            let expect = blocks[(g / bb) as usize].hpa() + g % bb;
            assert_eq!(map.to_hpa(guest), expect, "guest {guest:#x}");
        }
    }

    #[test]
    fn hpa_map_non_pow2_ram_uses_division_chain() {
        // 3 blocks: RAM is 6 MiB (not a power of two) — generic path.
        let blocks: Vec<BackingBlock> = (0..3)
            .map(|i| block(i << 21, 0x8000 + i * 512, 9))
            .collect();
        let map = HpaMap::new(blocks.clone());
        assert!(map.pow2.is_none());
        let ram: u64 = blocks.iter().map(|b| b.bytes()).sum();
        let bb = blocks[0].bytes();
        for guest in (0..4 * ram).step_by(8191) {
            let g = guest % ram;
            let expect = blocks[(g / bb) as usize].hpa() + g % bb;
            assert_eq!(map.to_hpa(guest), expect, "guest {guest:#x}");
        }
    }

    #[test]
    fn exec_time_sample_is_positive_and_repeatable() {
        let config = SilozConfig::mini();
        let sim = SimConfig {
            vm_memory: 256 << 20,
            working_set: 16 << 20,
            ops: 10_000,
            repeats: 1,
            vcpus: 2,
        };
        let mut wl = Ycsb::new(YcsbKind::C, sim.working_set);
        let a = run_workload(&config, HypervisorKind::Siloz, &mut wl, &sim, 1).unwrap();
        assert!(a > 0.0);
        let mut wl2 = Ycsb::new(YcsbKind::C, sim.working_set);
        let b = run_workload(&config, HypervisorKind::Siloz, &mut wl2, &sim, 1).unwrap();
        assert_eq!(a, b, "same seed, same sample");
    }

    #[test]
    fn throughput_sample_reports_bandwidth() {
        let config = SilozConfig::mini();
        let sim = SimConfig {
            vm_memory: 128 << 20,
            working_set: 16 << 20,
            ops: 20_000,
            repeats: 1,
            vcpus: 2,
        };
        let mut wl = Mlc::new(MlcKind::Reads, sim.working_set);
        let bw = run_workload(&config, HypervisorKind::Baseline, &mut wl, &sim, 2).unwrap();
        assert!(bw > 1.0, "streaming reads exceed 1 GiB/s: {bw}");
    }

    #[test]
    fn baseline_and_siloz_are_close_on_streaming() {
        // The headline claim in miniature: same workload, both hypervisors,
        // difference within a few percent (exact equality is not expected
        // because physical layouts differ).
        let config = SilozConfig::mini();
        let sim = SimConfig {
            vm_memory: 128 << 20,
            working_set: 16 << 20,
            ops: 30_000,
            repeats: 1,
            vcpus: 2,
        };
        let mut w1 = Mlc::new(MlcKind::Reads, sim.working_set);
        let base = run_workload(&config, HypervisorKind::Baseline, &mut w1, &sim, 3).unwrap();
        let mut w2 = Mlc::new(MlcKind::Reads, sim.working_set);
        let sz = run_workload(&config, HypervisorKind::Siloz, &mut w2, &sim, 3).unwrap();
        let diff_pct = ((sz / base) - 1.0).abs() * 100.0;
        assert!(
            diff_pct < 3.0,
            "siloz vs baseline bandwidth differs {diff_pct:.2}%"
        );
    }
}
