//! Noisy-neighbor colocation experiment (§8.4 context).
//!
//! Siloz isolates *disturbance* (security), not memory-controller bandwidth
//! (performance): subarray groups deliberately span every bank, so two
//! colocated tenants still contend for banks and channels exactly as on the
//! baseline. This experiment quantifies that: a latency-sensitive tenant
//! runs alone and then next to a bandwidth hog, under both hypervisors.
//! Expected shape: colocation hurts both hypervisors similarly — Siloz
//! neither adds interference nor (by design, §8.4) removes it; bank/channel
//! partitioning is future work.

use crate::engine::run_cells_observed;
use crate::run::{vm_trace, SimConfig, TraceShape};
use dram::{DimmProfile, DramSystemBuilder};
use memctrl::{MemOp, MemoryController};
use siloz::{Hypervisor, HypervisorKind, SilozConfig, SilozError, VmSpec};
use telemetry::Registry;
use workloads::WorkloadGen;

/// Result of one colocation measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColocationResult {
    /// Victim tenant's mean memory latency running alone, ns.
    pub solo_latency_ns: f64,
    /// Victim tenant's mean memory latency next to the aggressor, ns.
    pub colocated_latency_ns: f64,
}

impl ColocationResult {
    /// Relative slowdown from colocation (1.0 = none).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.solo_latency_ns == 0.0 {
            return 1.0;
        }
        self.colocated_latency_ns / self.solo_latency_ns
    }
}

/// Builds a tenant's physical trace on threads `[thread_base, +threads)`.
fn tenant_trace(
    hv: &Hypervisor,
    vm: siloz::VmHandle,
    workload: &mut dyn WorkloadGen,
    ops: usize,
    threads: u16,
    thread_base: u16,
    seed: u64,
) -> Result<Vec<MemOp>, SilozError> {
    vm_trace(
        hv,
        vm,
        workload,
        &TraceShape {
            ops,
            threads,
            thread_base,
            seed,
        },
    )
}

/// Measures the victim workload's latency alone and colocated with the
/// aggressor workload, under `kind`.
pub fn run_colocation(
    config: &SilozConfig,
    kind: HypervisorKind,
    victim: &mut dyn WorkloadGen,
    aggressor: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
) -> Result<ColocationResult, SilozError> {
    run_colocation_observed(config, kind, victim, aggressor, sim, seed, &Registry::new())
}

/// [`run_colocation`] that also exports stack-wide telemetry into `reg`.
///
/// Both the solo and the colocated measurement export into the same
/// children (`ctrl`, `dram`, `hv`); totals are additive over the two
/// replays, so the snapshot is deterministic for a given configuration.
pub fn run_colocation_observed(
    config: &SilozConfig,
    kind: HypervisorKind,
    victim: &mut dyn WorkloadGen,
    aggressor: &mut dyn WorkloadGen,
    sim: &SimConfig,
    seed: u64,
    reg: &Registry,
) -> Result<ColocationResult, SilozError> {
    let threads = sim.vcpus.clamp(1, 8) as u16;
    let measure = |with_aggressor: bool,
                   victim: &mut dyn WorkloadGen,
                   aggressor: &mut dyn WorkloadGen|
     -> Result<f64, SilozError> {
        let dram = DramSystemBuilder::new(config.geometry)
            .profiles(vec![DimmProfile::invulnerable()])
            .build();
        let mut hv =
            Hypervisor::boot_with(config.clone(), kind, dram, dram_addr::RepairMap::new())?;
        let vm_v = hv.create_vm(VmSpec::new("victim", sim.vcpus, sim.vm_memory))?;
        let trace_v = tenant_trace(&hv, vm_v, victim, sim.ops, threads, 0, seed)?;
        let merged: Vec<MemOp> = if with_aggressor {
            let vm_a = hv.create_vm(VmSpec::new("aggressor", sim.vcpus, sim.vm_memory))?;
            let trace_a = tenant_trace(
                &hv,
                vm_a,
                aggressor,
                sim.ops,
                threads,
                threads,
                seed ^ 0xa99,
            )?;
            // Interleave the two tenants' streams.
            let mut merged = Vec::with_capacity(trace_v.len() + trace_a.len());
            for (a, b) in trace_v.iter().zip(&trace_a) {
                merged.push(*a);
                merged.push(*b);
            }
            merged
        } else {
            trace_v
        };
        let mut ctrl = MemoryController::new(hv.decoder().clone()).without_physics();
        let result = ctrl.run_trace(hv.dram_mut(), merged);
        ctrl.export_telemetry(&reg.child("ctrl"));
        hv.dram().export_telemetry(&reg.child("dram"));
        hv.export_telemetry(&reg.child("hv"));
        Ok(result.mean_latency_ns_of(0..threads))
    };
    let solo = measure(false, victim, aggressor)?;
    let colocated = measure(true, victim, aggressor)?;
    Ok(ColocationResult {
        solo_latency_ns: solo,
        colocated_latency_ns: colocated,
    })
}

/// Everything a colocation suite run needs besides the workload factories
/// and the telemetry sink: which stack to boot, which hypervisor kinds to
/// compare, the simulation shape, the seed, and the engine worker count.
///
/// Bundling these (rather than passing seven positional arguments) keeps
/// the suite entry points inside the workspace's `clippy::too_many_arguments`
/// budget without an `#[allow]`.
#[derive(Debug, Clone, Copy)]
pub struct SuitePlan<'a> {
    /// Stack configuration the hypervisors boot with.
    pub config: &'a SilozConfig,
    /// Hypervisor kinds to measure, in output order.
    pub kinds: &'a [HypervisorKind],
    /// Simulation shape (ops, repeats, VM memory, vCPUs, working set).
    pub sim: &'a SimConfig,
    /// Base RNG seed shared by every kind's cell.
    pub seed: u64,
    /// Engine worker threads to fan the kinds out over.
    pub threads: usize,
}

/// Measures colocation under each hypervisor kind concurrently — one engine
/// cell per kind, fanned out over `plan.threads` workers.
///
/// [`run_colocation`] deliberately reuses its workload *instances* between
/// the solo and colocated measurements, so parallelism lives at the
/// hypervisor-kind level: each cell builds fresh generators through the
/// factories, exactly as a serial loop constructing them per iteration
/// would, and results come back in `plan.kinds` order regardless of
/// scheduling.
pub fn run_colocation_suite<V, A>(
    plan: &SuitePlan<'_>,
    victim: V,
    aggressor: A,
) -> Result<Vec<(HypervisorKind, ColocationResult)>, SilozError>
where
    V: Fn() -> Box<dyn WorkloadGen> + Sync,
    A: Fn() -> Box<dyn WorkloadGen> + Sync,
{
    run_colocation_suite_observed(plan, victim, aggressor, &Registry::new())
}

/// [`run_colocation_suite`] that also records telemetry into `reg`: engine
/// scheduling metrics at `engine`, and each hypervisor kind's stack totals
/// under a per-kind child (`baseline` / `siloz`).
pub fn run_colocation_suite_observed<V, A>(
    plan: &SuitePlan<'_>,
    victim: V,
    aggressor: A,
    reg: &Registry,
) -> Result<Vec<(HypervisorKind, ColocationResult)>, SilozError>
where
    V: Fn() -> Box<dyn WorkloadGen> + Sync,
    A: Fn() -> Box<dyn WorkloadGen> + Sync,
{
    let engine_reg = reg.child("engine");
    let results = run_cells_observed(plan.kinds.len(), plan.threads, &engine_reg, |idx| {
        let mut v = victim();
        let mut a = aggressor();
        let kind_reg = reg.child(match plan.kinds[idx] {
            HypervisorKind::Baseline => "baseline",
            HypervisorKind::Siloz => "siloz",
        });
        run_colocation_observed(
            plan.config,
            plan.kinds[idx],
            v.as_mut(),
            a.as_mut(),
            plan.sim,
            plan.seed,
            &kind_reg,
        )
    });
    plan.kinds
        .iter()
        .zip(results)
        .map(|(&kind, r)| r.map(|res| (kind, res)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mlc::{Mlc, MlcKind};
    use workloads::ycsb::{Ycsb, YcsbKind};

    fn quick_sim() -> SimConfig {
        SimConfig {
            ops: 15_000,
            repeats: 1,
            vm_memory: 128 << 20,
            vcpus: 4,
            working_set: 16 << 20,
        }
    }

    #[test]
    fn colocation_slows_the_victim_under_both_hypervisors() {
        let config = SilozConfig::mini();
        let sim = quick_sim();
        let mut results = Vec::new();
        for kind in [HypervisorKind::Baseline, HypervisorKind::Siloz] {
            let mut victim = Ycsb::new(YcsbKind::C, sim.working_set);
            let mut hog = Mlc::new(MlcKind::Reads, sim.working_set);
            let r = run_colocation(&config, kind, &mut victim, &mut hog, &sim, 3).unwrap();
            assert!(
                r.slowdown() > 1.02,
                "{kind:?}: a bandwidth hog must slow the victim ({:.3})",
                r.slowdown()
            );
            results.push(r.slowdown());
        }
        // Siloz neither amplifies nor removes performance interference:
        // slowdowns are in the same ballpark (within 25% of each other).
        let ratio = results[1] / results[0];
        assert!(
            (0.75..1.25).contains(&ratio),
            "baseline slowdown {:.3} vs siloz {:.3}",
            results[0],
            results[1]
        );
    }
}
