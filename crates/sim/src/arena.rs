//! The mitigation arena (EXPERIMENTS §9): every [`Backend`] measured
//! head-to-head on the Fig. 4 workload roster against one undefended
//! baseline.
//!
//! Each backend's grid is a `compare_suite` run — reference arm always
//! `(config, Baseline, no hook)`, candidate arm the backend's demanded
//! hypervisor kind plus its controller hook — so rows are directly
//! comparable across backends: every backend's candidate cells draw the
//! *same* traces (common random numbers) and are normalized against the
//! *same* reference samples, reused through one shared [`TraceCache`].
//!
//! Two pins fall out of this construction and are enforced by
//! `crates/sim/tests/mitigation_equivalence.rs`:
//!
//! - the `siloz` arena row is bit-identical to [`crate::figure4`] (the
//!   trait port changes nothing);
//! - the `none` arena row's candidate cells are bit-identical to its
//!   reference cells before noise (the hook slot stays empty).

use crate::cache::TraceCache;
use crate::engine::default_threads;
use crate::experiments::{compare_suite, Comparison};
use crate::run::{Replay, SimConfig};
use mitigation::{Backend, DomainPolicy};
use siloz::{HypervisorKind, SilozConfig, SilozError};
use telemetry::Registry;
use workloads::{exec_time_suite, exec_time_workload};

/// One backend's arena grid: the Fig. 4 roster (plus geomean row)
/// measured under that defense, normalized against the undefended
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaRow {
    /// The defense measured in this grid.
    pub backend: Backend,
    /// Per-workload comparisons; last row is the geomean.
    pub rows: Vec<Comparison>,
}

impl ArenaRow {
    /// The grid's geomean overhead vs the undefended baseline, percent.
    #[must_use]
    pub fn geomean_overhead_pct(&self) -> f64 {
        self.rows.last().map_or(0.0, Comparison::overhead_pct)
    }
}

/// The hypervisor kind a backend's placement policy demands.
#[must_use]
pub fn hypervisor_kind_for(backend: Backend) -> HypervisorKind {
    match backend.domain_policy() {
        DomainPolicy::IsolationDomains => HypervisorKind::Siloz,
        DomainPolicy::Shared => HypervisorKind::Baseline,
    }
}

/// Runs the arena over `backends` with default parallelism.
///
/// # Errors
///
/// Fails if any measurement cell fails to boot or place its VM.
pub fn arena(
    config: &SilozConfig,
    sim: &SimConfig,
    backends: &[Backend],
) -> Result<Vec<ArenaRow>, SilozError> {
    arena_with_threads(config, sim, default_threads(), backends)
}

/// [`arena`] with an explicit worker count (1 = serial reference).
///
/// # Errors
///
/// Fails if any measurement cell fails to boot or place its VM.
pub fn arena_with_threads(
    config: &SilozConfig,
    sim: &SimConfig,
    threads: usize,
    backends: &[Backend],
) -> Result<Vec<ArenaRow>, SilozError> {
    arena_observed(config, sim, threads, backends, &Registry::new())
}

/// [`arena_with_threads`] that also records run telemetry into `reg`,
/// one child per backend (named by [`Backend::name`]).
///
/// # Errors
///
/// Fails if any measurement cell fails to boot or place its VM.
pub fn arena_observed(
    config: &SilozConfig,
    sim: &SimConfig,
    threads: usize,
    backends: &[Backend],
    reg: &Registry,
) -> Result<Vec<ArenaRow>, SilozError> {
    // One cache across every backend: ledgers are defense-independent and
    // the undefended reference arm recurs in every grid, so only the
    // defended candidate cells are simulated per additional backend.
    let cache = TraceCache::new();
    let mut out = Vec::with_capacity(backends.len());
    for &backend in backends {
        let rows = compare_suite(
            (exec_time_suite, exec_time_workload),
            (config, HypervisorKind::Baseline),
            (config, hypervisor_kind_for(backend)),
            Some(backend),
            sim,
            threads,
            Replay::Compiled,
            &cache,
            &reg.child(backend.name()),
        )?;
        out.push(ArenaRow { backend, rows });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SilozConfig, SimConfig) {
        let config = SilozConfig::mini();
        let sim = SimConfig {
            ops: 4_000,
            repeats: 2,
            vm_memory: 128 << 20,
            vcpus: 2,
            working_set: 8 << 20,
        };
        (config, sim)
    }

    #[test]
    fn arena_measures_every_backend() {
        let (config, sim) = tiny();
        let grids = arena_with_threads(&config, &sim, 2, &Backend::ALL).unwrap();
        assert_eq!(grids.len(), 4);
        for grid in &grids {
            assert_eq!(grid.rows.len(), 10, "9 workloads + geomean");
            assert_eq!(grid.rows.last().unwrap().workload, "geomean");
            // Benign workloads under any defense stay within a sane band —
            // no backend melts down the fast path at this scale.
            assert!(
                grid.geomean_overhead_pct().abs() < 25.0,
                "{:?} geomean overhead {:.2}%",
                grid.backend,
                grid.geomean_overhead_pct()
            );
        }
    }

    #[test]
    fn arena_is_deterministic_across_thread_counts_and_cache_state() {
        let (config, sim) = tiny();
        let backends = [Backend::None, Backend::BlockHammer];
        let serial = arena_with_threads(&config, &sim, 1, &backends).unwrap();
        let parallel = arena_with_threads(&config, &sim, 4, &backends).unwrap();
        assert_eq!(serial, parallel);
    }
}
