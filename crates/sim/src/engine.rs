//! Deterministic parallel fan-out for experiment cells.
//!
//! Experiment drivers decompose their work into independent *cells* — one
//! (configuration, seed, workload) measurement each — and fan them out over
//! a scoped thread pool. Results are collected keyed by cell index and
//! returned in index order, so output is bit-identical to a serial loop
//! regardless of thread count or scheduling: each cell builds its own
//! hypervisor, workload generators, and RNG from the cell index alone and
//! shares no mutable state with its neighbors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used by the figure drivers: the `SILOZ_THREADS` environment
/// variable if set (minimum 1), else the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SILOZ_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `cell(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// `cell` must be a pure function of its index (plus shared immutable
/// captures) for the parallel result to equal the serial one; every driver
/// in this crate satisfies that by constructing fresh per-cell state. With
/// `threads <= 1` the cells run on the calling thread in index order, which
/// doubles as the serial reference for determinism tests.
pub fn run_cells<T, F>(n: usize, threads: usize, cell: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(cell).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    local.push((idx, cell(idx)));
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                }
            });
        }
    });
    let mut cells = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    cells.sort_unstable_by_key(|&(idx, _)| idx);
    cells.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_cells(64, 8, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_cells(33, 1, f), run_cells(33, 5, f));
    }

    #[test]
    fn zero_cells_is_empty() {
        assert_eq!(run_cells(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells(2, 16, |i| i + 1), vec![1, 2]);
    }
}
