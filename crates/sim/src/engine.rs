//! Deterministic parallel fan-out for experiment cells.
//!
//! Experiment drivers decompose their work into independent *cells* — one
//! (configuration, seed, workload) measurement each — and fan them out over
//! a scoped thread pool. Results are collected keyed by cell index and
//! returned in index order, so output is bit-identical to a serial loop
//! regardless of thread count or scheduling: each cell builds its own
//! hypervisor, workload generators, and RNG from the cell index alone and
//! shares no mutable state with its neighbors.

// lint:allow-file(atomics-confined) — the work-dispenser cursor below is a
// scheduling primitive, not a metric; all *measurements* go through
// telemetry handles.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use telemetry::Registry;

/// Worker count used by the figure drivers: the `SILOZ_THREADS` environment
/// variable if set (minimum 1), else the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SILOZ_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `cell(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// `cell` must be a pure function of its index (plus shared immutable
/// captures) for the parallel result to equal the serial one; every driver
/// in this crate satisfies that by constructing fresh per-cell state. With
/// `threads <= 1` the cells run on the calling thread in index order, which
/// doubles as the serial reference for determinism tests.
pub fn run_cells<T, F>(n: usize, threads: usize, cell: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_observed(n, threads, &Registry::new(), cell)
}

/// [`run_cells`] that also records engine telemetry into `reg`.
///
/// Deterministic metrics (`cells_run`) merge by addition and are identical
/// for any thread count; scheduling-dependent metrics — per-cell wall time
/// (`cell_wall_ns`), cross-worker steals (`steals`, cells a worker claimed
/// beyond an even `n / threads` share), and `workers` — are registered
/// *volatile*, so [`telemetry::Snapshot::deterministic`] strips them and
/// the determinism battery passes regardless of machine or thread count.
pub fn run_cells_observed<T, F>(n: usize, threads: usize, reg: &Registry, cell: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_costed(n, threads, &[], reg, cell)
}

/// The dispatch permutation for per-cell cost estimates: indices in
/// descending-cost order (LPT — longest processing time first), ties broken
/// by index. Dispatching long cells first keeps one expensive straggler
/// from landing last and serializing the tail of a parallel run; cells are
/// pure functions of their index, so the permutation never changes results.
///
/// An empty `costs` (or one of the wrong length) means "no estimate":
/// callers get plain index order.
#[must_use]
pub fn lpt_order(n: usize, costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if costs.len() == n {
        order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    }
    order
}

/// [`run_cells_observed`] with per-cell cost estimates: workers claim cells
/// in [`lpt_order`] rather than index order. Results still come back in
/// index order and are bit-identical to the serial loop — only wall-clock
/// balance depends on the estimates.
// lint:allow(observed-twin) — takes `reg` directly; this IS the observed form.
pub fn run_cells_costed<T, F>(
    n: usize,
    threads: usize,
    costs: &[u64],
    reg: &Registry,
    cell: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    let cells_run = reg.counter("cells_run");
    let wall = reg.histo_volatile("cell_wall_ns");
    let steals = reg.counter_volatile("steals");
    reg.gauge_volatile("workers").add(threads as i64);
    let fair_share = n / threads;
    if threads == 1 {
        // The serial reference: index order, no dispatch permutation.
        return (0..n)
            .map(|idx| {
                let t0 = Instant::now();
                let out = cell(idx);
                wall.observe(t0.elapsed().as_nanos() as u64);
                cells_run.inc();
                out
            })
            .collect();
    }
    let order = lpt_order(n, costs);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= n {
                        break;
                    }
                    let idx = order[slot];
                    let t0 = Instant::now();
                    local.push((idx, cell(idx)));
                    wall.observe(t0.elapsed().as_nanos() as u64);
                    cells_run.inc();
                }
                if local.len() > fair_share {
                    steals.add((local.len() - fair_share) as u64);
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local);
                }
            });
        }
    });
    let mut cells = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    cells.sort_unstable_by_key(|&(idx, _)| idx);
    cells.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_cells(64, 8, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_cells(33, 1, f), run_cells(33, 5, f));
    }

    #[test]
    fn zero_cells_is_empty() {
        assert_eq!(run_cells(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        assert_eq!(run_cells(2, 16, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn lpt_order_sorts_descending_with_stable_ties() {
        assert_eq!(lpt_order(4, &[1, 9, 9, 3]), vec![1, 2, 3, 0]);
        // Missing or mismatched estimates fall back to index order.
        assert_eq!(lpt_order(3, &[]), vec![0, 1, 2]);
        assert_eq!(lpt_order(3, &[5, 1]), vec![0, 1, 2]);
        assert_eq!(lpt_order(0, &[]), Vec::<usize>::new());
    }

    #[test]
    fn costed_dispatch_matches_serial_results_bitwise() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let costs: Vec<u64> = (0..33).map(|i| (i * 7 % 13) as u64).collect();
        let reg = Registry::new();
        let serial = run_cells_costed(33, 1, &costs, &reg, f);
        let parallel = run_cells_costed(33, 5, &costs, &reg, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..33).map(f).collect::<Vec<_>>());
    }

    #[test]
    fn observed_runs_count_cells_and_mark_timing_volatile() {
        for threads in [1, 3] {
            let reg = Registry::new();
            let out = run_cells_observed(10, threads, &reg, |i| i);
            assert_eq!(out.len(), 10);
            let snap = reg.snapshot();
            assert_eq!(
                snap.metrics["cells_run"],
                telemetry::MetricValue::Counter {
                    value: 10,
                    volatile: false
                }
            );
            let det = snap.deterministic();
            assert!(det.metrics.contains_key("cells_run"));
            assert!(!det.metrics.contains_key("cell_wall_ns"));
            assert!(!det.metrics.contains_key("steals"));
            assert!(!det.metrics.contains_key("workers"));
        }
    }
}
