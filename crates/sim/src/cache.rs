//! Cross-cell memoization for trace compilation.
//!
//! An experiment grid re-measures the same `(workload, seed)` draw under
//! many configurations, and the same configuration under many draws. The
//! [`TraceCache`] deduplicates everything that is pure along each axis:
//!
//! - **ledgers** — one [`GuestLedger`] per `(workload, working-set, ops,
//!   threads, trace-seed)` tuple, shared by every configuration;
//! - **substrates** — one KV preload per `(substrate key, trace seed)`,
//!   shared by every workload mix over the same store (all six YCSB kinds
//!   run the identical load phase);
//! - **envs** — one booted hypervisor + VM backing map per configuration,
//!   shared by every draw measured under it;
//! - **programs** — one pre-decoded [`CompiledTrace`] per (ledger, env)
//!   pair, shared when the same measurement recurs (e.g. the sensitivity
//!   reference arm across variants);
//! - **replays** — one `CellOutcome` per (ledger, env) pair: compiled
//!   cells run with disturbance physics off against a fresh controller and
//!   scratch device, so the replay result and post-replay controller
//!   telemetry are a pure function of the pair, and a recurring
//!   measurement (the sensitivity reference arm, a regenerated figure) is
//!   never re-simulated. Per-cell noise is applied *after* the cache, so
//!   cells sharing an outcome still sample independent nuisance factors.
//!
//! Every cached value is a pure function of its key, so cache scheduling
//! never affects results: parallel grids stay bit-identical to serial ones
//! no matter which worker populates an entry first. A racing build does
//! duplicate work but adopts the first-inserted value.

use crate::compile::GuestLedger;
use crate::run::HpaMap;
use memctrl::{CompiledTrace, MemoryController, TraceResult};
use rand::rngs::StdRng;
use siloz::{Hypervisor, SilozError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use workloads::SubstrateSnapshot;

/// Ledger identity: `(workload name, working set, ops, threads, trace
/// seed)`.
pub(crate) type LedgerKey = (String, u64, usize, u16, u64);

/// Substrate-pool identity: `(substrate key, trace seed)`.
pub(crate) type SubstrateKey = (String, u64);

/// A booted measurement environment: the hypervisor (whose decoder and
/// telemetry the cell uses) and the VM's guest→HPA backing map. Immutable
/// once built — compiled replays run against a per-cell scratch device, so
/// one env is safely shared by every cell of its configuration.
pub(crate) struct BoundEnv {
    pub(crate) hv: Hypervisor,
    pub(crate) hpa: HpaMap,
}

/// The deterministic outcome of one compiled replay: the trace result and
/// the post-replay controller, whose exported telemetry the cell forwards.
/// Everything a cell derives from these (sample, stats, telemetry) is a
/// pure function of the (ledger, env) pair that produced them.
pub(crate) struct CellOutcome {
    pub(crate) result: TraceResult,
    pub(crate) ctrl: MemoryController,
}

/// The memoization store shared by all cells of an experiment grid (or by
/// consecutive grids, when the caller keeps it alive across them).
#[derive(Default)]
pub struct TraceCache {
    ledgers: Mutex<BTreeMap<LedgerKey, Arc<GuestLedger>>>,
    substrates: Mutex<BTreeMap<SubstrateKey, (SubstrateSnapshot, StdRng)>>,
    envs: Mutex<BTreeMap<String, Arc<BoundEnv>>>,
    programs: Mutex<BTreeMap<(LedgerKey, String), Arc<CompiledTrace>>>,
    replays: Mutex<BTreeMap<(LedgerKey, String), Arc<CellOutcome>>>,
}

impl TraceCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The ledger for `key`, building (outside the lock) on first use.
    pub(crate) fn ledger(
        &self,
        key: &LedgerKey,
        build: impl FnOnce() -> Arc<GuestLedger>,
    ) -> Arc<GuestLedger> {
        if let Some(hit) = lock(&self.ledgers).get(key) {
            return hit.clone();
        }
        let built = build();
        lock(&self.ledgers)
            .entry(key.clone())
            .or_insert(built)
            .clone()
    }

    /// The ledger for a guest identified by its workload name, working
    /// set, op count, thread count, and trace seed — the public face of
    /// the ledger pool for external load generators (the fleet engine and
    /// the cluster simulator). Hosts sharing one cache reuse a migrated
    /// tenant's compiled ledger instead of regenerating it: the key is
    /// host-independent, so host A's compile serves host B's re-bind.
    pub fn guest_ledger(
        &self,
        name: &str,
        working_set: u64,
        ops: usize,
        threads: u16,
        seed: u64,
        build: impl FnOnce() -> Arc<GuestLedger>,
    ) -> Arc<GuestLedger> {
        let key: LedgerKey = (name.to_owned(), working_set, ops, threads, seed);
        self.ledger(&key, build)
    }

    /// The pooled substrate snapshot and post-load RNG for `key`, if one
    /// was stored.
    pub(crate) fn substrate(&self, key: &SubstrateKey) -> Option<(SubstrateSnapshot, StdRng)> {
        lock(&self.substrates).get(key).cloned()
    }

    /// Stores a freshly-built substrate (first writer wins).
    pub(crate) fn store_substrate(&self, key: SubstrateKey, snap: SubstrateSnapshot, rng: StdRng) {
        lock(&self.substrates).entry(key).or_insert((snap, rng));
    }

    /// The booted environment for `key`, booting on first use. Only
    /// successful boots are cached.
    pub(crate) fn env(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<BoundEnv, SilozError>,
    ) -> Result<Arc<BoundEnv>, SilozError> {
        if let Some(hit) = lock(&self.envs).get(key) {
            return Ok(hit.clone());
        }
        let built = Arc::new(build()?);
        Ok(lock(&self.envs)
            .entry(key.to_owned())
            .or_insert(built)
            .clone())
    }

    /// The bound replay program for `(ledger, env)`, binding on first use.
    pub(crate) fn program(
        &self,
        ledger: &LedgerKey,
        env: &str,
        build: impl FnOnce() -> Arc<CompiledTrace>,
    ) -> Arc<CompiledTrace> {
        let key = (ledger.clone(), env.to_owned());
        if let Some(hit) = lock(&self.programs).get(&key) {
            return hit.clone();
        }
        let built = build();
        lock(&self.programs).entry(key).or_insert(built).clone()
    }

    /// The replay outcome for `(ledger, env)`, simulating on first use.
    pub(crate) fn replay(
        &self,
        ledger: &LedgerKey,
        env: &str,
        build: impl FnOnce() -> Arc<CellOutcome>,
    ) -> Arc<CellOutcome> {
        let key = (ledger.clone(), env.to_owned());
        if let Some(hit) = lock(&self.replays).get(&key) {
            return hit.clone();
        }
        let built = build();
        lock(&self.replays).entry(key).or_insert(built).clone()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::GuestOp;

    #[test]
    fn ledger_entries_are_built_once_and_shared() {
        let cache = TraceCache::new();
        let key: LedgerKey = ("wl".into(), 1 << 20, 100, 2, 7);
        let mut builds = 0;
        let ops = [GuestOp::read(0), GuestOp::read(64)];
        let a = cache.ledger(&key, || {
            builds += 1;
            Arc::new(GuestLedger::compile(&ops, 2))
        });
        let b = cache.ledger(&key, || {
            builds += 1;
            Arc::new(GuestLedger::compile(&ops, 2))
        });
        assert_eq!(builds, 1, "second lookup must hit");
        assert!(Arc::ptr_eq(&a, &b));
        let other: LedgerKey = ("wl".into(), 1 << 20, 100, 2, 8);
        let c = cache.ledger(&other, || {
            builds += 1;
            Arc::new(GuestLedger::compile(&ops, 2))
        });
        assert_eq!(builds, 2, "different seed is a different entry");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn substrate_pool_first_writer_wins() {
        use rand::SeedableRng;
        let cache = TraceCache::new();
        let key: SubstrateKey = ("ycsb-kv/8388608".into(), 3);
        assert!(cache.substrate(&key).is_none());
        let mut store = workloads::kv::KvStore::new(1 << 16, 8);
        store.set(1, 100);
        let _ = store.take_trace();
        cache.store_substrate(
            key.clone(),
            SubstrateSnapshot::Kv(store),
            StdRng::seed_from_u64(1),
        );
        let (snap, _) = cache.substrate(&key).expect("stored");
        let SubstrateSnapshot::Kv(kv) = snap;
        assert_eq!(kv.items(), 1);
    }
}
