//! Sample statistics: means, confidence intervals, geometric means.

/// Summary statistics of repeated measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Raw samples.
    pub samples: Vec<f64>,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95% confidence interval (t-distribution).
    pub ci95: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let stddev = var.sqrt();
        let ci95 = t_crit(samples.len() - 1) * stddev / n.sqrt();
        Self {
            samples: samples.to_vec(),
            mean,
            stddev,
            ci95,
        }
    }

    /// Relative CI half-width in percent of the mean.
    #[must_use]
    pub fn ci95_pct(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.ci95 / self.mean.abs() * 100.0
    }
}

/// Two-sided 95% t critical values by degrees of freedom (∞ → 1.96).
fn t_crit(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "no values");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Percent overhead of `candidate` relative to `baseline` for a
/// lower-is-better metric (positive = candidate slower).
#[must_use]
pub fn overhead_pct_lower_better(baseline: f64, candidate: f64) -> f64 {
    (candidate / baseline - 1.0) * 100.0
}

/// Percent overhead of `candidate` relative to `baseline` for a
/// higher-is-better metric (positive = candidate worse, i.e. slower).
#[must_use]
pub fn overhead_pct_higher_better(baseline: f64, candidate: f64) -> f64 {
    (baseline / candidate - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
        // df = 4 -> t = 2.776.
        let expected_ci = 2.776 * s.stddev / 5f64.sqrt();
        assert!((s.ci95 - expected_ci).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_infinite_ci() {
        let s = Summary::of(&[2.0]);
        assert_eq!(s.stddev, 0.0);
        assert!(s.ci95.is_nan() || s.ci95 == 0.0 || s.ci95.is_infinite());
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn overhead_signs() {
        // Lower-better: slower candidate = positive overhead.
        assert!(overhead_pct_lower_better(100.0, 101.0) > 0.0);
        assert!(overhead_pct_lower_better(100.0, 99.0) < 0.0);
        // Higher-better: lower throughput = positive overhead.
        assert!(overhead_pct_higher_better(100.0, 99.0) > 0.0);
        assert!(overhead_pct_higher_better(100.0, 101.0) < 0.0);
    }
}
