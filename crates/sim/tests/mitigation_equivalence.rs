//! The arena's zero-regression gate: Siloz *behind the `Mitigation`
//! trait* must be bit-identical to the direct pre-trait path — every
//! sample, summary statistic, and deterministic telemetry export — for
//! any worker count, cache state, and subarray-size configuration.
//!
//! The siloz arena row and [`sim::figure4`] run the same (Baseline vs
//! Siloz) comparison; the only difference is that the arena routes the
//! candidate arm through [`mitigation::Backend::Siloz`]. Because that
//! backend installs no controller hook, the cells must come out
//! byte-for-byte equal. These tests are wired into `scripts/check.sh`
//! as a hard gate.

use mitigation::Backend;
use siloz::SilozConfig;
use sim::{
    arena_observed, arena_with_threads, figure4_observed, figure4_uncompiled_with_threads,
    figure4_with_threads, SimConfig,
};
use telemetry::Registry;

fn small_sim() -> SimConfig {
    SimConfig {
        ops: 6_000,
        repeats: 2,
        vm_memory: 128 << 20,
        vcpus: 2,
        working_set: 8 << 20,
    }
}

/// The worker counts the equivalence battery sweeps — serial reference,
/// even split, and a prime count that leaves a ragged remainder (the
/// values `SILOZ_THREADS` is pinned to in CI).
const THREADS: [usize; 3] = [1, 2, 7];

#[test]
fn siloz_behind_the_trait_is_bitwise_the_direct_path_across_threads() {
    let config = SilozConfig::mini();
    let sim = small_sim();
    let mut grids = Vec::new();
    for threads in THREADS {
        let arena = arena_with_threads(&config, &sim, threads, &[Backend::Siloz]).unwrap();
        let direct = figure4_with_threads(&config, &sim, threads).unwrap();
        assert_eq!(
            arena[0].rows, direct,
            "siloz arena row diverged from figure4 at {threads} threads"
        );
        grids.push(arena);
    }
    // And the whole sweep is thread-count invariant.
    assert_eq!(grids[0], grids[1]);
    assert_eq!(grids[1], grids[2]);
}

#[test]
fn siloz_behind_the_trait_matches_the_uncompiled_oracle() {
    // Chains the pins: arena (compiled replay, trait-routed) ==
    // figure4 (compiled, direct) == figure4_uncompiled (the slow
    // oracle), so the trait port cannot hide behind the trace compiler.
    let config = SilozConfig::mini();
    let sim = small_sim();
    let arena = arena_with_threads(&config, &sim, 2, &[Backend::Siloz]).unwrap();
    let oracle = figure4_uncompiled_with_threads(&config, &sim, 2).unwrap();
    assert_eq!(arena[0].rows, oracle);
}

#[test]
fn equivalence_holds_across_subarray_config_variants() {
    // The trait port must be invisible for every presumed-subarray-size
    // configuration the sensitivity figures sweep, not just the nominal.
    let sim = small_sim();
    for rows in [128u32, 256, 512] {
        let config = SilozConfig::mini().with_presumed_subarray_rows(rows);
        let arena = arena_with_threads(&config, &sim, 2, &[Backend::Siloz]).unwrap();
        let direct = figure4_with_threads(&config, &sim, 2).unwrap();
        assert_eq!(
            arena[0].rows, direct,
            "divergence at presumed_subarray_rows={rows}"
        );
    }
}

#[test]
fn arena_telemetry_matches_the_direct_path_deterministically() {
    // The telemetry contract: the siloz grid's registry child exports
    // the same deterministic snapshot as the direct figure4 run, and
    // re-running reproduces it byte for byte.
    let config = SilozConfig::mini();
    let sim = small_sim();
    let arena_reg = Registry::new();
    arena_observed(&config, &sim, 2, &[Backend::Siloz], &arena_reg).unwrap();
    let direct_reg = Registry::new();
    figure4_observed(&config, &sim, 2, &direct_reg).unwrap();
    let arena_json = arena_reg
        .child("siloz")
        .snapshot()
        .deterministic()
        .to_json();
    let direct_json = direct_reg.snapshot().deterministic().to_json();
    assert_eq!(
        arena_json, direct_json,
        "trait-routed telemetry diverged from the direct path"
    );

    let again = Registry::new();
    arena_observed(&config, &sim, 2, &[Backend::Siloz], &again).unwrap();
    assert_eq!(
        arena_json,
        again.child("siloz").snapshot().deterministic().to_json(),
        "arena telemetry is not reproducible"
    );
}

#[test]
fn none_backend_rides_the_reference_arm_bitwise() {
    // Every backend's reference arm is the same undefended baseline
    // drawn from the same seeds through one shared cache — so reference
    // summaries must be bitwise equal across grids, and the `none`
    // row's overhead must be pure measurement noise (its hook slot is
    // empty; the candidate arm re-uses the reference replay outcome).
    let config = SilozConfig::mini();
    let sim = small_sim();
    let grids = arena_with_threads(
        &config,
        &sim,
        2,
        &[Backend::None, Backend::Siloz, Backend::BlockHammer],
    )
    .unwrap();
    let (none, siloz, blockhammer) = (&grids[0], &grids[1], &grids[2]);
    for (i, row) in none.rows.iter().enumerate() {
        assert_eq!(
            row.reference, siloz.rows[i].reference,
            "{}: reference arm differs between none and siloz grids",
            row.workload
        );
        assert_eq!(
            row.reference, blockhammer.rows[i].reference,
            "{}: reference arm differs between none and blockhammer grids",
            row.workload
        );
        // 0.3% relative noise per sample, z bounded by ±6: a paired
        // overhead can never legitimately reach ±5%.
        assert!(
            row.overhead_pct().abs() < 5.0,
            "{}: none-backend overhead {:.3}% is not noise",
            row.workload,
            row.overhead_pct()
        );
    }
}
