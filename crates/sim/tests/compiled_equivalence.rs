//! The compiled replay pipeline is an optimization, not a semantic fork:
//! every measurement taken through `run_workload_compiled` (ledger →
//! bind → `run_compiled`) must be **bit-identical** to the uncompiled
//! reference (`run_workload`: generate → translate → `run_trace`) — same
//! sample, same controller statistics, same deterministic telemetry —
//! across workloads, hypervisor kinds, configurations, seeds, repeats,
//! thread counts, and non-power-of-two VM backings. These tests are the
//! CI pin for that contract; `scripts/check.sh` runs them as a dedicated
//! gate.

use siloz::{HypervisorKind, SilozConfig};
use sim::{
    figure4_cached, figure4_uncompiled_with_threads, figure4_with_threads,
    figure5_uncompiled_with_threads, figure5_with_threads, run_workload, run_workload_compiled,
    run_workload_compiled_observed, run_workload_observed, SimConfig, TraceCache,
};
use telemetry::Registry;
use workloads::{exec_time_workload, throughput_workload, EXEC_TIME_SUITE_LEN};

/// A deliberately small grid so the full cross-product stays fast.
fn small_sim() -> SimConfig {
    SimConfig {
        ops: 2_000,
        repeats: 2,
        vm_memory: 64 << 20,
        vcpus: 2,
        working_set: 8 << 20,
    }
}

/// Bitwise equality for measured samples — `==` would paper over NaN and
/// signed-zero drift.
fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

#[test]
fn compiled_matches_uncompiled_across_workloads_kinds_and_seeds() {
    let config = SilozConfig::mini();
    let sim = small_sim();
    let cache = TraceCache::new();
    // YCSB A, terasort, SPEC-like, PARSEC-like from the Fig. 4 roster,
    // plus memcached and OLTP from the Fig. 5 roster.
    let exec_indices = [0usize, 6, 7, 8];
    let tput_indices = [0usize, 1];
    for kind in [HypervisorKind::Baseline, HypervisorKind::Siloz] {
        for seed in [1u64, 42, 0xdead_beef] {
            for &i in &exec_indices {
                let mut direct = exec_time_workload(i, sim.working_set);
                let mut compiled = exec_time_workload(i, sim.working_set);
                let a = run_workload(&config, kind, direct.as_mut(), &sim, seed).unwrap();
                let b = run_workload_compiled(&config, kind, compiled.as_mut(), &sim, seed, &cache)
                    .unwrap();
                assert_bits_eq(
                    a,
                    b,
                    &format!("exec workload {i} kind {kind:?} seed {seed}"),
                );
            }
            for &i in &tput_indices {
                let mut direct = throughput_workload(i, sim.working_set);
                let mut compiled = throughput_workload(i, sim.working_set);
                let a = run_workload(&config, kind, direct.as_mut(), &sim, seed).unwrap();
                let b = run_workload_compiled(&config, kind, compiled.as_mut(), &sim, seed, &cache)
                    .unwrap();
                assert_bits_eq(
                    a,
                    b,
                    &format!("tput workload {i} kind {kind:?} seed {seed}"),
                );
            }
        }
    }
}

#[test]
fn compiled_matches_uncompiled_across_configurations() {
    // The same draw measured under different subarray-group sizes — the
    // sensitivity sweep's axis — must agree arm by arm.
    let sim = small_sim();
    let cache = TraceCache::new();
    // Mini geometry nominal is 256 presumed rows; halve and double it, the
    // same axis figures 6/7 sweep.
    for rows in [128u32, 256, 512] {
        let config = SilozConfig::mini().with_presumed_subarray_rows(rows);
        let mut direct = exec_time_workload(1, sim.working_set);
        let mut compiled = exec_time_workload(1, sim.working_set);
        let a = run_workload(&config, HypervisorKind::Siloz, direct.as_mut(), &sim, 7).unwrap();
        let b = run_workload_compiled(
            &config,
            HypervisorKind::Siloz,
            compiled.as_mut(),
            &sim,
            7,
            &cache,
        )
        .unwrap();
        assert_bits_eq(a, b, &format!("presumed_subarray_rows {rows}"));
    }
}

#[test]
fn compiled_replay_handles_non_pow2_backing() {
    // 192 MiB is not a power of two, so the VM's backing blocks span an
    // irregular HPA layout — the bind pass must still resolve every guest
    // offset exactly as the uncompiled translator does.
    let config = SilozConfig::mini();
    let mut sim = small_sim();
    sim.vm_memory = 192 << 20;
    let cache = TraceCache::new();
    for kind in [HypervisorKind::Baseline, HypervisorKind::Siloz] {
        for i in [0usize, EXEC_TIME_SUITE_LEN - 1] {
            let mut direct = exec_time_workload(i, sim.working_set);
            let mut compiled = exec_time_workload(i, sim.working_set);
            let a = run_workload(&config, kind, direct.as_mut(), &sim, 3).unwrap();
            let b =
                run_workload_compiled(&config, kind, compiled.as_mut(), &sim, 3, &cache).unwrap();
            assert_bits_eq(
                a,
                b,
                &format!("non-pow2 backing, workload {i} kind {kind:?}"),
            );
        }
    }
}

#[test]
fn observed_twins_export_identical_deterministic_telemetry() {
    // The compiled cell replays against a scratch device with physics off,
    // but what it *exports* — controller totals, hypervisor state, DRAM
    // stats — must be indistinguishable from the uncompiled cell's.
    let config = SilozConfig::mini();
    let sim = small_sim();
    let cache = TraceCache::new();
    for kind in [HypervisorKind::Baseline, HypervisorKind::Siloz] {
        let mut direct = exec_time_workload(2, sim.working_set);
        let mut compiled = exec_time_workload(2, sim.working_set);
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        let a = run_workload_observed(&config, kind, direct.as_mut(), &sim, 11, &reg_a).unwrap();
        let b = run_workload_compiled_observed(
            &config,
            kind,
            compiled.as_mut(),
            &sim,
            11,
            &cache,
            &reg_b,
        )
        .unwrap();
        assert_bits_eq(a, b, &format!("observed sample, kind {kind:?}"));
        assert_eq!(
            reg_a.snapshot().deterministic().to_json(),
            reg_b.snapshot().deterministic().to_json(),
            "deterministic telemetry diverged for kind {kind:?}"
        );
    }
}

#[test]
fn thread_counts_do_not_change_figure_output() {
    // The engine deals cells to workers by index; 1, 2, and 7 workers must
    // emit the same figure, and the compiled figure must equal the
    // uncompiled one at every worker count.
    let config = SilozConfig::mini();
    let sim = small_sim();
    let reference = figure4_uncompiled_with_threads(&config, &sim, 1).unwrap();
    for threads in [1usize, 2, 7] {
        let compiled = figure4_with_threads(&config, &sim, threads).unwrap();
        assert_eq!(reference, compiled, "figure4 diverged at {threads} workers");
        let uncompiled = figure4_uncompiled_with_threads(&config, &sim, threads).unwrap();
        assert_eq!(
            reference, uncompiled,
            "uncompiled figure4 diverged at {threads} workers"
        );
    }
}

#[test]
fn warm_cache_regeneration_is_bit_identical() {
    // A persistent TraceCache turns regeneration into replay-outcome
    // lookups; the emitted figure must not depend on the cache's state.
    let config = SilozConfig::mini();
    let sim = small_sim();
    let cache = TraceCache::new();
    let cold = figure4_cached(&config, &sim, 1, &cache, &Registry::new()).unwrap();
    let warm = figure4_cached(&config, &sim, 1, &cache, &Registry::new()).unwrap();
    assert_eq!(cold, warm, "warm regeneration diverged from the cold run");
    let fresh = figure4_cached(&config, &sim, 1, &TraceCache::new(), &Registry::new()).unwrap();
    assert_eq!(cold, fresh, "cache reuse changed the figure");
}

#[test]
fn figure5_compiled_matches_uncompiled() {
    let config = SilozConfig::mini();
    let sim = small_sim();
    let compiled = figure5_with_threads(&config, &sim, 2).unwrap();
    let uncompiled = figure5_uncompiled_with_threads(&config, &sim, 2).unwrap();
    assert_eq!(compiled, uncompiled, "figure5 compiled path diverged");
}
