//! The three metric primitives: counters, gauges, log2 histograms.
//!
//! All mutation is a single `Relaxed` atomic RMW, cheap enough for the
//! memory controller's per-access path (the perfsuite's 5% regression gate
//! pins this). Reads taken after all writers have joined (the only pattern
//! the simulator uses — snapshots happen after `std::thread::scope` exits)
//! observe exact totals: relaxed atomic addition never loses increments.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically-increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An additive signed level (e.g. resident rows, pool occupancy).
///
/// Gauges merge by *summation* — like every other metric here — so that
/// per-cell exports accumulate deterministically regardless of scheduling.
/// Use them for quantities where summing across component instances is
/// meaningful; there is deliberately no `set`, which would race.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds `d` (negative to decrease).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` range.
pub const HISTO_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram.
///
/// Bucket `0` holds observations of exactly `0`; bucket `i >= 1` holds
/// observations in `[2^(i-1), 2^i)`. The scheme is value-range complete
/// (any `u64` lands in exactly one bucket) and shape-preserving for the
/// latency/occupancy distributions the simulator records, while keeping
/// merge a plain per-bucket addition.
#[derive(Debug)]
pub struct Histo {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl Default for Histo {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histo {
    /// The bucket index `value` falls into.
    #[must_use]
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds a pre-aggregated [`HistoSnapshot`] into this histogram — the
    /// bridge from single-owner (`&mut self`) component histograms, which
    /// record with plain arithmetic, into a shared registry at export time.
    pub fn merge_from(&self, snap: &HistoSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for (bucket, &n) in self.buckets.iter().zip(&snap.buckets) {
            if n != 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// One `count += n` RMW, exposed to [`crate::hooks`] so the model
    /// checker replays exactly the instruction [`Self::observe`] issues.
    pub(crate) fn step_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// One `sum += v` RMW (see [`Self::step_count`]).
    pub(crate) fn step_sum(&self, v: u64) {
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// One `buckets[i] += n` RMW (see [`Self::step_count`]).
    pub(crate) fn step_bucket(&self, i: usize, n: u64) {
        self.buckets[i].fetch_add(n, Ordering::Relaxed);
    }

    /// Captures the current bucket contents.
    #[must_use]
    pub fn snapshot(&self) -> HistoSnapshot {
        HistoSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Pure-data capture of a [`Histo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`Histo::bucket_of`]).
    pub buckets: [u64; HISTO_BUCKETS],
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HISTO_BUCKETS],
        }
    }
}

impl HistoSnapshot {
    /// Records one observation with plain (non-atomic) arithmetic. Used as
    /// a single-owner accumulator inside `&mut self` hot paths, merged into
    /// a registry [`Histo`] via [`Histo::merge_from`] at export time.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.buckets[Histo::bucket_of(value)] += 1;
    }

    /// Adds `other` into `self` (the commutative, associative histogram
    /// merge the registry tree is built on).
    pub fn merge(&mut self, other: &HistoSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.wrapping_add(*o);
        }
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 1,
            64.. => u64::MAX,
            _ => 1u64 << i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::default();
        g.add(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histo_buckets_partition_the_u64_range() {
        assert_eq!(Histo::bucket_of(0), 0);
        assert_eq!(Histo::bucket_of(1), 1);
        assert_eq!(Histo::bucket_of(2), 2);
        assert_eq!(Histo::bucket_of(3), 2);
        assert_eq!(Histo::bucket_of(4), 3);
        assert_eq!(Histo::bucket_of(u64::MAX), 64);
        // Every bucket's values map back into it.
        for i in 1..64 {
            let lo = 1u64 << (i - 1);
            let hi = HistoSnapshot::bucket_bound(i) - 1;
            assert_eq!(Histo::bucket_of(lo), i);
            assert_eq!(Histo::bucket_of(hi), i);
        }
    }

    #[test]
    fn histo_observe_and_mean() {
        let h = Histo::default();
        for v in [0u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 106);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[7], 1); // 100 in [64, 128)
        assert!((s.mean() - 21.2).abs() < 1e-12);
        assert_eq!(HistoSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn local_accumulator_round_trips_through_merge_from() {
        let mut local = HistoSnapshot::default();
        local.observe(0);
        local.observe(33);
        let shared = Histo::default();
        shared.observe(33);
        shared.merge_from(&local);
        let s = shared.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 66);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[6], 2);
    }

    #[test]
    fn histo_merge_adds_bucketwise() {
        let a = Histo::default();
        let b = Histo::default();
        a.observe(5);
        b.observe(5);
        b.observe(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1010);
        assert_eq!(m.buckets[3], 2);
        assert_eq!(m.buckets[10], 1);
    }
}
