//! Micro-step decomposition of [`Histo`] mutation, for exhaustive
//! interleaving checks.
//!
//! [`Histo::observe`] is deliberately *not* atomic as a whole: it is three
//! independent `Relaxed` RMWs (count, then sum, then bucket), and
//! [`Histo::merge_from`] is one RMW per non-empty field. A concurrent
//! reader can observe torn intermediate states (count bumped, sum not
//! yet), but once every writer has joined, the totals are exact — relaxed
//! atomic addition never loses increments. That is the crate's central
//! correctness claim, and the `analysis` crate's `interleave-check` pass
//! proves it exhaustively for bounded schedules by replaying these steps
//! one at a time under *every* possible thread interleaving.
//!
//! This module is the seam that makes the replay faithful: each
//! [`HistoStep`] corresponds to exactly one atomic RMW of the real
//! implementation, and [`apply`] issues that same RMW on a real [`Histo`].
//! [`crate::Counter::add`] and [`crate::Gauge::add`] are single RMWs
//! already and need no decomposition — a checker schedules those calls
//! directly as steps.

use crate::metrics::{Histo, HistoSnapshot};

/// One atomic RMW of a [`Histo`] mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoStep {
    /// `count.fetch_add(n, Relaxed)`.
    Count(u64),
    /// `sum.fetch_add(v, Relaxed)`.
    Sum(u64),
    /// `buckets[i].fetch_add(n, Relaxed)`.
    Bucket(usize, u64),
}

/// The exact RMW sequence [`Histo::observe`] issues for `value`: count,
/// then sum, then the bucket.
#[must_use]
pub fn observe_steps(value: u64) -> [HistoStep; 3] {
    [
        HistoStep::Count(1),
        HistoStep::Sum(value),
        HistoStep::Bucket(Histo::bucket_of(value), 1),
    ]
}

/// The exact RMW sequence [`Histo::merge_from`] issues for `snap`: count,
/// sum, then every *non-zero* bucket (empty buckets are skipped, exactly
/// as the real merge skips them).
#[must_use]
pub fn merge_steps(snap: &HistoSnapshot) -> Vec<HistoStep> {
    let mut steps = vec![HistoStep::Count(snap.count), HistoStep::Sum(snap.sum)];
    for (i, &n) in snap.buckets.iter().enumerate() {
        if n != 0 {
            steps.push(HistoStep::Bucket(i, n));
        }
    }
    steps
}

/// Issues `step`'s single RMW on `h` — the same instruction the real
/// [`Histo::observe`] / [`Histo::merge_from`] would execute at that point.
pub fn apply(h: &Histo, step: HistoStep) {
    match step {
        HistoStep::Count(n) => h.step_count(n),
        HistoStep::Sum(v) => h.step_sum(v),
        HistoStep::Bucket(i, n) => h.step_bucket(i, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_steps_replay_to_the_same_state_in_any_order() {
        // All 6 permutations of the 3 RMWs converge to observe()'s result:
        // the steps commute because each touches a distinct field.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = Histo::default();
        reference.observe(77);
        let steps = observe_steps(77);
        for p in perms {
            let h = Histo::default();
            for &i in &p {
                apply(&h, steps[i]);
            }
            assert_eq!(h.snapshot(), reference.snapshot(), "order {p:?}");
        }
    }

    #[test]
    fn merge_steps_replay_matches_merge_from() {
        let mut snap = HistoSnapshot::default();
        snap.observe(0);
        snap.observe(5);
        snap.observe(1 << 40);
        let reference = Histo::default();
        reference.merge_from(&snap);
        let h = Histo::default();
        let steps = merge_steps(&snap);
        // count + sum + 3 distinct non-empty buckets.
        assert_eq!(steps.len(), 5);
        for s in steps {
            apply(&h, s);
        }
        assert_eq!(h.snapshot(), reference.snapshot());
    }

    #[test]
    fn empty_merge_is_count_and_sum_only() {
        let steps = merge_steps(&HistoSnapshot::default());
        assert_eq!(steps, vec![HistoStep::Count(0), HistoStep::Sum(0)]);
    }
}
