//! Hierarchical metric registries and their pure-data snapshots.
//!
//! A [`Registry`] is a named bag of metrics plus child registries, mirroring
//! the component tree of the simulator (`perfsuite` → `ctrl` → `tlb`, …).
//! Registration takes a lock; the returned `Arc` handles mutate lock-free,
//! so components register once and record on the hot path without
//! contention. [`Snapshot`] captures the tree as plain data: it merges by
//! addition (commutative + associative — the determinism battery's
//! foundation) and strips volatile metrics via
//! [`Snapshot::deterministic`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histo, HistoSnapshot};

/// A registered metric handle plus its volatility flag.
#[derive(Debug, Clone)]
enum Metric {
    Counter {
        handle: Arc<Counter>,
        volatile: bool,
    },
    Gauge {
        handle: Arc<Gauge>,
        volatile: bool,
    },
    Histo {
        handle: Arc<Histo>,
        volatile: bool,
    },
}

/// A named, nestable group of metrics.
///
/// Cheap to create (used as a throwaway by the non-observed sim APIs) and
/// `Sync`, so experiment cells running on any number of worker threads can
/// export into one shared registry.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    children: Mutex<BTreeMap<String, Arc<Registry>>>,
}

/// Locks a mutex, recovering the guard if a panicking test poisoned it
/// (metric state stays internally consistent under plain additions).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Creates an empty root registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the child registry `name`, creating it on first use.
    #[must_use]
    pub fn child(&self, name: &str) -> Arc<Registry> {
        Arc::clone(
            lock(&self.children)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Registry::new())),
        )
    }

    fn register(&self, name: &str, volatile: bool, make: fn(bool) -> Metric) -> Metric {
        let mut metrics = lock(&self.metrics);
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| make(volatile));
        entry.clone()
    }

    fn counter_impl(&self, name: &str, volatile: bool) -> Arc<Counter> {
        let make: fn(bool) -> Metric = |volatile| Metric::Counter {
            handle: Arc::new(Counter::default()),
            volatile,
        };
        match self.register(name, volatile, make) {
            Metric::Counter { handle, .. } => handle,
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    fn gauge_impl(&self, name: &str, volatile: bool) -> Arc<Gauge> {
        let make: fn(bool) -> Metric = |volatile| Metric::Gauge {
            handle: Arc::new(Gauge::default()),
            volatile,
        };
        match self.register(name, volatile, make) {
            Metric::Gauge { handle, .. } => handle,
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    fn histo_impl(&self, name: &str, volatile: bool) -> Arc<Histo> {
        let make: fn(bool) -> Metric = |volatile| Metric::Histo {
            handle: Arc::new(Histo::default()),
            volatile,
        };
        match self.register(name, volatile, make) {
            Metric::Histo { handle, .. } => handle,
            _ => panic!("telemetry metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_impl(name, false)
    }

    /// Like [`Registry::counter`], but marked volatile: excluded from
    /// [`Snapshot::deterministic`]. Use for thread- or wall-clock-dependent
    /// counts (e.g. work steals).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn counter_volatile(&self, name: &str) -> Arc<Counter> {
        self.counter_impl(name, true)
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_impl(name, false)
    }

    /// Like [`Registry::gauge`], but marked volatile (see
    /// [`Registry::counter_volatile`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn gauge_volatile(&self, name: &str) -> Arc<Gauge> {
        self.gauge_impl(name, true)
    }

    /// Returns the histogram `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn histo(&self, name: &str) -> Arc<Histo> {
        self.histo_impl(name, false)
    }

    /// Like [`Registry::histo`], but marked volatile (see
    /// [`Registry::counter_volatile`]). Use for wall-clock distributions.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn histo_volatile(&self, name: &str) -> Arc<Histo> {
        self.histo_impl(name, true)
    }

    /// Captures the registry tree as pure data.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = lock(&self.metrics)
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter { handle, volatile } => MetricValue::Counter {
                        value: handle.get(),
                        volatile: *volatile,
                    },
                    Metric::Gauge { handle, volatile } => MetricValue::Gauge {
                        value: handle.get(),
                        volatile: *volatile,
                    },
                    Metric::Histo { handle, volatile } => MetricValue::Histo {
                        value: Box::new(handle.snapshot()),
                        volatile: *volatile,
                    },
                };
                (name.clone(), value)
            })
            .collect();
        let children = lock(&self.children)
            .iter()
            .map(|(name, child)| (name.clone(), child.snapshot()))
            .collect();
        Snapshot { metrics, children }
    }

    /// Replays a captured [`Snapshot`] into this registry, additively:
    /// every metric in the snapshot is registered here on first sight
    /// (keeping the snapshot's volatility flag) and its captured value is
    /// added on top of whatever this registry already holds. The inverse
    /// of [`Registry::snapshot`] up to addition — a cluster driver uses it
    /// to roll many per-host registries into one aggregate child.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot metric name is already registered here as a
    /// different metric type.
    pub fn absorb(&self, snap: &Snapshot) {
        for (name, value) in &snap.metrics {
            match value {
                MetricValue::Counter { value, volatile } => {
                    self.counter_impl(name, *volatile).add(*value);
                }
                MetricValue::Gauge { value, volatile } => {
                    self.gauge_impl(name, *volatile).add(*value);
                }
                MetricValue::Histo { value, volatile } => {
                    self.histo_impl(name, *volatile).merge_from(value);
                }
            }
        }
        for (name, child) in &snap.children {
            self.child(name).absorb(child);
        }
    }
}

/// A captured metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Captured [`Counter`].
    Counter {
        /// Count at capture time.
        value: u64,
        /// Excluded from [`Snapshot::deterministic`] when set.
        volatile: bool,
    },
    /// Captured [`Gauge`].
    Gauge {
        /// Level at capture time.
        value: i64,
        /// Excluded from [`Snapshot::deterministic`] when set.
        volatile: bool,
    },
    /// Captured [`Histo`]. Boxed: the fixed bucket array dwarfs the scalar
    /// variants.
    Histo {
        /// Buckets at capture time.
        value: Box<HistoSnapshot>,
        /// Excluded from [`Snapshot::deterministic`] when set.
        volatile: bool,
    },
}

impl MetricValue {
    /// Whether this metric is excluded from deterministic comparison.
    #[must_use]
    pub fn is_volatile(&self) -> bool {
        match self {
            MetricValue::Counter { volatile, .. }
            | MetricValue::Gauge { volatile, .. }
            | MetricValue::Histo { volatile, .. } => *volatile,
        }
    }

    /// Adds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two values are different metric types (a snapshot
    /// schema mismatch, which the golden fixture test prevents).
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter { value: a, .. }, MetricValue::Counter { value: b, .. }) => {
                *a = a.wrapping_add(*b);
            }
            (MetricValue::Gauge { value: a, .. }, MetricValue::Gauge { value: b, .. }) => {
                *a = a.wrapping_add(*b);
            }
            (MetricValue::Histo { value: a, .. }, MetricValue::Histo { value: b, .. }) => {
                a.merge(b);
            }
            _ => panic!("telemetry merge: metric type mismatch"),
        }
    }
}

/// A pure-data capture of a [`Registry`] tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// This level's metrics, alphabetically ordered.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Child snapshots, alphabetically ordered.
    pub children: BTreeMap<String, Snapshot>,
}

impl Snapshot {
    /// Adds `other` into `self`, metric by metric and child by child.
    /// Metrics present only in one side are kept as-is; the operation is
    /// commutative and associative over snapshot multisets.
    ///
    /// # Panics
    ///
    /// Panics if a shared metric name has different types on each side.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(ours) => ours.merge(theirs),
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
            }
        }
        for (name, theirs) in &other.children {
            self.children.entry(name.clone()).or_default().merge(theirs);
        }
    }

    /// A copy with every volatile metric removed, recursively. This is the
    /// view the determinism battery compares across `SILOZ_THREADS`.
    #[must_use]
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(_, v)| !v.is_volatile())
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            children: self
                .children
                .iter()
                .map(|(k, v)| (k.clone(), v.deterministic()))
                .collect(),
        }
    }

    /// Total number of metrics in the tree (diagnostics/tests).
    #[must_use]
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
            + self
                .children
                .values()
                .map(Snapshot::metric_count)
                .sum::<usize>()
    }

    /// Stable JSON rendering (see [`crate::encode::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::encode::to_json(self)
    }

    /// Prometheus text-format rendering (see
    /// [`crate::encode::to_prometheus`]).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        crate::encode::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.metrics["x"],
            MetricValue::Counter {
                value: 5,
                volatile: false
            }
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn children_nest_and_snapshot() {
        let root = Registry::new();
        root.child("ctrl").child("tlb").counter("hits").add(7);
        let snap = root.snapshot();
        assert_eq!(
            snap.children["ctrl"].children["tlb"].metrics["hits"],
            MetricValue::Counter {
                value: 7,
                volatile: false
            }
        );
        assert_eq!(snap.metric_count(), 1);
    }

    #[test]
    fn merge_adds_and_unions() {
        let a = Registry::new();
        a.counter("n").add(1);
        a.child("c").gauge("g").add(-2);
        let b = Registry::new();
        b.counter("n").add(10);
        b.counter("only_b").add(4);
        b.child("c").gauge("g").add(5);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(
            m.metrics["n"],
            MetricValue::Counter {
                value: 11,
                volatile: false
            }
        );
        assert_eq!(
            m.metrics["only_b"],
            MetricValue::Counter {
                value: 4,
                volatile: false
            }
        );
        assert_eq!(
            m.children["c"].metrics["g"],
            MetricValue::Gauge {
                value: 3,
                volatile: false
            }
        );
    }

    #[test]
    fn absorb_replays_a_snapshot_additively() {
        let src = Registry::new();
        src.counter("events").add(3);
        src.counter_volatile("wall_ns").add(99);
        src.child("hv").gauge("live").add(2);
        src.child("hv").histo("lat").observe(5);
        let dst = Registry::new();
        dst.counter("events").add(1);
        dst.absorb(&src.snapshot());
        dst.absorb(&src.snapshot());
        let snap = dst.snapshot();
        assert_eq!(
            snap.metrics["events"],
            MetricValue::Counter {
                value: 7,
                volatile: false
            }
        );
        assert!(snap.metrics["wall_ns"].is_volatile());
        assert_eq!(
            snap.children["hv"].metrics["live"],
            MetricValue::Gauge {
                value: 4,
                volatile: false
            }
        );
        match &snap.children["hv"].metrics["lat"] {
            MetricValue::Histo { value, .. } => {
                assert_eq!((value.count, value.sum), (2, 10));
            }
            other => panic!("lat must stay a histogram, got {other:?}"),
        }
        // Absorbing a snapshot of `dst` into a fresh registry round-trips.
        let fresh = Registry::new();
        fresh.absorb(&snap);
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    fn deterministic_strips_volatile_recursively() {
        let root = Registry::new();
        root.counter("keep").inc();
        root.counter_volatile("drop").inc();
        let child = root.child("engine");
        child.histo_volatile("wall_ns").observe(123);
        child.counter("cells").inc();
        let det = root.snapshot().deterministic();
        assert!(det.metrics.contains_key("keep"));
        assert!(!det.metrics.contains_key("drop"));
        assert!(det.children["engine"].metrics.contains_key("cells"));
        assert!(!det.children["engine"].metrics.contains_key("wall_ns"));
    }
}
