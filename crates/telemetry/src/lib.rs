//! Workspace-wide telemetry: the observability substrate of the Siloz
//! reproduction.
//!
//! The paper's evaluation is only trustworthy if the simulator's *internal*
//! event streams — activations, TRR triggers, refresh windows, ECC
//! corrections, flip containment, decode-TLB behavior, FR-FCFS scheduling,
//! EPT walks, guard denials — are observable and checkable, not just the
//! final figure outputs. This crate provides that substrate:
//!
//! - [`Counter`] / [`Gauge`] — lock-free atomics for event counts and
//!   additive levels;
//! - [`Histo`] — a fixed-bucket log2 histogram (65 power-of-two buckets
//!   covering all of `u64`) for latency- and size-shaped distributions;
//! - [`Registry`] — a named, hierarchical group of metrics. Component
//!   instances export into per-component child registries; registries merge
//!   by *addition*, which is commutative and associative, so totals
//!   accumulated by concurrently running experiment cells are bit-identical
//!   for any worker-thread count;
//! - [`Snapshot`] — a pure-data capture of a registry tree with a stable,
//!   alphabetically-ordered JSON schema (see `DESIGN.md` §Telemetry) and a
//!   Prometheus text encoding for future serving.
//!
//! Metrics registered through the `*_volatile` constructors (wall-clock
//! times, work-steal counts, worker counts) are excluded from
//! [`Snapshot::deterministic`], which is what the determinism test battery
//! compares across `SILOZ_THREADS` settings.
//!
//! # Examples
//!
//! ```
//! use telemetry::Registry;
//!
//! let root = Registry::new();
//! let dram = root.child("dram");
//! dram.counter("acts").add(3);
//! dram.histo("act_gap_ns").observe(47);
//! let snap = root.snapshot();
//! assert!(snap.to_json().contains("\"acts\""));
//! assert_eq!(snap, root.snapshot());
//! ```

#![forbid(unsafe_code)]

pub mod encode;
pub mod hooks;
pub mod metrics;
pub mod registry;

pub use metrics::{Counter, Gauge, Histo, HistoSnapshot, HISTO_BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot};

use std::path::PathBuf;

/// Environment variable overriding where [`write_snapshot`] puts its files
/// (default: the current working directory).
pub const TELEMETRY_DIR_ENV: &str = "SILOZ_TELEMETRY_DIR";

/// Version tag embedded in every snapshot file; bump only with a golden
/// fixture update (the schema regression test pins it).
pub const SCHEMA_VERSION: u32 = 1;

/// Serializes `snapshot` to `TELEMETRY_{label}.json` in the current
/// directory (or [`TELEMETRY_DIR_ENV`]) and returns the path written.
///
/// The file wraps the snapshot with the schema version and suite label:
///
/// ```json
/// {"schema": 1, "suite": "<label>", "telemetry": { ... }}
/// ```
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_snapshot(label: &str, snapshot: &Snapshot) -> std::io::Result<PathBuf> {
    let dir = std::env::var(TELEMETRY_DIR_ENV).unwrap_or_else(|_| ".".into());
    let path = PathBuf::from(dir).join(format!("TELEMETRY_{label}.json"));
    std::fs::write(&path, encode::snapshot_file(label, snapshot))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_snapshot_lands_in_requested_dir() {
        let dir = std::env::temp_dir().join("telemetry_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var(TELEMETRY_DIR_ENV, &dir);
        let root = Registry::new();
        root.counter("events").inc();
        let path = write_snapshot("unit", &root.snapshot()).unwrap();
        std::env::remove_var(TELEMETRY_DIR_ENV);
        assert!(path.ends_with("TELEMETRY_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"suite\": \"unit\""));
        assert!(body.contains("\"schema\": 1"));
        std::fs::remove_file(path).unwrap();
    }
}
