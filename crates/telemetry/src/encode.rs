//! Stable serializations of [`Snapshot`]: JSON (the `TELEMETRY_*.json`
//! schema, pinned by a golden fixture test) and Prometheus text format.
//!
//! The JSON encoder is hand-rolled — the workspace builds offline with no
//! serde — and deliberately boring: 2-space indent, alphabetical key order
//! (inherited from the snapshot's `BTreeMap`s), histogram buckets encoded
//! sparsely as `[bucket_index, count]` pairs so 65-bucket histograms stay
//! readable, and `"volatile": true` emitted only when set.

use std::fmt::Write as _;

use crate::metrics::HistoSnapshot;
use crate::registry::{MetricValue, Snapshot};

/// Escapes `s` for use inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn histo_buckets_json(h: &HistoSnapshot) -> String {
    let pairs: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| format!("[{i}, {c}]"))
        .collect();
    format!("[{}]", pairs.join(", "))
}

fn metric_json(out: &mut String, value: &MetricValue, depth: usize) {
    let volatile_suffix = if value.is_volatile() {
        ", \"volatile\": true"
    } else {
        ""
    };
    match value {
        MetricValue::Counter { value, .. } => {
            let _ = write!(
                out,
                "{{\"type\": \"counter\", \"value\": {value}{volatile_suffix}}}"
            );
        }
        MetricValue::Gauge { value, .. } => {
            let _ = write!(
                out,
                "{{\"type\": \"gauge\", \"value\": {value}{volatile_suffix}}}"
            );
        }
        MetricValue::Histo {
            value: histo,
            volatile,
        } => {
            out.push_str("{\n");
            indent(out, depth + 1);
            let _ = writeln!(out, "\"type\": \"histo\",");
            indent(out, depth + 1);
            let _ = writeln!(out, "\"count\": {},", histo.count);
            indent(out, depth + 1);
            let _ = writeln!(out, "\"sum\": {},", histo.sum);
            indent(out, depth + 1);
            let _ = write!(out, "\"buckets\": {}", histo_buckets_json(histo));
            if *volatile {
                out.push_str(",\n");
                indent(out, depth + 1);
                out.push_str("\"volatile\": true");
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
    }
}

fn snapshot_json(out: &mut String, snap: &Snapshot, depth: usize) {
    out.push_str("{\n");
    indent(out, depth + 1);
    out.push_str("\"metrics\": {");
    if snap.metrics.is_empty() {
        out.push('}');
    } else {
        out.push('\n');
        let last = snap.metrics.len() - 1;
        for (i, (name, value)) in snap.metrics.iter().enumerate() {
            indent(out, depth + 2);
            let _ = write!(out, "\"{}\": ", escape(name));
            metric_json(out, value, depth + 2);
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        indent(out, depth + 1);
        out.push('}');
    }
    out.push_str(",\n");
    indent(out, depth + 1);
    out.push_str("\"children\": {");
    if snap.children.is_empty() {
        out.push('}');
    } else {
        out.push('\n');
        let last = snap.children.len() - 1;
        for (i, (name, child)) in snap.children.iter().enumerate() {
            indent(out, depth + 2);
            let _ = write!(out, "\"{}\": ", escape(name));
            snapshot_json(out, child, depth + 2);
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        indent(out, depth + 1);
        out.push('}');
    }
    out.push('\n');
    indent(out, depth);
    out.push('}');
}

/// Renders `snap` as stable, 2-space-indented JSON.
#[must_use]
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    snapshot_json(&mut out, snap, 0);
    out
}

/// Renders the full `TELEMETRY_*.json` file body: the snapshot wrapped with
/// the schema version and suite label, ending in a newline.
#[must_use]
pub fn snapshot_file(label: &str, snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", crate::SCHEMA_VERSION);
    let _ = writeln!(out, "  \"suite\": \"{}\",", escape(label));
    out.push_str("  \"telemetry\": ");
    snapshot_json(&mut out, snap, 1);
    out.push_str("\n}\n");
    out
}

/// Sanitizes a path segment into a Prometheus metric-name segment.
fn prom_segment(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_metrics(out: &mut String, snap: &Snapshot, prefix: &str) {
    for (name, value) in &snap.metrics {
        let path = format!("{prefix}_{}", prom_segment(name));
        match value {
            MetricValue::Counter { value, .. } => {
                let _ = writeln!(out, "# TYPE {path} counter");
                let _ = writeln!(out, "{path} {value}");
            }
            MetricValue::Gauge { value, .. } => {
                let _ = writeln!(out, "# TYPE {path} gauge");
                let _ = writeln!(out, "{path} {value}");
            }
            MetricValue::Histo { value, .. } => {
                let _ = writeln!(out, "# TYPE {path} histogram");
                let mut cumulative = 0u64;
                for (i, &c) in value.buckets.iter().enumerate() {
                    cumulative += c;
                    if c != 0 {
                        let le = if i >= 64 {
                            "+Inf".to_string()
                        } else {
                            format!("{}", HistoSnapshot::bucket_bound(i) - 1)
                        };
                        let _ = writeln!(out, "{path}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                let _ = writeln!(out, "{path}_bucket{{le=\"+Inf\"}} {}", value.count);
                let _ = writeln!(out, "{path}_sum {}", value.sum);
                let _ = writeln!(out, "{path}_count {}", value.count);
            }
        }
    }
    for (name, child) in &snap.children {
        prom_metrics(out, child, &format!("{prefix}_{}", prom_segment(name)));
    }
}

/// Renders `snap` in the Prometheus text exposition format, metric names
/// flattened as `siloz_<child>_..._<metric>`.
#[must_use]
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    prom_metrics(&mut out, snap, "siloz");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let root = Registry::new();
        root.counter("events").add(3);
        let ctrl = root.child("ctrl");
        ctrl.gauge("depth").add(-2);
        ctrl.histo("lat").observe(0);
        ctrl.histo("lat").observe(100);
        root.snapshot()
    }

    #[test]
    fn json_shape_is_stable() {
        let json = to_json(&sample());
        assert!(json.contains("\"events\": {\"type\": \"counter\", \"value\": 3}"));
        assert!(json.contains("\"depth\": {\"type\": \"gauge\", \"value\": -2}"));
        assert!(json.contains("\"buckets\": [[0, 1], [7, 1]]"));
        // Stable: re-encoding an identical registry produces identical text.
        assert_eq!(json, to_json(&sample()));
    }

    #[test]
    fn volatile_flag_only_when_set() {
        let root = Registry::new();
        root.counter("a").inc();
        root.counter_volatile("b").inc();
        let json = to_json(&root.snapshot());
        assert!(json.contains("\"a\": {\"type\": \"counter\", \"value\": 1}"));
        assert!(json.contains("\"b\": {\"type\": \"counter\", \"value\": 1, \"volatile\": true}"));
    }

    #[test]
    fn snapshot_file_wraps_with_schema_and_label() {
        let body = snapshot_file("unit", &sample());
        assert!(body.starts_with("{\n  \"schema\": 1,\n  \"suite\": \"unit\",\n"));
        assert!(body.ends_with("}\n"));
    }

    #[test]
    fn prometheus_flattens_paths() {
        let text = to_prometheus(&sample());
        assert!(text.contains("siloz_events 3"));
        assert!(text.contains("siloz_ctrl_depth -2"));
        assert!(text.contains("siloz_ctrl_lat_count 2"));
        assert!(text.contains("siloz_ctrl_lat_sum 100"));
        assert!(text.contains("siloz_ctrl_lat_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
