//! Property tests over the metric algebra: histogram merging must be a
//! commutative monoid (that is what makes multi-threaded export
//! deterministic), and atomic counters must never lose concurrent
//! increments.

use proptest::prelude::*;
use telemetry::{Counter, Histo, HistoSnapshot, Registry};

/// Builds a snapshot by observing each value once.
fn histo_of(values: &[u64]) -> HistoSnapshot {
    let h = Histo::default();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is commutative: A + B == B + A.
    #[test]
    fn histo_merge_commutes(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb) = (histo_of(&a), histo_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: (A + B) + C == A + (B + C).
    #[test]
    fn histo_merge_associates(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        c in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ha, hb, hc) = (histo_of(&a), histo_of(&b), histo_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge equals observing the concatenation — the identity the shared
    /// registry relies on when many cells export into one histogram.
    #[test]
    fn histo_merge_equals_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let mut merged = histo_of(&a);
        merged.merge(&histo_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, histo_of(&concat));
    }

    /// Concurrent increments from several threads are never lost, and
    /// mid-flight snapshots are monotone and bounded by the final total.
    #[test]
    fn concurrent_counter_increments_are_never_lost(
        threads in 2usize..6,
        per_thread in 1u64..400,
    ) {
        let counter = Counter::default();
        let observed = std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
            // Sample while writers run: each sample must be monotone and
            // never exceed the eventual total.
            let mut last = 0;
            let mut samples = Vec::new();
            for _ in 0..50 {
                let v = counter.get();
                samples.push(v);
                prop_assert!(v >= last, "snapshot went backwards");
                last = v;
            }
            Ok(samples)
        })?;
        let total = threads as u64 * per_thread;
        prop_assert_eq!(counter.get(), total);
        prop_assert!(observed.iter().all(|&v| v <= total));
    }

    /// The same holds through registry handles: two threads sharing a
    /// counter by name add up exactly.
    #[test]
    fn registry_counter_is_exact_under_sharing(
        x in 1u64..500,
        y in 1u64..500,
    ) {
        let reg = Registry::new();
        std::thread::scope(|s| {
            let reg = &reg;
            s.spawn(move || reg.counter("n").add(x));
            s.spawn(move || reg.counter("n").add(y));
        });
        let snap = reg.snapshot();
        prop_assert_eq!(
            snap.metrics["n"].clone(),
            telemetry::MetricValue::Counter { value: x + y, volatile: false }
        );
    }
}
