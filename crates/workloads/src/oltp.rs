//! SysBench-mySQL-like OLTP over a real B+-tree substrate (§7.3).
//!
//! SysBench's OLTP mix is point selects, range scans, and index updates
//! against InnoDB B+-trees. The substrate here is an actual fixed-fanout
//! B+-tree built over a [`TraceArena`]: lookups descend node by node
//! (dependent reads — the classic index walk), scans follow leaf links, and
//! updates write rows.

use crate::arena::TraceArena;
use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

const NODE_BYTES: u64 = 4096; // InnoDB-like page size
const FANOUT: usize = 128;
const ROW_BYTES: u64 = 256;

#[derive(Debug, Clone)]
struct Node {
    offset: u64,
    keys: Vec<u64>,
    /// Children node indices (internal) — empty for leaves.
    children: Vec<usize>,
    /// Row arena offsets (leaves).
    rows: Vec<u64>,
    next_leaf: Option<usize>,
}

/// A fixed-fanout B+-tree over an arena.
#[derive(Debug)]
pub struct BplusTree {
    arena: TraceArena,
    nodes: Vec<Node>,
    root: usize,
    height: u32,
    items: u64,
}

impl BplusTree {
    /// Builds a tree of `items` sequential keys, bulk-loaded bottom-up.
    #[must_use]
    pub fn bulk_load(arena_bytes: u64, items: u64) -> Self {
        let mut arena = TraceArena::new(arena_bytes);
        let mut nodes = Vec::new();
        // Leaves.
        let mut level: Vec<usize> = Vec::new();
        let leaf_cap = FANOUT as u64;
        let mut k = 0u64;
        while k < items {
            let n = leaf_cap.min(items - k);
            let offset = arena.alloc(NODE_BYTES, NODE_BYTES);
            let mut keys = Vec::with_capacity(n as usize);
            let mut rows = Vec::with_capacity(n as usize);
            for i in 0..n {
                keys.push(k + i);
                rows.push(arena.alloc(ROW_BYTES, 64));
            }
            let idx = nodes.len();
            nodes.push(Node {
                offset,
                keys,
                children: Vec::new(),
                rows,
                next_leaf: None,
            });
            if let Some(&prev) = level.last() {
                nodes[prev].next_leaf = Some(idx);
            }
            level.push(idx);
            k += n;
        }
        let mut height = 1u32;
        // Internal levels.
        while level.len() > 1 {
            let mut upper = Vec::new();
            for chunk in level.chunks(FANOUT) {
                let offset = arena.alloc(NODE_BYTES, NODE_BYTES);
                let keys = chunk.iter().map(|&c| nodes[c].keys[0]).collect();
                let idx = nodes.len();
                nodes.push(Node {
                    offset,
                    keys,
                    children: chunk.to_vec(),
                    rows: Vec::new(),
                    next_leaf: None,
                });
                upper.push(idx);
            }
            level = upper;
            height += 1;
        }
        let root = level.first().copied().unwrap_or(0);
        // Bulk load is warmup, not traffic.
        let _ = arena.take_trace();
        Self {
            arena,
            nodes,
            root,
            height,
            items,
        }
    }

    /// Tree height (root to leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of rows.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.items
    }

    fn descend(&mut self, key: u64) -> usize {
        let mut idx = self.root;
        loop {
            let node = &self.nodes[idx];
            self.arena.read_dependent(node.offset, 512); // touched key area
            if node.children.is_empty() {
                return idx;
            }
            // Branch: find child by key separator.
            let pos = match node.keys.binary_search(&key) {
                Ok(p) => p,
                Err(p) => p.saturating_sub(1),
            };
            idx = node.children[pos.min(node.children.len() - 1)];
        }
    }

    /// Point select.
    pub fn select(&mut self, key: u64) -> bool {
        self.arena.compute(150_000); // SQL parse/plan/latch cost
        let leaf = self.descend(key);
        let node = &self.nodes[leaf];
        if let Ok(pos) = node.keys.binary_search(&key) {
            let row = node.rows[pos];
            self.arena.read(row, ROW_BYTES);
            true
        } else {
            false
        }
    }

    /// Range scan of `count` rows from `key` via leaf links.
    pub fn scan(&mut self, key: u64, count: usize) -> usize {
        self.arena.compute(200_000);
        let mut leaf = self.descend(key);
        let mut seen = 0usize;
        loop {
            let (rows, next, offset) = {
                let n = &self.nodes[leaf];
                (n.rows.clone(), n.next_leaf, n.offset)
            };
            self.arena.read(offset, NODE_BYTES);
            for row in rows {
                if seen >= count {
                    return seen;
                }
                self.arena.read(row, ROW_BYTES);
                seen += 1;
            }
            match next {
                Some(n) => leaf = n,
                None => return seen,
            }
        }
    }

    /// Index update: descend, rewrite the row and the leaf.
    pub fn update(&mut self, key: u64) -> bool {
        self.arena.compute(250_000);
        let leaf = self.descend(key);
        let node = &self.nodes[leaf];
        if let Ok(pos) = node.keys.binary_search(&key) {
            let row = node.rows[pos];
            let off = node.offset;
            self.arena.write(row, ROW_BYTES);
            self.arena.write(off, 128); // leaf metadata/undo
            true
        } else {
            false
        }
    }

    fn take_trace(&mut self) -> Vec<GuestOp> {
        self.arena.take_trace()
    }
}

/// The SysBench-like OLTP mix: 70% point selects, 20% updates, 10% scans.
#[derive(Debug)]
pub struct SysbenchOltp {
    tree: BplusTree,
    zipf: crate::zipf::Zipfian,
    working_set: u64,
}

impl SysbenchOltp {
    /// An OLTP instance sized to `working_set`.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        // Rows + nodes ≈ 256 B + overhead per item.
        let items = (working_set / 512).max(256);
        Self {
            tree: BplusTree::bulk_load(working_set, items),
            zipf: crate::zipf::Zipfian::ycsb(items),
            working_set,
        }
    }
}

impl WorkloadGen for SysbenchOltp {
    fn name(&self) -> String {
        "mysql".into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::Throughput
    }

    fn cost_hint(&self) -> u64 {
        3
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let mut out: Vec<GuestOp> = Vec::with_capacity(count + 512);
        while out.len() < count {
            let key = self.zipf.sample(rng);
            let dice: f64 = rng.gen();
            if dice < 0.7 {
                self.tree.select(key);
            } else if dice < 0.9 {
                self.tree.update(key);
            } else {
                self.tree.scan(key, rng.gen_range(10..=100));
            }
            out.extend(self.tree.take_trace());
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bulk_load_builds_a_multilevel_tree() {
        let t = BplusTree::bulk_load(64 << 20, 100_000);
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.items(), 100_000);
    }

    #[test]
    fn select_hits_and_misses() {
        let mut t = BplusTree::bulk_load(16 << 20, 10_000);
        assert!(t.select(5_000));
        assert!(!t.select(999_999));
        let trace = t.take_trace();
        // Each descend emits height dependent node reads.
        assert!(trace.iter().filter(|o| o.dependent).count() >= 2);
    }

    #[test]
    fn scan_follows_leaf_links() {
        let mut t = BplusTree::bulk_load(16 << 20, 10_000);
        let _ = t.take_trace();
        let got = t.scan(100, 500);
        assert_eq!(got, 500);
        let trace = t.take_trace();
        assert!(trace.len() > 500, "row reads + node reads");
    }

    #[test]
    fn update_writes_row_and_leaf() {
        let mut t = BplusTree::bulk_load(8 << 20, 1_000);
        let _ = t.take_trace();
        assert!(t.update(42));
        let trace = t.take_trace();
        assert!(trace.iter().any(|o| o.write));
    }

    #[test]
    fn oltp_mix_generates() {
        let mut wl = SysbenchOltp::new(16 << 20);
        let mut rng = StdRng::seed_from_u64(6);
        let ops = wl.generate(10_000, &mut rng);
        assert_eq!(ops.len(), 10_000);
        let writes = ops.iter().filter(|o| o.write).count();
        assert!(writes > 0);
        assert!(writes < ops.len() / 2, "select-dominated");
    }
}
