//! Zipfian and "latest" request distributions (the YCSB standard mix).

use rand::Rng;

/// A Zipfian sampler over `[0, n)` with parameter `theta` (YCSB default
/// 0.99), using the Gray et al. quick method with scrambling.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    /// `0.5^theta`, hoisted out of [`Self::sample`]'s rank-1 cutoff test.
    half_pow_theta: f64,
    scramble: bool,
}

impl Zipfian {
    /// A sampler over `n` items with YCSB's default skew (theta = 0.99),
    /// scrambled so hot keys spread over the keyspace.
    #[must_use]
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99, true)
    }

    /// A sampler with explicit skew; `scramble = false` keeps item 0 the
    /// hottest (useful for tests).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64, scramble: bool) -> Self {
        assert!(n > 0, "empty keyspace");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zeta_n = Self::zeta_cached(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
            scramble,
        }
    }

    /// Memoized [`Self::zeta`] for large keyspaces: `zeta(n, theta)` is a
    /// pure function, and figure grids construct the same sampler hundreds
    /// of times, so the O(n) harmonic sum is worth caching process-wide.
    /// Small keyspaces skip the lock — the sum is cheaper than contention.
    fn zeta_cached(n: u64, theta: f64) -> f64 {
        use std::collections::BTreeMap;
        use std::sync::{Mutex, OnceLock};
        if n < 1024 {
            return Self::zeta(n, theta);
        }
        static CACHE: OnceLock<Mutex<BTreeMap<(u64, u64), f64>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
        let key = (n, theta.to_bits());
        if let Some(&v) = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return v;
        }
        let v = Self::zeta(n, theta);
        cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, v);
        v
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; Euler-Maclaurin tail approximation for large n
        // keeps construction O(1)-ish without changing the distribution
        // shape measurably.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            let a = EXACT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples an item index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + self.half_pow_theta {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // FNV-style scramble keeps the distribution but spreads hot
            // ranks across the keyspace, as YCSB does. (The added constant
            // keeps rank 0 from fixing at key 0.)
            let mut h = (rank ^ 0xdead_beef_cafe).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 32;
            h % self.n
        } else {
            rank
        }
    }
}

/// The YCSB "latest" distribution: recent inserts are hottest (workload D).
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// A sampler over the most recent `window` items.
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self {
            zipf: Zipfian::new(window.max(2), 0.99, false),
        }
    }

    /// Samples an item given the current maximum id: results cluster near
    /// `max_id`.
    pub fn sample<R: Rng>(&self, max_id: u64, rng: &mut R) -> u64 {
        let back = self.zipf.sample(rng).min(max_id);
        max_id - back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn unscrambled_zipf_is_head_heavy() {
        let z = Zipfian::new(10_000, 0.99, false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut head = 0u32;
        let samples = 50_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta = 0.99, the top 1% of keys draw roughly half the
        // traffic.
        let frac = head as f64 / samples as f64;
        assert!(frac > 0.4, "head fraction {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        for n in [1u64, 2, 10, 1_000_000] {
            let z = Zipfian::ycsb(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(n);
            for _ in 0..2_000 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    fn scrambling_spreads_the_head() {
        let z = Zipfian::new(10_000, 0.99, true);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut first_bucket = 0u32;
        for _ in 0..20_000 {
            if z.sample(&mut rng) < 100 {
                first_bucket += 1;
            }
        }
        // Scrambled: the lowest 1% of key ids are no longer special.
        assert!((first_bucket as f64 / 20_000.0) < 0.1);
    }

    #[test]
    fn latest_clusters_near_max() {
        let l = Latest::new(1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut near = 0u32;
        for _ in 0..10_000 {
            let s = l.sample(5_000, &mut rng);
            assert!(s <= 5_000);
            if s > 4_900 {
                near += 1;
            }
        }
        assert!(near > 5_000, "latest skews to recent ids: {near}");
    }

    #[test]
    #[should_panic(expected = "empty keyspace")]
    fn zero_keyspace_panics() {
        let _ = Zipfian::ycsb(0);
    }
}
