//! A trace-emitting arena: data-structure substrates run on top of this and
//! every touched address becomes a [`GuestOp`].

use crate::GuestOp;

/// A bump-allocated guest-address arena that records accesses.
///
/// Substrates (KV store, B+-tree, sorter) allocate objects here and call
/// [`TraceArena::read`]/[`TraceArena::write`] as they operate; the arena
/// appends cache-line-granular operations to its trace. This keeps the
/// workload logic *real* (actual lookups, actual sorts) while producing the
/// address streams the simulator replays.
#[derive(Debug, Clone)]
pub struct TraceArena {
    capacity: u64,
    next: u64,
    trace: Vec<GuestOp>,
    /// Compute time to attach to the next touched line.
    pending_gap: u64,
    /// When muted, touches advance allocator/gap state but emit no ops
    /// (preload phases whose trace would be discarded anyway).
    muted: bool,
}

impl TraceArena {
    /// An arena of `capacity` bytes of guest address space.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            next: 0,
            trace: Vec::new(),
            pending_gap: 0,
            muted: false,
        }
    }

    /// Mutes (or unmutes) trace emission. While muted, touches still
    /// consume the pending compute gap and move the allocator exactly as an
    /// unmuted arena would — only the (discarded) trace pushes are skipped.
    /// Substrate preload phases use this: their warmup trace is thrown away,
    /// so recording it is pure overhead.
    pub fn mute(&mut self, on: bool) {
        self.muted = on;
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes allocated so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Allocates `bytes` (aligned to `align`); returns the guest offset.
    ///
    /// Wraps around when full (steady-state behaviour of long-running
    /// services that reuse memory).
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        let align = align.max(1);
        let mut at = self.next.div_ceil(align) * align;
        if at + bytes > self.capacity {
            at = 0; // Wrap: reuse the arena from the start.
        }
        self.next = at + bytes;
        at
    }

    /// Records a read of `[offset, offset + len)`.
    pub fn read(&mut self, offset: u64, len: u64) {
        self.touch(offset, len, false, 0, false);
    }

    /// Records a write of `[offset, offset + len)`.
    pub fn write(&mut self, offset: u64, len: u64) {
        self.touch(offset, len, true, 0, false);
    }

    /// Records a dependent read (pointer chase step).
    pub fn read_dependent(&mut self, offset: u64, len: u64) {
        self.touch(offset, len, false, 0, true);
    }

    /// Records compute time before the next operation.
    pub fn compute(&mut self, ps: u64) {
        self.pending_gap += ps;
    }

    fn touch(&mut self, offset: u64, len: u64, write: bool, gap_ps: u64, dependent: bool) {
        debug_assert!(offset + len <= self.capacity, "access beyond arena");
        if self.muted {
            // Identical end state to the unmuted path: the pending gap is
            // consumed (it would have attached to the first emitted line).
            self.pending_gap = 0;
            return;
        }
        let first_line = offset / 64;
        let last_line = (offset + len.max(1) - 1) / 64;
        let mut gap = gap_ps + std::mem::take(&mut self.pending_gap);
        let mut dep = dependent;
        for line in first_line..=last_line {
            self.trace.push(GuestOp {
                offset: line * 64,
                write,
                gap_ps: gap,
                dependent: dep,
            });
            gap = 0;
            dep = false; // Only the first line of an object access depends.
        }
    }

    /// Takes the accumulated trace, leaving the arena's allocator state.
    pub fn take_trace(&mut self) -> Vec<GuestOp> {
        std::mem::take(&mut self.trace)
    }

    /// Number of buffered trace operations.
    #[must_use]
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_wraps() {
        let mut a = TraceArena::new(1024);
        let x = a.alloc(100, 64);
        assert_eq!(x, 0);
        let y = a.alloc(100, 64);
        assert_eq!(y, 128);
        // Exhaust and wrap.
        let _ = a.alloc(700, 64);
        let w = a.alloc(512, 64);
        assert_eq!(w, 0, "wraps to start");
    }

    #[test]
    fn touch_emits_line_granular_ops() {
        let mut a = TraceArena::new(4096);
        a.read(10, 100); // Lines 0 and 1.
        a.write(64, 1);
        let t = a.take_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].offset, 0);
        assert_eq!(t[1].offset, 64);
        assert!(!t[0].write);
        assert!(t[2].write);
        assert!(a.take_trace().is_empty(), "trace was taken");
    }

    #[test]
    fn compute_gap_attaches_to_next_op() {
        let mut a = TraceArena::new(4096);
        a.compute(5_000);
        a.read(0, 64);
        a.read(64, 64);
        let t = a.take_trace();
        assert_eq!(t[0].gap_ps, 5_000);
        assert_eq!(t[1].gap_ps, 0);
    }

    #[test]
    fn muted_touches_move_state_but_emit_nothing() {
        let mut a = TraceArena::new(4096);
        let mut b = TraceArena::new(4096);
        b.mute(true);
        for arena in [&mut a, &mut b] {
            let off = arena.alloc(256, 64);
            arena.compute(7_000);
            arena.write(off, 256);
        }
        b.mute(false);
        assert!(b.take_trace().is_empty(), "muted touches emit no ops");
        assert!(!a.take_trace().is_empty());
        // Allocator and gap state are identical afterwards.
        assert_eq!(a.used(), b.used());
        a.read(0, 64);
        b.read(0, 64);
        assert_eq!(a.take_trace(), b.take_trace(), "no stale pending gap");
    }

    #[test]
    fn dependent_flag_applies_to_first_line_only() {
        let mut a = TraceArena::new(4096);
        a.read_dependent(0, 128);
        let t = a.take_trace();
        assert!(t[0].dependent);
        assert!(!t[1].dependent);
    }
}
