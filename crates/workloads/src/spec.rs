//! SPEC CPU 2017-like memory kernels (§7.2).
//!
//! The paper reports a SPECspeed geometric mean. We model the suite as a
//! rotation of kernels matching the memory-behaviour archetypes of the
//! benchmarks: pointer chasing over sparse graphs (mcf-like), structured
//! stencil sweeps (lbm/cactuBSSN-like), compute-dense tree search with
//! modest footprints (deepsjeng/leela-like), and mixed instruction-heavy
//! streaming (gcc/perlbench-like).

use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

/// Memory-behaviour archetypes rotated through the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// mcf-like: dependent pointer chase over a large sparse structure.
    PointerChase,
    /// lbm-like: streaming stencil, reads neighbors + writes center.
    Stencil,
    /// deepsjeng-like: compute-heavy with small hot working set.
    TreeSearch,
    /// gcc-like: mixed sequential bursts with irregular jumps.
    Mixed,
}

const KERNELS: [Kernel; 4] = [
    Kernel::PointerChase,
    Kernel::Stencil,
    Kernel::TreeSearch,
    Kernel::Mixed,
];

/// The SPEC-like suite: rotates through all kernels, reported as one
/// geometric-mean execution-time entry (matching the paper's "SPEC-2017"
/// bar).
#[derive(Debug)]
pub struct SpecSuite {
    working_set: u64,
    kernel_idx: usize,
    /// Pseudo pointer-chain state.
    chase_at: u64,
    stencil_row: u64,
}

impl SpecSuite {
    /// A suite over `working_set` bytes.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        Self {
            working_set,
            kernel_idx: 0,
            chase_at: 0,
            stencil_row: 0,
        }
    }

    fn gen_kernel(&mut self, kernel: Kernel, out: &mut Vec<GuestOp>, n: usize, rng: &mut StdRng) {
        let ws = self.working_set;
        match kernel {
            Kernel::PointerChase => {
                // Dependent loads with data-determined (random) strides.
                for _ in 0..n {
                    let next = (self.chase_at ^ (self.chase_at >> 7).wrapping_mul(0x9e37_79b9))
                        .wrapping_add(rng.gen_range(0..4096));
                    self.chase_at = (next * 64) % ws;
                    out.push(GuestOp::read(self.chase_at).chained().with_gap_ps(600));
                }
            }
            Kernel::Stencil => {
                // 2D 5-point stencil over a row-major grid of 64 B cells.
                let row_cells = 256u64;
                let rows = ws / (row_cells * 64);
                for i in 0..n as u64 {
                    let r = (self.stencil_row + i / row_cells) % rows.max(3);
                    let c = i % row_cells;
                    let at = |rr: u64, cc: u64| ((rr % rows) * row_cells + cc % row_cells) * 64;
                    out.push(GuestOp::read(at(r, c)));
                    out.push(GuestOp::read(at(r + 1, c)));
                    out.push(GuestOp::read(at(r.wrapping_sub(1), c)));
                    out.push(GuestOp::write(at(r, c)).with_gap_ps(900));
                }
                self.stencil_row = (self.stencil_row + (n as u64 / row_cells).max(1)) % rows.max(3);
            }
            Kernel::TreeSearch => {
                // Small hot set, high compute per access.
                let hot = (ws / 64).min(4096);
                for _ in 0..n {
                    let slot = rng.gen_range(0..hot);
                    out.push(GuestOp::read(slot * 64).with_gap_ps(4_000));
                }
            }
            Kernel::Mixed => {
                // Sequential bursts with irregular jumps.
                let mut at = rng.gen_range(0..ws / 64) * 64;
                let mut emitted = 0usize;
                while emitted < n {
                    let burst = rng.gen_range(4..32usize);
                    for _ in 0..burst.min(n - emitted) {
                        out.push(GuestOp::read(at).with_gap_ps(800));
                        at = (at + 64) % ws;
                        emitted += 1;
                    }
                    if rng.gen_bool(0.2) && emitted < n {
                        at = rng.gen_range(0..ws / 64) * 64;
                        out.push(GuestOp::write(at));
                        emitted += 1;
                    }
                }
            }
        }
    }
}

impl WorkloadGen for SpecSuite {
    fn name(&self) -> String {
        "SPEC-2017".into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::ExecTime
    }

    fn cost_hint(&self) -> u64 {
        2
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let mut out = Vec::with_capacity(count + 64);
        // Rotate kernels in equal shares.
        let share = (count / KERNELS.len()).max(1);
        while out.len() < count {
            let kernel = KERNELS[self.kernel_idx % KERNELS.len()];
            self.kernel_idx += 1;
            let remaining = count - out.len();
            self.gen_kernel(kernel, &mut out, share.min(remaining), rng);
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn suite_mixes_dependent_and_streaming_behaviour() {
        let mut wl = SpecSuite::new(32 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = wl.generate(40_000, &mut rng);
        assert_eq!(ops.len(), 40_000);
        let dependent = ops.iter().filter(|o| o.dependent).count();
        assert!(
            dependent > 1_000,
            "pointer-chase share present: {dependent}"
        );
        let writes = ops.iter().filter(|o| o.write).count();
        assert!(writes > 1_000, "stencil/mixed writes present: {writes}");
        assert!(ops.iter().all(|o| o.offset < 32 << 20));
    }

    #[test]
    fn kernels_rotate() {
        let mut wl = SpecSuite::new(8 << 20);
        let mut rng = StdRng::seed_from_u64(2);
        let _ = wl.generate(1_000, &mut rng);
        let idx = wl.kernel_idx;
        let _ = wl.generate(1_000, &mut rng);
        assert!(wl.kernel_idx > idx);
    }
}
