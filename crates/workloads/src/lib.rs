//! Workload generators for the Siloz performance evaluation (§7.2, §7.3).
//!
//! The paper measures execution time with redis+YCSB, Hadoop terasort, SPEC
//! CPU 2017 and PARSEC 3.0, and throughput with memcached, SysBench mySQL,
//! and Intel MLC. This crate rebuilds the *memory behaviour* of each from
//! scratch: real in-memory substrates (a hash-table KV store, a slab cache,
//! a B+-tree, a merge sorter) executed over an address-traced arena, plus
//! synthetic kernels whose access patterns match the SPEC/PARSEC/MLC
//! categories (pointer chasing, stencils, streaming, random walks).
//!
//! Every workload implements [`WorkloadGen`]: it yields [`GuestOp`]s —
//! guest-address memory operations with compute gaps and dependency flags —
//! which the `sim` crate translates to host physical traces under a given
//! hypervisor and replays through the memory controller.

#![forbid(unsafe_code)]

pub mod arena;
pub mod extra;
pub mod kv;
pub mod mlc;
pub mod oltp;
pub mod parsec;
pub mod spec;
pub mod terasort;
pub mod ycsb;
pub mod zipf;

pub use arena::TraceArena;
pub use extra::{Gups, PageRank};
pub use kv::KvStore;
pub use zipf::Zipfian;

use rand::rngs::StdRng;

/// One guest-address memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestOp {
    /// Byte offset within the workload's working set (guest address space).
    pub offset: u64,
    /// Write (true) or read (false).
    pub write: bool,
    /// Compute time before issuing this op, picoseconds.
    pub gap_ps: u64,
    /// Whether this op depends on the previous op's data (serializes).
    pub dependent: bool,
}

impl GuestOp {
    /// An independent read.
    #[must_use]
    pub const fn read(offset: u64) -> Self {
        Self {
            offset,
            write: false,
            gap_ps: 0,
            dependent: false,
        }
    }

    /// An independent write.
    #[must_use]
    pub const fn write(offset: u64) -> Self {
        Self {
            offset,
            write: true,
            gap_ps: 0,
            dependent: false,
        }
    }

    /// Marks the op dependent on the previous one.
    #[must_use]
    pub const fn chained(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Adds compute time before the op.
    #[must_use]
    pub const fn with_gap_ps(mut self, gap: u64) -> Self {
        self.gap_ps = gap;
        self
    }
}

/// Whether a workload is reported as execution time (Fig. 4/6) or
/// throughput (Fig. 5/7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Lower-is-better completion time.
    ExecTime,
    /// Higher-is-better operation/bandwidth rate.
    Throughput,
}

/// A cloneable snapshot of a workload's preloaded data-structure substrate.
///
/// Several workloads share byte-identical preload phases — every YCSB mix
/// loads the same KV store for a given `(working_set, seed)`, regardless of
/// the request mix that follows. The trace compiler pools these snapshots
/// (keyed by [`WorkloadGen::substrate_key`]) so a grid of cells pays for
/// each distinct preload once; adopting a snapshot plus cloning the
/// post-preload RNG reproduces the cold path bit for bit.
#[derive(Debug, Clone)]
pub enum SubstrateSnapshot {
    /// A preloaded [`KvStore`] (YCSB and memcached substrates).
    Kv(KvStore),
}

/// A workload generator.
pub trait WorkloadGen {
    /// Display name (matches the paper's figure labels).
    fn name(&self) -> String;
    /// Working-set size in bytes (guest addresses are `[0, working_set)`).
    fn working_set(&self) -> u64;
    /// How the workload is reported.
    fn metric(&self) -> Metric;
    /// Generates the next `count` operations.
    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp>;
    /// Cache key identifying this workload's preload phase, or `None` when
    /// the workload has no poolable substrate. Two workloads returning the
    /// same key must consume identical RNG draws during [`Self::preload`]
    /// and end with identical substrate state, so a snapshot from one can
    /// seed the other.
    fn substrate_key(&self) -> Option<String> {
        None
    }
    /// Runs the preload phase alone (idempotent; [`Self::generate`] still
    /// preloads lazily if this was never called).
    fn preload(&mut self, _rng: &mut StdRng) {}
    /// Snapshots the preloaded substrate, or `None` if not preloaded (or
    /// not poolable).
    fn export_substrate(&self) -> Option<SubstrateSnapshot> {
        None
    }
    /// Adopts a pooled substrate snapshot, marking the workload preloaded.
    fn adopt_substrate(&mut self, _snap: &SubstrateSnapshot) {}
    /// Coarse relative cost of one measurement cell running this workload
    /// (construction + generation + replay), in arbitrary units. The sim
    /// engine uses it to dispatch expensive cells first (LPT scheduling) so
    /// one long straggler cannot serialize the tail of a parallel figure
    /// run; only the ordering matters, and results are independent of it.
    /// Values were measured at the quick mini-config scale (~milliseconds
    /// per unit); substrate-heavy workloads (KV stores) dominate.
    fn cost_hint(&self) -> u64 {
        4
    }
}

/// Number of workloads in [`exec_time_suite`].
pub const EXEC_TIME_SUITE_LEN: usize = ycsb::YcsbKind::ALL.len() + 3;

/// Number of workloads in [`throughput_suite`].
pub const THROUGHPUT_SUITE_LEN: usize = mlc::MlcKind::ALL.len() + 2;

/// The `i`-th entry of [`exec_time_suite`], built alone.
///
/// Measurement cells that need exactly one workload use this instead of
/// constructing (and immediately discarding) the other eight substrates —
/// suite construction is working-set-sized work (KV preloads, sort inputs).
///
/// # Panics
///
/// Panics if `i >= EXEC_TIME_SUITE_LEN`.
#[must_use]
pub fn exec_time_workload(i: usize, working_set: u64) -> Box<dyn WorkloadGen> {
    let n_ycsb = ycsb::YcsbKind::ALL.len();
    assert!(i < EXEC_TIME_SUITE_LEN, "workload index {i} out of range");
    if i < n_ycsb {
        Box::new(ycsb::Ycsb::new(ycsb::YcsbKind::ALL[i], working_set))
    } else {
        match i - n_ycsb {
            0 => Box::new(terasort::Terasort::new(working_set)),
            1 => Box::new(spec::SpecSuite::new(working_set)),
            _ => Box::new(parsec::ParsecSuite::new(working_set)),
        }
    }
}

/// The `i`-th entry of [`throughput_suite`], built alone.
///
/// # Panics
///
/// Panics if `i >= THROUGHPUT_SUITE_LEN`.
#[must_use]
pub fn throughput_workload(i: usize, working_set: u64) -> Box<dyn WorkloadGen> {
    assert!(i < THROUGHPUT_SUITE_LEN, "workload index {i} out of range");
    match i {
        0 => Box::new(kv::Memcached::new(working_set)),
        1 => Box::new(oltp::SysbenchOltp::new(working_set)),
        _ => Box::new(mlc::Mlc::new(mlc::MlcKind::ALL[i - 2], working_set)),
    }
}

/// The full execution-time roster of Fig. 4: six YCSB workloads on the KV
/// store, terasort, a SPEC CPU 2017-like suite and a PARSEC 3.0-like suite.
#[must_use]
pub fn exec_time_suite(working_set: u64) -> Vec<Box<dyn WorkloadGen>> {
    (0..EXEC_TIME_SUITE_LEN)
        .map(|i| exec_time_workload(i, working_set))
        .collect()
}

/// The throughput roster of Fig. 5: memcached, SysBench-mySQL-like OLTP,
/// and the five Intel MLC configurations.
#[must_use]
pub fn throughput_suite(working_set: u64) -> Vec<Box<dyn WorkloadGen>> {
    (0..THROUGHPUT_SUITE_LEN)
        .map(|i| throughput_workload(i, working_set))
        .collect()
}

/// Deterministic per-tenant workload assignment for fleet scenarios: tenant
/// `tenant` runs the `tenant % 8`-th entry of a fixed mixed roster (four
/// YCSB mixes, memcached, OLTP, streaming MLC, GUPS), sized to
/// `working_set`. The mapping depends only on the tenant id, so a fleet
/// trace replays bit-identically regardless of scheduling.
#[must_use]
pub fn fleet_tenant_workload(tenant: u32, working_set: u64) -> Box<dyn WorkloadGen> {
    match tenant % 8 {
        0 => Box::new(ycsb::Ycsb::new(ycsb::YcsbKind::A, working_set)),
        1 => Box::new(ycsb::Ycsb::new(ycsb::YcsbKind::B, working_set)),
        2 => Box::new(ycsb::Ycsb::new(ycsb::YcsbKind::C, working_set)),
        3 => Box::new(kv::Memcached::new(working_set)),
        4 => Box::new(oltp::SysbenchOltp::new(working_set)),
        5 => Box::new(mlc::Mlc::new(mlc::MlcKind::Reads, working_set)),
        6 => Box::new(ycsb::Ycsb::new(ycsb::YcsbKind::F, working_set)),
        _ => Box::new(extra::Gups::new(working_set)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fleet_roster_is_deterministic_and_total() {
        for tenant in 0..16 {
            let a = fleet_tenant_workload(tenant, 8 << 20).name();
            let b = fleet_tenant_workload(tenant, 8 << 20).name();
            assert_eq!(a, b);
            assert_eq!(a, fleet_tenant_workload(tenant + 8, 8 << 20).name());
        }
        let distinct: std::collections::BTreeSet<String> = (0..8)
            .map(|t| fleet_tenant_workload(t, 8 << 20).name())
            .collect();
        assert_eq!(distinct.len(), 8, "roster entries are distinct");
    }

    #[test]
    fn suites_cover_the_paper_rosters() {
        let et = exec_time_suite(64 << 20);
        let names: Vec<String> = et.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"redis-A".to_string()));
        assert!(names.contains(&"redis-F".to_string()));
        assert!(names.contains(&"terasort".to_string()));
        assert!(names.contains(&"SPEC-2017".to_string()));
        assert!(names.contains(&"PARSEC-3.0".to_string()));
        assert_eq!(et.len(), 9);

        let tp = throughput_suite(64 << 20);
        let names: Vec<String> = tp.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"memcached".to_string()));
        assert!(names.contains(&"mysql".to_string()));
        assert!(names.contains(&"mlc-stream".to_string()));
        assert_eq!(tp.len(), 7);
    }

    #[test]
    fn all_workloads_generate_in_bounds_ops() {
        let ws = 16 << 20;
        let mut rng = StdRng::seed_from_u64(1);
        for mut wl in exec_time_suite(ws).into_iter().chain(throughput_suite(ws)) {
            let ops = wl.generate(2000, &mut rng);
            assert!(!ops.is_empty(), "{} generated nothing", wl.name());
            for op in &ops {
                assert!(
                    op.offset < wl.working_set(),
                    "{} op at {:#x} beyond working set {:#x}",
                    wl.name(),
                    op.offset,
                    wl.working_set()
                );
            }
        }
    }

    #[test]
    fn substrate_pool_roundtrip_is_bit_identical() {
        // Cold path: construct and generate directly.
        let mut cold = ycsb::Ycsb::new(ycsb::YcsbKind::B, 4 << 20);
        let ops_cold = cold.generate(2_000, &mut StdRng::seed_from_u64(42));
        // Pool path: preload a *different* mix sharing the same substrate
        // key, snapshot it, adopt into a fresh instance, resume the RNG.
        let mut loader = ycsb::Ycsb::new(ycsb::YcsbKind::E, 4 << 20);
        assert_eq!(loader.substrate_key(), cold.substrate_key());
        let mut rng = StdRng::seed_from_u64(42);
        loader.preload(&mut rng);
        let snap = loader.export_substrate().expect("preloaded");
        let mut warm = ycsb::Ycsb::new(ycsb::YcsbKind::B, 4 << 20);
        assert!(warm.export_substrate().is_none(), "not yet preloaded");
        warm.adopt_substrate(&snap);
        let ops_warm = warm.generate(2_000, &mut rng);
        assert_eq!(ops_cold, ops_warm);

        // Memcached pools under its own key (different preload draws).
        let mut mc = kv::Memcached::new(4 << 20);
        assert_ne!(mc.substrate_key(), cold.substrate_key());
        let mc_cold = mc.generate(2_000, &mut StdRng::seed_from_u64(7));
        let mut rng = StdRng::seed_from_u64(7);
        let mut mc_loader = kv::Memcached::new(4 << 20);
        mc_loader.preload(&mut rng);
        let snap = mc_loader.export_substrate().expect("preloaded");
        let mut mc_warm = kv::Memcached::new(4 << 20);
        mc_warm.adopt_substrate(&snap);
        assert_eq!(mc_cold, mc_warm.generate(2_000, &mut rng));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = ycsb::Ycsb::new(ycsb::YcsbKind::A, 8 << 20);
        let mut b = ycsb::Ycsb::new(ycsb::YcsbKind::A, 8 << 20);
        let ops_a = a.generate(500, &mut StdRng::seed_from_u64(9));
        let ops_b = b.generate(500, &mut StdRng::seed_from_u64(9));
        assert_eq!(ops_a, ops_b);
    }
}
