//! YCSB core workloads A-F over the redis-like KV store (§7.2).

use crate::kv::KvStore;
use crate::zipf::{Latest, Zipfian};
use crate::{GuestOp, Metric, SubstrateSnapshot, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

/// The six YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbKind {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read-latest / 5% insert.
    D,
    /// 95% short scans / 5% insert, zipfian start keys.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbKind {
    /// All six, in order.
    pub const ALL: [YcsbKind; 6] = [
        YcsbKind::A,
        YcsbKind::B,
        YcsbKind::C,
        YcsbKind::D,
        YcsbKind::E,
        YcsbKind::F,
    ];

    /// Paper-style label (`redis-A` ... `redis-F`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            YcsbKind::A => "redis-A",
            YcsbKind::B => "redis-B",
            YcsbKind::C => "redis-C",
            YcsbKind::D => "redis-D",
            YcsbKind::E => "redis-E",
            YcsbKind::F => "redis-F",
        }
    }
}

/// A YCSB client bound to a KV store.
#[derive(Debug)]
pub struct Ycsb {
    kind: YcsbKind,
    store: KvStore,
    zipf: Zipfian,
    latest: Latest,
    keys: u64,
    next_insert: u64,
    loaded: bool,
}

impl Ycsb {
    /// A YCSB workload over a store sized to `working_set`.
    #[must_use]
    pub fn new(kind: YcsbKind, working_set: u64) -> Self {
        let keys = (working_set / 2048).max(64); // ~1 KiB records + table
        Self {
            kind,
            store: KvStore::new(working_set, keys * 2),
            zipf: Zipfian::ycsb(keys),
            latest: Latest::new(keys.min(1000)),
            keys,
            next_insert: keys,
            loaded: false,
        }
    }

    fn ensure_loaded(&mut self, rng: &mut StdRng) {
        if self.loaded {
            return;
        }
        // The load phase is warmup, not measured traffic: emit no ops. The
        // load is identical for every [`YcsbKind`] over the same store size
        // and seed, which is what makes the substrate poolable.
        self.store.mute_trace(true);
        for k in 0..self.keys {
            self.store.set(k, rng.gen_range(800..=1200));
        }
        self.store.mute_trace(false);
        self.loaded = true;
    }

    fn one_op(&mut self, rng: &mut StdRng) {
        let key = self.zipf.sample(rng);
        match self.kind {
            YcsbKind::A => {
                if rng.gen_bool(0.5) {
                    self.store.get(key);
                } else {
                    self.store.set(key, rng.gen_range(800..=1200));
                }
            }
            YcsbKind::B => {
                if rng.gen_bool(0.95) {
                    self.store.get(key);
                } else {
                    self.store.set(key, rng.gen_range(800..=1200));
                }
            }
            YcsbKind::C => {
                self.store.get(key);
            }
            YcsbKind::D => {
                if rng.gen_bool(0.95) {
                    let k = self.latest.sample(self.next_insert - 1, rng);
                    self.store.get(k);
                } else {
                    let k = self.next_insert;
                    self.next_insert += 1;
                    self.store.set(k, rng.gen_range(800..=1200));
                }
            }
            YcsbKind::E => {
                if rng.gen_bool(0.95) {
                    self.store.scan(key, rng.gen_range(1..=100));
                } else {
                    let k = self.next_insert;
                    self.next_insert += 1;
                    self.store.set(k, rng.gen_range(800..=1200));
                }
            }
            YcsbKind::F => {
                if rng.gen_bool(0.5) {
                    self.store.get(key);
                } else {
                    // Read-modify-write.
                    self.store.get(key);
                    self.store.set(key, rng.gen_range(800..=1200));
                }
            }
        }
    }
}

impl WorkloadGen for Ycsb {
    fn name(&self) -> String {
        self.kind.label().into()
    }

    fn working_set(&self) -> u64 {
        self.store.working_set()
    }

    fn metric(&self) -> Metric {
        Metric::ExecTime
    }

    fn cost_hint(&self) -> u64 {
        // KV-substrate cells dominate a figure run; write-heavy mixes (A, F
        // rewrites, B updates) churn the store hardest.
        match self.kind {
            YcsbKind::A => 15,
            YcsbKind::B => 13,
            YcsbKind::C | YcsbKind::D => 9,
            YcsbKind::E | YcsbKind::F => 8,
        }
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        self.ensure_loaded(rng);
        // Accumulate in the arena and take once at the end — same ops in
        // the same order as taking after every request, minus the copies.
        while self.store.trace_len() < count {
            self.one_op(rng);
        }
        let mut out = self.store.take_trace();
        out.truncate(count);
        out
    }

    fn substrate_key(&self) -> Option<String> {
        // All six mixes share one preload over the same store size.
        Some(format!("ycsb-kv/{}", self.store.working_set()))
    }

    fn preload(&mut self, rng: &mut StdRng) {
        self.ensure_loaded(rng);
    }

    fn export_substrate(&self) -> Option<SubstrateSnapshot> {
        self.loaded
            .then(|| SubstrateSnapshot::Kv(self.store.clone()))
    }

    fn adopt_substrate(&mut self, snap: &SubstrateSnapshot) {
        let SubstrateSnapshot::Kv(store) = snap;
        self.store = store.clone();
        self.loaded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mix(kind: YcsbKind) -> (usize, usize) {
        let mut wl = Ycsb::new(kind, 8 << 20);
        let mut rng = StdRng::seed_from_u64(11);
        let ops = wl.generate(20_000, &mut rng);
        let writes = ops.iter().filter(|o| o.write).count();
        (writes, ops.len())
    }

    #[test]
    fn workload_c_is_read_only() {
        let (writes, _) = mix(YcsbKind::C);
        assert_eq!(writes, 0);
    }

    #[test]
    fn workload_a_writes_more_than_b() {
        let (wa, _) = mix(YcsbKind::A);
        let (wb, _) = mix(YcsbKind::B);
        assert!(
            wa > wb * 3,
            "A ({wa}) must be far more write-heavy than B ({wb})"
        );
    }

    #[test]
    fn workload_d_inserts_advance_keyspace() {
        let mut wl = Ycsb::new(YcsbKind::D, 8 << 20);
        let before = wl.next_insert;
        let mut rng = StdRng::seed_from_u64(3);
        let _ = wl.generate(20_000, &mut rng);
        assert!(wl.next_insert > before, "inserts happened");
    }

    #[test]
    fn workload_e_scans_are_sequential_ish() {
        let mut wl = Ycsb::new(YcsbKind::E, 8 << 20);
        let mut rng = StdRng::seed_from_u64(4);
        let ops = wl.generate(20_000, &mut rng);
        // Scans produce long runs of reads; verify read dominance.
        let reads = ops.iter().filter(|o| !o.write).count();
        assert!(reads as f64 / ops.len() as f64 > 0.9);
    }

    #[test]
    fn all_kinds_have_labels_and_generate() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in YcsbKind::ALL {
            let mut wl = Ycsb::new(kind, 4 << 20);
            assert!(wl.name().starts_with("redis-"));
            let ops = wl.generate(1_000, &mut rng);
            assert_eq!(ops.len(), 1_000);
        }
    }
}
