//! An in-memory key-value store substrate (redis/memcached-like).
//!
//! A real open-addressed hash table over a [`TraceArena`]: keys hash to
//! bucket slots; values live in arena extents. Every probe, value read, and
//! value write is emitted to the trace — so YCSB mixes (§7.2) and
//! memcached-style throughput loads (§7.3) exercise the memory system the
//! way a KV service does: a dependent pointer chase into the bucket array
//! followed by value-sized sequential access.

use crate::arena::TraceArena;
use crate::{GuestOp, Metric, SubstrateSnapshot, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

const BUCKET_BYTES: u64 = 64;

/// One bucket: key id + value location (modeled, sized one cache line).
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    key: u64,
    value_off: u64,
    value_len: u32,
    used: bool,
}

/// The KV store substrate.
#[derive(Debug, Clone)]
pub struct KvStore {
    arena: TraceArena,
    buckets: Vec<Bucket>,
    buckets_off: u64,
    items: u64,
    /// CPU cost modeled per operation (hashing, dispatch), ps.
    op_compute_ps: u64,
}

impl KvStore {
    /// A store whose table and values fit in `arena_bytes`, sized for
    /// `expected_items` entries.
    #[must_use]
    pub fn new(arena_bytes: u64, expected_items: u64) -> Self {
        let mut arena = TraceArena::new(arena_bytes);
        let slots = (expected_items * 2).next_power_of_two();
        let buckets_off = arena.alloc(slots * BUCKET_BYTES, 4096);
        Self {
            arena,
            buckets: vec![Bucket::default(); slots as usize],
            buckets_off,
            items: 0,
            op_compute_ps: 120_000, // ~120 ns of CPU per request
        }
    }

    fn slot_of(&self, key: u64) -> usize {
        let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 31;
        (h as usize) & (self.buckets.len() - 1)
    }

    /// Number of live items.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Inserts/overwrites a key with a `value_len`-byte value.
    pub fn set(&mut self, key: u64, value_len: u32) {
        self.arena.compute(self.op_compute_ps);
        let mut slot = self.slot_of(key);
        // Linear probing; every probe is a dependent bucket read.
        for _ in 0..self.buckets.len() {
            let off = self.buckets_off + slot as u64 * BUCKET_BYTES;
            self.arena.read_dependent(off, BUCKET_BYTES);
            let b = self.buckets[slot];
            if !b.used || b.key == key {
                let value_off = if b.used && b.value_len >= value_len {
                    b.value_off // Reuse in place.
                } else {
                    self.arena.alloc(value_len as u64, 64)
                };
                self.buckets[slot] = Bucket {
                    key,
                    value_off,
                    value_len,
                    used: true,
                };
                if !b.used {
                    self.items += 1;
                }
                self.arena.write(off, BUCKET_BYTES);
                self.arena.write(value_off, value_len as u64);
                return;
            }
            slot = (slot + 1) & (self.buckets.len() - 1);
        }
    }

    /// Reads a key's value; returns whether it existed.
    pub fn get(&mut self, key: u64) -> bool {
        self.arena.compute(self.op_compute_ps);
        let mut slot = self.slot_of(key);
        for _ in 0..self.buckets.len() {
            let off = self.buckets_off + slot as u64 * BUCKET_BYTES;
            self.arena.read_dependent(off, BUCKET_BYTES);
            let b = self.buckets[slot];
            if !b.used {
                return false;
            }
            if b.key == key {
                self.arena.read(b.value_off, b.value_len as u64);
                return true;
            }
            slot = (slot + 1) & (self.buckets.len() - 1);
        }
        false
    }

    /// Scans `count` consecutive keys starting at `key` (YCSB-E).
    pub fn scan(&mut self, key: u64, count: u32) {
        for k in key..key + count as u64 {
            if !self.get(k) {
                break;
            }
        }
    }

    /// Takes the trace accumulated by operations so far.
    pub fn take_trace(&mut self) -> Vec<GuestOp> {
        self.arena.take_trace()
    }

    /// Number of buffered trace operations.
    #[must_use]
    pub fn trace_len(&self) -> usize {
        self.arena.trace_len()
    }

    /// Mutes (or unmutes) trace emission — see [`TraceArena::mute`].
    pub fn mute_trace(&mut self, on: bool) {
        self.arena.mute(on);
    }

    /// Arena capacity (the workload's working set).
    #[must_use]
    pub fn working_set(&self) -> u64 {
        self.arena.capacity()
    }
}

/// memcached-style throughput workload: 90% GET / 10% SET over a scrambled
/// Zipfian keyspace with small values.
#[derive(Debug)]
pub struct Memcached {
    store: KvStore,
    zipf: crate::zipf::Zipfian,
    keys: u64,
    loaded: bool,
}

impl Memcached {
    /// A memcached instance filling most of `working_set`.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        // ~256 B objects; keep table + values within the working set.
        let keys = (working_set / 512).max(64);
        Self {
            store: KvStore::new(working_set, keys),
            zipf: crate::zipf::Zipfian::ycsb(keys),
            keys,
            loaded: false,
        }
    }

    fn ensure_loaded(&mut self, rng: &mut StdRng) {
        if self.loaded {
            return;
        }
        // The load phase is warmup, not measured traffic: emit no ops.
        self.store.mute_trace(true);
        for k in 0..self.keys {
            self.store.set(k, rng.gen_range(64..=400));
        }
        self.store.mute_trace(false);
        self.loaded = true;
    }
}

impl WorkloadGen for Memcached {
    fn name(&self) -> String {
        "memcached".into()
    }

    fn working_set(&self) -> u64 {
        self.store.working_set()
    }

    fn metric(&self) -> Metric {
        Metric::Throughput
    }

    fn cost_hint(&self) -> u64 {
        // The heaviest cell of either roster: full KV preload plus a
        // get-dominated trace over the whole store.
        21
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        self.ensure_loaded(rng);
        while self.store.arena.trace_len() < count {
            let key = self.zipf.sample(rng);
            if rng.gen_bool(0.9) {
                self.store.get(key);
            } else {
                self.store.set(key, rng.gen_range(64..=400));
            }
        }
        let mut t = self.store.take_trace();
        t.truncate(count);
        t
    }

    fn substrate_key(&self) -> Option<String> {
        Some(format!("memcached/{}", self.store.working_set()))
    }

    fn preload(&mut self, rng: &mut StdRng) {
        self.ensure_loaded(rng);
    }

    fn export_substrate(&self) -> Option<SubstrateSnapshot> {
        self.loaded
            .then(|| SubstrateSnapshot::Kv(self.store.clone()))
    }

    fn adopt_substrate(&mut self, snap: &SubstrateSnapshot) {
        let SubstrateSnapshot::Kv(store) = snap;
        self.store = store.clone();
        self.loaded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn set_get_roundtrip_with_probing() {
        let mut kv = KvStore::new(1 << 20, 100);
        for k in 0..100 {
            kv.set(k, 128);
        }
        assert_eq!(kv.items(), 100);
        for k in 0..100 {
            assert!(kv.get(k), "key {k} lost");
        }
        assert!(!kv.get(1000));
        let trace = kv.take_trace();
        assert!(!trace.is_empty());
        // Bucket probes are dependent reads.
        assert!(trace.iter().any(|op| op.dependent));
        // Value writes exist.
        assert!(trace.iter().any(|op| op.write));
    }

    #[test]
    fn overwrite_reuses_value_space() {
        let mut kv = KvStore::new(1 << 20, 10);
        kv.set(1, 256);
        let used = kv.arena.used();
        kv.set(1, 128); // Smaller: reuse in place.
        assert_eq!(kv.arena.used(), used);
        assert_eq!(kv.items(), 1);
    }

    #[test]
    fn scan_touches_consecutive_keys() {
        let mut kv = KvStore::new(1 << 20, 64);
        for k in 0..64 {
            kv.set(k, 64);
        }
        let _ = kv.take_trace();
        kv.scan(10, 5);
        let t = kv.take_trace();
        assert!(t.len() >= 10, "5 gets with probes and value reads");
    }

    #[test]
    fn memcached_generates_bounded_ops() {
        let mut m = Memcached::new(4 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = m.generate(5_000, &mut rng);
        assert_eq!(ops.len(), 5_000);
        assert!(ops.iter().all(|o| o.offset < m.working_set()));
        let writes = ops.iter().filter(|o| o.write).count();
        assert!(writes > 0 && writes < ops.len() / 3, "GET-heavy mix");
    }
}
