//! PARSEC 3.0-like parallel-workload kernels (§7.2).
//!
//! PARSEC's suite spans financial math (blackscholes: streaming
//! read-compute), simulated annealing (canneal: random pointer chasing over
//! a huge netlist), streaming clustering (streamcluster: scan + hot
//! centroids), and particle simulation (fluidanimate: neighborhood grids).
//! Reported as one geometric-mean entry, matching the paper's "PARSEC-3.0"
//! bar.

use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    BlackScholes,
    Canneal,
    StreamCluster,
    FluidAnimate,
}

const KERNELS: [Kernel; 4] = [
    Kernel::BlackScholes,
    Kernel::Canneal,
    Kernel::StreamCluster,
    Kernel::FluidAnimate,
];

/// The PARSEC-like suite.
#[derive(Debug)]
pub struct ParsecSuite {
    working_set: u64,
    kernel_idx: usize,
    stream_pos: u64,
}

impl ParsecSuite {
    /// A suite over `working_set` bytes.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        Self {
            working_set,
            kernel_idx: 0,
            stream_pos: 0,
        }
    }

    fn gen_kernel(&mut self, kernel: Kernel, out: &mut Vec<GuestOp>, n: usize, rng: &mut StdRng) {
        let ws = self.working_set;
        match kernel {
            Kernel::BlackScholes => {
                // Stream option records (64 B), compute-heavy per record.
                for _ in 0..n {
                    out.push(GuestOp::read(self.stream_pos).with_gap_ps(6_000));
                    self.stream_pos = (self.stream_pos + 64) % ws;
                }
            }
            Kernel::Canneal => {
                // Random dependent hops over the netlist + occasional swap
                // writes.
                for i in 0..n {
                    let at = rng.gen_range(0..ws / 64) * 64;
                    if i % 8 == 7 {
                        out.push(GuestOp::write(at));
                    } else {
                        out.push(GuestOp::read(at).chained().with_gap_ps(1_200));
                    }
                }
            }
            Kernel::StreamCluster => {
                // Scan points sequentially; compare against hot centroids.
                let centroids = 64u64;
                for i in 0..n {
                    if i % 4 == 3 {
                        let c = rng.gen_range(0..centroids);
                        out.push(GuestOp::read(c * 64).with_gap_ps(2_000));
                    } else {
                        out.push(GuestOp::read(self.stream_pos));
                        self.stream_pos = (self.stream_pos + 64) % ws;
                    }
                }
            }
            Kernel::FluidAnimate => {
                // 3D grid neighborhoods: base cell + 3 neighbors, write
                // back.
                let cells = ws / 64;
                let dim = (cells as f64).cbrt() as u64;
                let plane = dim * dim;
                for _ in 0..n / 5 {
                    let cell = rng.gen_range(0..cells);
                    let at = |c: u64| (c % cells) * 64;
                    out.push(GuestOp::read(at(cell)));
                    out.push(GuestOp::read(at(cell + 1)));
                    out.push(GuestOp::read(at(cell + dim)));
                    out.push(GuestOp::read(at(cell + plane)));
                    out.push(GuestOp::write(at(cell)).with_gap_ps(1_500));
                }
            }
        }
    }
}

impl WorkloadGen for ParsecSuite {
    fn name(&self) -> String {
        "PARSEC-3.0".into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::ExecTime
    }

    fn cost_hint(&self) -> u64 {
        3
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let mut out = Vec::with_capacity(count + 64);
        let share = (count / KERNELS.len()).max(5);
        while out.len() < count {
            let kernel = KERNELS[self.kernel_idx % KERNELS.len()];
            self.kernel_idx += 1;
            let remaining = count - out.len();
            self.gen_kernel(kernel, &mut out, share.min(remaining).max(5), rng);
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn suite_generates_mixed_behaviour() {
        let mut wl = ParsecSuite::new(16 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = wl.generate(40_000, &mut rng);
        assert_eq!(ops.len(), 40_000);
        assert!(ops.iter().any(|o| o.dependent), "canneal chases pointers");
        assert!(ops.iter().any(|o| o.write), "fluidanimate/canneal write");
        assert!(ops.iter().all(|o| o.offset < 16 << 20));
    }

    #[test]
    fn blackscholes_share_is_sequential() {
        let mut wl = ParsecSuite::new(1 << 20);
        let mut rng = StdRng::seed_from_u64(2);
        let ops = wl.generate(100, &mut rng);
        // First share comes from blackscholes: strictly ascending stream.
        let first: Vec<u64> = ops.iter().take(20).map(|o| o.offset).collect();
        for w in first.windows(2) {
            assert_eq!(w[1], (w[0] + 64) % (1 << 20));
        }
    }
}
