//! Hadoop-terasort-like external merge sort (§7.2).
//!
//! Terasort sorts 100-byte records by a 10-byte key. The substrate here is
//! a real multi-run merge sort executed over a [`TraceArena`]: the
//! generation phase writes records sequentially, the sort phase reads runs,
//! sorts them (compute), writes sorted runs, and the merge phase streams
//! all runs into the output region — producing terasort's signature mix of
//! streaming reads/writes over a large working set.

use crate::arena::TraceArena;
use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

const RECORD_BYTES: u64 = 100;

/// Phases of the sort pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Generate,
    SortRuns(u64),
    Merge(u64),
}

/// The terasort workload.
#[derive(Debug)]
pub struct Terasort {
    arena: TraceArena,
    records: u64,
    run_records: u64,
    input_off: u64,
    output_off: u64,
    phase: Phase,
}

impl Terasort {
    /// A sorter whose input + output fit in `working_set`.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        let mut arena = TraceArena::new(working_set);
        // Input and output halves.
        let records = (working_set / 2 / RECORD_BYTES).max(1024);
        let input_off = arena.alloc(records * RECORD_BYTES, 4096);
        let output_off = arena.alloc(records * RECORD_BYTES, 4096);
        let run_records = (records / 64).max(256);
        Self {
            arena,
            records,
            run_records,
            input_off,
            output_off,
            phase: Phase::Generate,
        }
    }

    fn step(&mut self, rng: &mut StdRng) {
        match self.phase {
            Phase::Generate => {
                // Write a chunk of random records sequentially.
                let chunk = self.run_records.min(self.records);
                for r in 0..chunk {
                    let off = self.input_off + r * RECORD_BYTES;
                    self.arena.compute(2_000); // key generation
                    self.arena.write(off, RECORD_BYTES);
                    let _ = rng.gen::<u64>();
                }
                self.phase = Phase::SortRuns(0);
            }
            Phase::SortRuns(run) => {
                let base = self.input_off + run * self.run_records * RECORD_BYTES;
                if run * self.run_records >= self.records {
                    self.phase = Phase::Merge(0);
                    return;
                }
                let n = self.run_records.min(self.records - run * self.run_records);
                // Read the run, sort (n log n compute), write back.
                self.arena.read(base, n * RECORD_BYTES);
                let cmp_cost = (n as f64 * (n as f64).log2()) as u64 * 800;
                self.arena.compute(cmp_cost);
                self.arena.write(base, n * RECORD_BYTES);
                self.phase = Phase::SortRuns(run + 1);
            }
            Phase::Merge(pos) => {
                if pos >= self.records {
                    self.phase = Phase::Generate; // Next job iteration.
                    return;
                }
                let n = self.run_records.min(self.records - pos);
                // k-way merge: read record from the head of a (pseudo)
                // random run, write sequentially to output.
                let runs = (self.records / self.run_records).max(1);
                for i in 0..n {
                    let run = rng.gen_range(0..runs);
                    let head = self.input_off
                        + (run * self.run_records + (pos + i) % self.run_records) * RECORD_BYTES;
                    self.arena.read(head, RECORD_BYTES);
                    self.arena.compute(1_500); // heap sift
                    self.arena
                        .write(self.output_off + (pos + i) * RECORD_BYTES, RECORD_BYTES);
                }
                self.phase = Phase::Merge(pos + n);
            }
        }
    }
}

impl WorkloadGen for Terasort {
    fn name(&self) -> String {
        "terasort".into()
    }

    fn working_set(&self) -> u64 {
        self.arena.capacity()
    }

    fn metric(&self) -> Metric {
        Metric::ExecTime
    }

    fn cost_hint(&self) -> u64 {
        2
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let mut out: Vec<GuestOp> = Vec::with_capacity(count + 1024);
        while out.len() < count {
            self.step(rng);
            out.extend(self.arena.take_trace());
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_all_phases() {
        let mut t = Terasort::new(8 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        // Enough ops to cycle generate -> sort -> merge.
        let ops = t.generate(400_000, &mut rng);
        assert_eq!(ops.len(), 400_000);
        let writes = ops.iter().filter(|o| o.write).count();
        let reads = ops.len() - writes;
        assert!(writes > 0 && reads > 0);
        // Streaming job: mostly sequential, no dependent chains.
        assert!(ops.iter().all(|o| !o.dependent));
    }

    #[test]
    fn output_region_receives_writes_during_merge() {
        let mut t = Terasort::new(4 << 20);
        let out_off = t.output_off;
        let mut rng = StdRng::seed_from_u64(2);
        let ops = t.generate(600_000, &mut rng);
        assert!(
            ops.iter().any(|o| o.write && o.offset >= out_off),
            "merge must write the output half"
        );
    }
}
