//! Additional memory-intensive kernels beyond the paper's roster: GUPS
//! (random updates, the classic bank-conflict stressor) and a PageRank-like
//! push-style graph traversal. Useful for widening the performance sweeps
//! and the colocation experiments.

use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;
use rand::Rng;

/// GUPS (giga-updates-per-second): read-modify-write to random 64-bit words
/// over the whole working set — minimal locality, maximal bank pressure.
#[derive(Debug)]
pub struct Gups {
    working_set: u64,
}

impl Gups {
    /// A GUPS kernel over `working_set` bytes.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        Self { working_set }
    }
}

impl WorkloadGen for Gups {
    fn name(&self) -> String {
        "gups".into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::Throughput
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let lines = self.working_set / 64;
        let mut out = Vec::with_capacity(count);
        while out.len() + 2 <= count {
            let at = rng.gen_range(0..lines) * 64;
            // Read-modify-write: the write depends on the read.
            out.push(GuestOp::read(at).with_gap_ps(500));
            out.push(GuestOp::write(at).chained());
        }
        while out.len() < count {
            out.push(GuestOp::read(rng.gen_range(0..lines) * 64));
        }
        out
    }
}

/// A push-style PageRank-like traversal over a synthetic power-law graph:
/// sequential scan of the vertex array, random pushes to out-neighbors.
#[derive(Debug)]
pub struct PageRank {
    working_set: u64,
    vertex: u64,
    zipf: crate::zipf::Zipfian,
}

impl PageRank {
    /// A graph whose vertex + edge arrays fill `working_set`.
    #[must_use]
    pub fn new(working_set: u64) -> Self {
        let vertices = (working_set / 2 / 64).max(16);
        Self {
            working_set,
            vertex: 0,
            zipf: crate::zipf::Zipfian::new(vertices, 0.7, true),
        }
    }

    /// Number of vertices (64 B of state each, in the lower half).
    #[must_use]
    pub fn vertices(&self) -> u64 {
        self.working_set / 2 / 64
    }
}

impl WorkloadGen for PageRank {
    fn name(&self) -> String {
        "pagerank".into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::ExecTime
    }

    fn generate(&mut self, count: usize, rng: &mut StdRng) -> Vec<GuestOp> {
        let vertices = self.vertices();
        let half = vertices * 64;
        let mut out = Vec::with_capacity(count + 8);
        while out.len() < count {
            // Sequential source-vertex scan (rank + out-degree).
            out.push(GuestOp::read(self.vertex * 64).with_gap_ps(1_200));
            // Push contributions to a power-law-distributed set of
            // neighbors (writes into the upper half's rank-accumulators).
            let degree = 1 + rng.gen_range(0..6);
            for _ in 0..degree {
                let dst = self.zipf.sample(rng);
                out.push(GuestOp::write(half + dst * 64));
            }
            self.vertex = (self.vertex + 1) % vertices;
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gups_is_rmw_heavy_and_random() {
        let mut wl = Gups::new(8 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = wl.generate(10_000, &mut rng);
        assert_eq!(ops.len(), 10_000);
        let writes = ops.iter().filter(|o| o.write).count();
        assert!((writes as f64 / ops.len() as f64 - 0.5).abs() < 0.01);
        // Writes depend on their reads.
        assert!(ops.iter().filter(|o| o.write).all(|o| o.dependent));
        assert!(ops.iter().all(|o| o.offset < 8 << 20));
    }

    #[test]
    fn pagerank_scans_sources_and_pushes_to_hubs() {
        let mut wl = PageRank::new(8 << 20);
        let mut rng = StdRng::seed_from_u64(2);
        let ops = wl.generate(20_000, &mut rng);
        let half = wl.vertices() * 64;
        // Reads in lower half (vertex scan), writes in upper half (pushes).
        for op in &ops {
            if op.write {
                assert!(op.offset >= half);
            } else {
                assert!(op.offset < half);
            }
        }
        // Power-law pushes: the hottest accumulator sees far more traffic
        // than the median.
        use std::collections::HashMap;
        let mut hist: HashMap<u64, u32> = HashMap::new();
        for op in ops.iter().filter(|o| o.write) {
            *hist.entry(op.offset).or_default() += 1;
        }
        let max = hist.values().max().copied().unwrap_or(0);
        assert!(max >= 8, "hub vertex must be hot: max {max}");
    }

    #[test]
    fn extras_are_deterministic() {
        let gen = |seed| {
            let mut wl = Gups::new(1 << 20);
            wl.generate(100, &mut StdRng::seed_from_u64(seed))
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
