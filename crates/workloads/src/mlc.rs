//! Intel Memory Latency Checker (MLC)-like bandwidth kernels (§7.3).
//!
//! MLC measures peak throughput under controlled read:write ratios plus a
//! STREAM-triad-like kernel. These are pure streaming loops — the workloads
//! that maximally exercise bank-level parallelism, and therefore the most
//! sensitive to any allocation policy that would sacrifice it.

use crate::{GuestOp, Metric, WorkloadGen};
use rand::rngs::StdRng;

/// The five MLC configurations used in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlcKind {
    /// All reads.
    Reads,
    /// 3 reads : 1 write.
    R3W1,
    /// 2 reads : 1 write.
    R2W1,
    /// 1 read : 1 write.
    R1W1,
    /// STREAM-triad-like: `a[i] = b[i] + s * c[i]`.
    Stream,
}

impl MlcKind {
    /// All five, in figure order.
    pub const ALL: [MlcKind; 5] = [
        MlcKind::Reads,
        MlcKind::R3W1,
        MlcKind::R2W1,
        MlcKind::R1W1,
        MlcKind::Stream,
    ];

    /// Figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MlcKind::Reads => "mlc-reads",
            MlcKind::R3W1 => "mlc-3:1",
            MlcKind::R2W1 => "mlc-2:1",
            MlcKind::R1W1 => "mlc-1:1",
            MlcKind::Stream => "mlc-stream",
        }
    }
}

/// An MLC bandwidth kernel.
#[derive(Debug)]
pub struct Mlc {
    kind: MlcKind,
    working_set: u64,
    cursor: u64,
}

impl Mlc {
    /// A kernel streaming over `working_set` bytes.
    #[must_use]
    pub fn new(kind: MlcKind, working_set: u64) -> Self {
        Self {
            kind,
            working_set,
            cursor: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        let at = self.cursor;
        self.cursor = (self.cursor + 64) % self.working_set;
        at
    }
}

impl WorkloadGen for Mlc {
    fn name(&self) -> String {
        self.kind.label().into()
    }

    fn working_set(&self) -> u64 {
        self.working_set
    }

    fn metric(&self) -> Metric {
        Metric::Throughput
    }

    fn cost_hint(&self) -> u64 {
        // Pure arithmetic address streams: the cheapest cells.
        2
    }

    fn generate(&mut self, count: usize, _rng: &mut StdRng) -> Vec<GuestOp> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            match self.kind {
                MlcKind::Reads => out.push(GuestOp::read(self.bump())),
                MlcKind::R3W1 => {
                    for _ in 0..3 {
                        out.push(GuestOp::read(self.bump()));
                    }
                    out.push(GuestOp::write(self.bump()));
                }
                MlcKind::R2W1 => {
                    for _ in 0..2 {
                        out.push(GuestOp::read(self.bump()));
                    }
                    out.push(GuestOp::write(self.bump()));
                }
                MlcKind::R1W1 => {
                    out.push(GuestOp::read(self.bump()));
                    out.push(GuestOp::write(self.bump()));
                }
                MlcKind::Stream => {
                    // a[i] = b[i] + s * c[i]: thirds of the working set.
                    let third = self.working_set / 3 / 64 * 64;
                    let i = self.cursor % third;
                    self.cursor = (self.cursor + 64) % third;
                    out.push(GuestOp::read(third + i)); // b[i]
                    out.push(GuestOp::read(2 * third + i)); // c[i]
                    out.push(GuestOp::write(i)); // a[i]
                }
            }
        }
        out.truncate(count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ratio(kind: MlcKind) -> f64 {
        let mut wl = Mlc::new(kind, 1 << 20);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = wl.generate(12_000, &mut rng);
        let writes = ops.iter().filter(|o| o.write).count();
        writes as f64 / ops.len() as f64
    }

    #[test]
    fn ratios_match_labels() {
        assert_eq!(ratio(MlcKind::Reads), 0.0);
        assert!((ratio(MlcKind::R3W1) - 0.25).abs() < 0.01);
        assert!((ratio(MlcKind::R2W1) - 1.0 / 3.0).abs() < 0.01);
        assert!((ratio(MlcKind::R1W1) - 0.5).abs() < 0.01);
        assert!((ratio(MlcKind::Stream) - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn streaming_is_sequential() {
        let mut wl = Mlc::new(MlcKind::Reads, 1 << 20);
        let mut rng = StdRng::seed_from_u64(2);
        let ops = wl.generate(100, &mut rng);
        for w in ops.windows(2) {
            assert_eq!(w[1].offset, (w[0].offset + 64) % (1 << 20));
        }
    }

    #[test]
    fn stream_triad_touches_three_arrays() {
        let ws = 3 << 20;
        let mut wl = Mlc::new(MlcKind::Stream, ws);
        let mut rng = StdRng::seed_from_u64(3);
        let ops = wl.generate(9, &mut rng);
        let third = ws / 3 / 64 * 64;
        assert!(ops[0].offset >= third && ops[0].offset < 2 * third);
        assert!(ops[1].offset >= 2 * third);
        assert!(ops[2].offset < third);
        assert!(ops[2].write);
    }
}
