//! EPT entry encoding, permissions, and per-entry integrity checksums.
//!
//! This file is the PTE bit-packing boundary: entries *are* masked-and-
//! shifted HPAs by definition, so the address-domain gate's raw-arith rule
//! is waived for the whole file rather than routed through the decoder.
// lint:allow-file(addr-raw-arith)

/// Mapping granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB leaf at level 1.
    Size4K,
    /// 2 MiB leaf at level 2.
    Size2M,
    /// 1 GiB leaf at level 3.
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size2M => 2 << 20,
            PageSize::Size1G => 1 << 30,
        }
    }

    /// The paging level (1-based from leaves) at which this size is a leaf.
    #[must_use]
    pub const fn leaf_level(self) -> u32 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }
}

/// Access permissions of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EptPerms {
    /// Guest reads allowed.
    pub read: bool,
    /// Guest writes allowed.
    pub write: bool,
    /// Guest instruction fetches allowed.
    pub exec: bool,
}

impl EptPerms {
    /// Read-write-execute.
    pub const RWX: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: true,
    };

    /// Read-only.
    pub const RO: EptPerms = EptPerms {
        read: true,
        write: false,
        exec: false,
    };

    /// Read-write (no execute).
    pub const RW: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: false,
    };
}

/// Whether entries carry verified integrity checksums (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// Plain entries; corruption silently redirects translations (the
    /// legacy-hardware threat Siloz's guard rows address).
    #[default]
    None,
    /// Secure EPT: entries embed a keyed checksum checked on every walk,
    /// so corruption is detected on use (TDX/SNP-style).
    Checked,
}

/// A decoded EPT entry.
///
/// Layout (one `u64`, loosely after Intel EPT):
/// - bit 0: read, bit 1: write, bit 2: exec
/// - bit 7: leaf ("PS" for levels > 1; set on 4 KiB leaves too for
///   uniformity)
/// - bits 12..=51: target page frame number (HPA >> 12)
/// - bits 52..=63: integrity checksum (when [`IntegrityMode::Checked`])
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptEntry(pub u64);

const LEAF_BIT: u64 = 1 << 7;
const PFN_MASK: u64 = ((1u64 << 40) - 1) << 12;
const CSUM_SHIFT: u32 = 52;
const PAYLOAD_MASK: u64 = (1u64 << CSUM_SHIFT) - 1;

/// Keyed 12-bit checksum over an entry's payload bits.
fn checksum(payload: u64, salt: u64) -> u64 {
    let mut x = payload ^ salt;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) & 0xFFF
}

impl EptEntry {
    /// The all-zero (not-present) entry.
    pub const EMPTY: EptEntry = EptEntry(0);

    /// Builds a leaf entry mapping to `hpa` with `perms`.
    #[must_use]
    pub fn leaf(hpa: u64, perms: EptPerms, mode: IntegrityMode, salt: u64) -> Self {
        let mut v = (hpa & PFN_MASK) | LEAF_BIT;
        if perms.read {
            v |= 1;
        }
        if perms.write {
            v |= 2;
        }
        if perms.exec {
            v |= 4;
        }
        Self::seal(v, mode, salt)
    }

    /// Builds a non-leaf entry pointing at the next-level table at `hpa`.
    #[must_use]
    pub fn table(hpa: u64, mode: IntegrityMode, salt: u64) -> Self {
        // Table entries allow all access; leaves enforce permissions.
        let v = (hpa & PFN_MASK) | 0b111;
        Self::seal(v, mode, salt)
    }

    fn seal(payload: u64, mode: IntegrityMode, salt: u64) -> Self {
        let payload = payload & PAYLOAD_MASK;
        match mode {
            IntegrityMode::None => EptEntry(payload),
            IntegrityMode::Checked => EptEntry(payload | (checksum(payload, salt) << CSUM_SHIFT)),
        }
    }

    /// Whether the entry maps anything.
    #[must_use]
    pub fn is_present(self) -> bool {
        self.0 & 0b111 != 0
    }

    /// Whether the entry is a leaf mapping.
    #[must_use]
    pub fn is_leaf(self) -> bool {
        self.0 & LEAF_BIT != 0
    }

    /// The target HPA (page-aligned).
    #[must_use]
    pub fn hpa(self) -> u64 {
        self.0 & PFN_MASK
    }

    /// Decoded permissions.
    #[must_use]
    pub fn perms(self) -> EptPerms {
        EptPerms {
            read: self.0 & 1 != 0,
            write: self.0 & 2 != 0,
            exec: self.0 & 4 != 0,
        }
    }

    /// Verifies the embedded checksum under `mode`/`salt`.
    #[must_use]
    pub fn integrity_ok(self, mode: IntegrityMode, salt: u64) -> bool {
        match mode {
            IntegrityMode::None => true,
            IntegrityMode::Checked => {
                let payload = self.0 & PAYLOAD_MASK;
                (self.0 >> CSUM_SHIFT) == checksum(payload, salt)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrips_fields() {
        let e = EptEntry::leaf(0x1234_5000, EptPerms::RW, IntegrityMode::None, 0);
        assert!(e.is_present());
        assert!(e.is_leaf());
        assert_eq!(e.hpa(), 0x1234_5000);
        let p = e.perms();
        assert!(p.read && p.write && !p.exec);
    }

    #[test]
    fn table_entries_are_not_leaves() {
        let e = EptEntry::table(0x8000, IntegrityMode::None, 0);
        assert!(e.is_present());
        assert!(!e.is_leaf());
        assert_eq!(e.hpa(), 0x8000);
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!EptEntry::EMPTY.is_present());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let salt = 0xfeed;
        let e = EptEntry::leaf(0xABCD_E000, EptPerms::RWX, IntegrityMode::Checked, salt);
        assert!(e.integrity_ok(IntegrityMode::Checked, salt));
        // Flip each payload bit: the checksum must catch every one (a
        // Rowhammer flip in the PFN is the §5.4 attack).
        for bit in 0..52 {
            let corrupted = EptEntry(e.0 ^ (1 << bit));
            assert!(
                !corrupted.integrity_ok(IntegrityMode::Checked, salt),
                "flip of bit {bit} undetected"
            );
        }
    }

    #[test]
    fn checksum_is_salt_keyed() {
        let e = EptEntry::leaf(0x1000, EptPerms::RO, IntegrityMode::Checked, 1);
        assert!(!e.integrity_ok(IntegrityMode::Checked, 2));
    }

    #[test]
    fn unchecked_mode_accepts_anything() {
        let e = EptEntry(0xdead_beef_0000_0007);
        assert!(e.integrity_ok(IntegrityMode::None, 0));
    }

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 << 20);
        assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
        assert_eq!(PageSize::Size4K.leaf_level(), 1);
        assert_eq!(PageSize::Size1G.leaf_level(), 3);
    }
}
