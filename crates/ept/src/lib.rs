//! Extended page tables (EPTs) with integrity protection.
//!
//! EPTs map guest physical addresses (GPAs) to host physical addresses
//! (HPAs) (§2.1). They are the lynchpin of Siloz's isolation: because EPTs
//! define which HPAs a VM can touch, a bit flip in a VM's *own* EPTs could
//! let it escape its subarray groups (§5.4). This crate provides:
//!
//! - a 4-level EPT radix tree with 4 KiB / 2 MiB / 1 GiB mappings, whose
//!   table pages live in *simulated physical memory* via the [`PhysMem`]
//!   trait — so Rowhammer flips in table pages genuinely corrupt
//!   translations, end to end;
//! - pluggable table-page allocation via [`EptAllocator`], the hook Siloz
//!   uses to place EPT pages into guard-protected row groups (GFP_EPT,
//!   §5.4);
//! - optional *secure EPT* integrity (§5.4's hardware-based protection, in
//!   the spirit of TDX/SNP): each entry embeds a keyed checksum over its
//!   payload bits, verified on every walk, so a corrupted entry is detected
//!   on use instead of silently redirecting the VM.

#![forbid(unsafe_code)]

pub mod entry;
pub mod table;

pub use entry::{EptEntry, EptPerms, IntegrityMode, PageSize};
pub use table::{Ept, EptAllocator, EptError, PhysMem, Translation};

/// Bits of GPA covered per level (512-entry tables).
pub const LEVEL_BITS: u32 = 9;

/// Number of paging levels.
pub const LEVELS: u32 = 4;

/// Bytes per table page.
pub const TABLE_BYTES: u64 = 4096;
