//! The 4-level EPT radix tree, stored in simulated physical memory.

use crate::entry::{EptEntry, EptPerms, IntegrityMode, PageSize};
use crate::{LEVELS, LEVEL_BITS, TABLE_BYTES};
use telemetry::Counter;

/// Backing physical memory for EPT table pages.
///
/// Implemented over the simulated DRAM by the hypervisor crate, and by a
/// plain map for unit tests. Reads/writes are 8-byte entry accesses.
pub trait PhysMem {
    /// Reads the 64-bit word at physical address `phys` (8-byte aligned).
    fn read_u64(&mut self, phys: u64) -> u64;
    /// Writes the 64-bit word at physical address `phys` (8-byte aligned).
    fn write_u64(&mut self, phys: u64, value: u64);
}

/// Allocator for EPT table pages.
///
/// Siloz implements this with its GFP_EPT path, placing pages into the
/// guard-protected EPT row group (§5.4); the baseline implements it with
/// ordinary host allocations.
pub trait EptAllocator {
    /// Allocates one zeroed 4 KiB page for an EPT table; returns its HPA.
    fn alloc_table_page(&mut self) -> Result<u64, EptError>;
}

/// EPT operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptError {
    /// No memory for a table page.
    OutOfMemory,
    /// Translation of an unmapped GPA.
    NotMapped {
        /// The offending guest physical address.
        gpa: u64,
    },
    /// GPA/HPA not aligned to the mapping size.
    Misaligned,
    /// The GPA range is already mapped (possibly at a different size).
    AlreadyMapped {
        /// The offending guest physical address.
        gpa: u64,
    },
    /// An entry failed its integrity check during a walk (§5.4: corruption
    /// is detected on use; the VM cannot exploit the corrupted mapping).
    IntegrityViolation {
        /// Paging level of the corrupt entry (4 = root).
        level: u32,
        /// HPA of the corrupt entry.
        entry_addr: u64,
    },
}

impl core::fmt::Display for EptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EptError::OutOfMemory => write!(f, "out of EPT table memory"),
            EptError::NotMapped { gpa } => write!(f, "GPA {gpa:#x} not mapped"),
            EptError::Misaligned => write!(f, "misaligned mapping request"),
            EptError::AlreadyMapped { gpa } => write!(f, "GPA {gpa:#x} already mapped"),
            EptError::IntegrityViolation { level, entry_addr } => {
                write!(
                    f,
                    "EPT integrity violation at level {level}, entry {entry_addr:#x}"
                )
            }
        }
    }
}

impl std::error::Error for EptError {}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated host physical address.
    pub hpa: u64,
    /// Effective permissions.
    pub perms: EptPerms,
    /// Mapping size that served the translation.
    pub size: PageSize,
}

/// One VM's extended page table.
///
/// # Examples
///
/// ```
/// use ept::{Ept, EptAllocator, EptError, EptPerms, IntegrityMode, PageSize, PhysMem};
/// use std::collections::HashMap;
///
/// struct Mem(HashMap<u64, u64>);
/// impl PhysMem for Mem {
///     fn read_u64(&mut self, p: u64) -> u64 { *self.0.get(&p).unwrap_or(&0) }
///     fn write_u64(&mut self, p: u64, v: u64) { self.0.insert(p, v); }
/// }
/// struct Bump(u64);
/// impl EptAllocator for Bump {
///     fn alloc_table_page(&mut self) -> Result<u64, EptError> {
///         let p = self.0; self.0 += 4096; Ok(p)
///     }
/// }
///
/// let (mut mem, mut alloc) = (Mem(HashMap::new()), Bump(0x10_0000));
/// let mut ept = Ept::new(&mut mem, &mut alloc, IntegrityMode::Checked, 42).unwrap();
/// ept.map(&mut mem, &mut alloc, 0x20_0000, 0x4000_0000, PageSize::Size2M, EptPerms::RWX)
///     .unwrap();
/// let t = ept.translate(&mut mem, 0x20_1234).unwrap();
/// assert_eq!(t.hpa, 0x4000_1234);
/// ```
#[derive(Debug)]
pub struct Ept {
    root: u64,
    mode: IntegrityMode,
    salt: u64,
    /// HPAs of every table page in this EPT (root first). Siloz checks
    /// these stay inside the protected EPT row group.
    table_pages: Vec<u64>,
    mapped_leaves: u64,
    /// Translation walks performed (a lock-free counter: `translate` takes
    /// `&self`).
    walks: Counter,
    /// Walks or updates refused because an entry failed its integrity
    /// check — each one is a contained §5.4 corruption.
    integrity_denials: Counter,
}

impl Ept {
    /// Creates an empty EPT, allocating its root table.
    pub fn new(
        mem: &mut dyn PhysMem,
        alloc: &mut dyn EptAllocator,
        mode: IntegrityMode,
        salt: u64,
    ) -> Result<Self, EptError> {
        let root = alloc.alloc_table_page()?;
        // Zero the root table.
        for i in 0..(TABLE_BYTES / 8) {
            mem.write_u64(root + i * 8, 0);
        }
        Ok(Self {
            root,
            mode,
            salt,
            table_pages: vec![root],
            mapped_leaves: 0,
            walks: Counter::default(),
            integrity_denials: Counter::default(),
        })
    }

    /// HPA of the root table page.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// HPAs of all table pages (root first).
    #[must_use]
    pub fn table_pages(&self) -> &[u64] {
        &self.table_pages
    }

    /// Number of leaf mappings installed.
    #[must_use]
    pub fn mapped_leaves(&self) -> u64 {
        self.mapped_leaves
    }

    /// The integrity mode in force.
    #[must_use]
    pub fn integrity_mode(&self) -> IntegrityMode {
        self.mode
    }

    /// Translation walks performed so far.
    #[must_use]
    pub fn walks(&self) -> u64 {
        self.walks.get()
    }

    /// Operations refused on an entry integrity failure so far.
    #[must_use]
    pub fn integrity_denials(&self) -> u64 {
        self.integrity_denials.get()
    }

    /// Adds this table's totals into `reg`: walk and integrity-denial
    /// counts, table-page footprint, and installed leaf mappings.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("walks").add(self.walks());
        reg.counter("integrity_denials")
            .add(self.integrity_denials());
        reg.counter("table_pages")
            .add(self.table_pages.len() as u64);
        reg.counter("mapped_leaves").add(self.mapped_leaves);
    }

    /// Index of `gpa` within the table at 1-based `level`.
    fn index(gpa: u64, level: u32) -> u64 {
        (gpa >> (12 + (level - 1) * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)
    }

    /// Maps `[gpa, gpa + size)` to `[hpa, hpa + size)` with `perms`.
    pub fn map(
        &mut self,
        mem: &mut dyn PhysMem,
        alloc: &mut dyn EptAllocator,
        gpa: u64,
        hpa: u64,
        size: PageSize,
        perms: EptPerms,
    ) -> Result<(), EptError> {
        if !gpa.is_multiple_of(size.bytes()) || !hpa.is_multiple_of(size.bytes()) {
            return Err(EptError::Misaligned);
        }
        let leaf_level = size.leaf_level();
        let mut table = self.root;
        let mut level = LEVELS;
        while level > leaf_level {
            let entry_addr = table + Self::index(gpa, level) * 8;
            let entry = EptEntry(mem.read_u64(entry_addr));
            if entry.is_present() {
                if entry.is_leaf() {
                    return Err(EptError::AlreadyMapped { gpa });
                }
                if !entry.integrity_ok(self.mode, self.salt) {
                    self.integrity_denials.inc();
                    return Err(EptError::IntegrityViolation { level, entry_addr });
                }
                table = entry.hpa();
            } else {
                let new_table = alloc.alloc_table_page()?;
                for i in 0..(TABLE_BYTES / 8) {
                    mem.write_u64(new_table + i * 8, 0);
                }
                self.table_pages.push(new_table);
                mem.write_u64(
                    entry_addr,
                    EptEntry::table(new_table, self.mode, self.salt).0,
                );
                table = new_table;
            }
            level -= 1;
        }
        let entry_addr = table + Self::index(gpa, leaf_level) * 8;
        let existing = EptEntry(mem.read_u64(entry_addr));
        if existing.is_present() {
            return Err(EptError::AlreadyMapped { gpa });
        }
        mem.write_u64(
            entry_addr,
            EptEntry::leaf(hpa, perms, self.mode, self.salt).0,
        );
        self.mapped_leaves += 1;
        Ok(())
    }

    /// Translates a GPA, verifying integrity at every level.
    pub fn translate(&self, mem: &mut dyn PhysMem, gpa: u64) -> Result<Translation, EptError> {
        self.walks.inc();
        let mut table = self.root;
        let mut level = LEVELS;
        loop {
            let entry_addr = table + Self::index(gpa, level) * 8;
            let entry = EptEntry(mem.read_u64(entry_addr));
            if !entry.is_present() {
                return Err(EptError::NotMapped { gpa });
            }
            if !entry.integrity_ok(self.mode, self.salt) {
                self.integrity_denials.inc();
                return Err(EptError::IntegrityViolation { level, entry_addr });
            }
            if entry.is_leaf() {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => return Err(EptError::NotMapped { gpa }),
                };
                let offset = gpa & (size.bytes() - 1);
                return Ok(Translation {
                    hpa: entry.hpa() + offset,
                    perms: entry.perms(),
                    size,
                });
            }
            if level == 1 {
                return Err(EptError::NotMapped { gpa });
            }
            table = entry.hpa();
            level -= 1;
        }
    }

    /// Removes the leaf mapping covering `gpa` (tables are not reclaimed,
    /// as in most hypervisors' simple paths).
    pub fn unmap(&mut self, mem: &mut dyn PhysMem, gpa: u64) -> Result<(), EptError> {
        let mut table = self.root;
        let mut level = LEVELS;
        loop {
            let entry_addr = table + Self::index(gpa, level) * 8;
            let entry = EptEntry(mem.read_u64(entry_addr));
            if !entry.is_present() {
                return Err(EptError::NotMapped { gpa });
            }
            if !entry.integrity_ok(self.mode, self.salt) {
                self.integrity_denials.inc();
                return Err(EptError::IntegrityViolation { level, entry_addr });
            }
            if entry.is_leaf() {
                mem.write_u64(entry_addr, 0);
                self.mapped_leaves -= 1;
                return Ok(());
            }
            if level == 1 {
                return Err(EptError::NotMapped { gpa });
            }
            table = entry.hpa();
            level -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Mem(HashMap<u64, u64>);
    impl PhysMem for Mem {
        fn read_u64(&mut self, p: u64) -> u64 {
            *self.0.get(&p).unwrap_or(&0)
        }
        fn write_u64(&mut self, p: u64, v: u64) {
            self.0.insert(p, v);
        }
    }

    struct Bump(u64);
    impl EptAllocator for Bump {
        fn alloc_table_page(&mut self) -> Result<u64, EptError> {
            let p = self.0;
            self.0 += TABLE_BYTES;
            Ok(p)
        }
    }

    fn setup(mode: IntegrityMode) -> (Mem, Bump, Ept) {
        let mut mem = Mem(HashMap::new());
        let mut alloc = Bump(0x100_0000);
        let ept = Ept::new(&mut mem, &mut alloc, mode, 0x5a17).unwrap();
        (mem, alloc, ept)
    }

    #[test]
    fn map_translate_all_sizes() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::Checked);
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xAA000,
            PageSize::Size4K,
            EptPerms::RO,
        )
        .unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            0x20_0000,
            0x4000_0000,
            PageSize::Size2M,
            EptPerms::RW,
        )
        .unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            1 << 30,
            3 << 30,
            PageSize::Size1G,
            EptPerms::RWX,
        )
        .unwrap();

        let t = ept.translate(&mut mem, 0x1abc).unwrap();
        assert_eq!(t.hpa, 0xaaabc);
        assert_eq!(t.size, PageSize::Size4K);
        assert!(!t.perms.write);

        let t = ept.translate(&mut mem, 0x20_0000 + 12345).unwrap();
        assert_eq!(t.hpa, 0x4000_0000 + 12345);
        assert_eq!(t.size, PageSize::Size2M);

        let t = ept.translate(&mut mem, (1 << 30) + 0x9999).unwrap();
        assert_eq!(t.hpa, (3u64 << 30) + 0x9999);
        assert_eq!(t.size, PageSize::Size1G);
        assert_eq!(ept.mapped_leaves(), 3);
    }

    #[test]
    fn unmapped_gpa_errors() {
        let (mut mem, _alloc, ept) = setup(IntegrityMode::None);
        assert_eq!(
            ept.translate(&mut mem, 0x5000),
            Err(EptError::NotMapped { gpa: 0x5000 })
        );
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::None);
        assert_eq!(
            ept.map(
                &mut mem,
                &mut alloc,
                0x1234,
                0,
                PageSize::Size4K,
                EptPerms::RWX
            ),
            Err(EptError::Misaligned)
        );
        assert_eq!(
            ept.map(
                &mut mem,
                &mut alloc,
                0x20_0000,
                0x1000,
                PageSize::Size2M,
                EptPerms::RWX
            ),
            Err(EptError::Misaligned)
        );
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::None);
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xA000,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        assert_eq!(
            ept.map(
                &mut mem,
                &mut alloc,
                0x1000,
                0xB000,
                PageSize::Size4K,
                EptPerms::RWX
            ),
            Err(EptError::AlreadyMapped { gpa: 0x1000 })
        );
    }

    #[test]
    fn unmap_then_translate_fails_then_remap() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::Checked);
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xA000,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        ept.unmap(&mut mem, 0x1000).unwrap();
        assert!(matches!(
            ept.translate(&mut mem, 0x1000),
            Err(EptError::NotMapped { .. })
        ));
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xB000,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        assert_eq!(ept.translate(&mut mem, 0x1000).unwrap().hpa, 0xB000);
    }

    #[test]
    fn corrupted_leaf_detected_with_integrity() {
        // The §5.4 scenario: a bit flip in a leaf entry redirects the VM.
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::Checked);
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xA000,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        // Find and corrupt the leaf entry (flip a PFN bit).
        let leaf_table = *ept.table_pages().last().unwrap();
        let entry_addr = leaf_table + 8;
        let raw = mem.read_u64(entry_addr);
        mem.write_u64(entry_addr, raw ^ (1 << 20));
        assert!(matches!(
            ept.translate(&mut mem, 0x1000),
            Err(EptError::IntegrityViolation { level: 1, .. })
        ));
    }

    #[test]
    fn corrupted_leaf_silently_redirects_without_integrity() {
        // Without secure EPT, the same flip silently translates to a
        // different HPA — the subarray-group escape Siloz must prevent via
        // guard rows on legacy hardware.
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::None);
        ept.map(
            &mut mem,
            &mut alloc,
            0x1000,
            0xA000,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        let leaf_table = *ept.table_pages().last().unwrap();
        let entry_addr = leaf_table + 8;
        let raw = mem.read_u64(entry_addr);
        mem.write_u64(entry_addr, raw ^ (1 << 20));
        let t = ept.translate(&mut mem, 0x1000).unwrap();
        assert_ne!(t.hpa, 0xA000, "flip redirected the mapping undetected");
    }

    #[test]
    fn corrupted_intermediate_detected() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::Checked);
        ept.map(&mut mem, &mut alloc, 0, 0, PageSize::Size4K, EptPerms::RWX)
            .unwrap();
        // Corrupt the root entry (level 4).
        let root_entry = ept.root();
        let raw = mem.read_u64(root_entry);
        mem.write_u64(root_entry, raw ^ (1 << 13));
        assert!(matches!(
            ept.translate(&mut mem, 0),
            Err(EptError::IntegrityViolation { level: 4, .. })
        ));
    }

    #[test]
    fn contiguous_2m_backing_shares_tables() {
        // §5.4: contiguous allocation + 2 MiB pages keep EPT page counts
        // tiny — 512 consecutive 2 MiB leaves fit one level-2 table.
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::Checked);
        for i in 0..512u64 {
            ept.map(
                &mut mem,
                &mut alloc,
                i * (2 << 20),
                (1 << 30) + i * (2 << 20),
                PageSize::Size2M,
                EptPerms::RWX,
            )
            .unwrap();
        }
        // Root + PDPT + one PD = 3 table pages for 1 GiB of mappings.
        assert_eq!(ept.table_pages().len(), 3);
        assert_eq!(ept.mapped_leaves(), 512);
    }

    #[test]
    fn table_pages_reported_for_placement() {
        let (mut mem, mut alloc, mut ept) = setup(IntegrityMode::None);
        let before = ept.table_pages().len();
        ept.map(
            &mut mem,
            &mut alloc,
            0x4000_0000,
            0,
            PageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        assert!(ept.table_pages().len() > before);
        assert_eq!(ept.table_pages()[0], ept.root());
    }
}
