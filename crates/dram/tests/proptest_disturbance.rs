//! Property tests on the disturbance physics: subarray containment, refresh
//! safety, and aggressor self-immunity under arbitrary hammering.

use dram::{DimmProfile, DramSystemBuilder};
use dram_addr::{mini_geometry, BankId, InternalMapConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No sequence of activations may ever flip a bit outside the union of
    /// the hammered rows' subarrays — the paper's foundational fact (§2.5).
    #[test]
    fn flips_never_escape_hammered_subarrays(
        rows in prop::collection::vec(0u32..2048, 1..6),
        bank in 0u32..8,
        rounds in 50_000u32..120_000,
    ) {
        let g = mini_geometry();
        let mut dram = DramSystemBuilder::new(g).trr(0, 0).build();
        for _ in 0..rounds {
            for &r in &rows {
                dram.activate_row(BankId(bank), r, 0);
            }
            dram.advance_ns(47 * rows.len() as u64);
        }
        let subs: std::collections::HashSet<u32> =
            rows.iter().map(|r| r / g.rows_per_subarray).collect();
        for f in dram.flip_log().all() {
            prop_assert!(
                subs.contains(&(f.media_row / g.rows_per_subarray)),
                "flip in row {} outside hammered subarrays {subs:?}",
                f.media_row
            );
            prop_assert_eq!(f.bank, BankId(bank), "flip crossed banks");
        }
    }

    /// Hammering with internal transforms on still never crosses the
    /// *physical* subarray the cells live in, mapped back to media space.
    /// Uses a commodity 512-row subarray size: §6 guarantees block-wise
    /// transforms only for power-of-2 sizes in [512, 2048] (the mini
    /// default of 256 rows genuinely violates grouping under odd-rank
    /// mirroring — see `transform::tests`).
    #[test]
    fn transforms_preserve_physical_containment(
        base in 0u32..1792,
        rounds in 60_000u32..100_000,
    ) {
        let g = mini_geometry().with_subarray_rows(512);
        let mut dram = DramSystemBuilder::new(g)
            .internal_map(InternalMapConfig::all())
            .trr(0, 0)
            .build();
        // Double-sided pair, odd rank bank (rank 1 => mirrored).
        let bank = BankId(34);
        for _ in 0..rounds {
            dram.activate_row(bank, base, 0);
            dram.activate_row(bank, base + 2, 0);
            dram.advance_ns(94);
        }
        // Union of the two aggressors' *media* subarrays covers every flip:
        // internal transforms permute whole subarrays (power-of-2 size).
        let subs: std::collections::HashSet<u32> = [base, base + 2]
            .iter()
            .map(|r| r / g.rows_per_subarray)
            .collect();
        for f in dram.flip_log().all() {
            prop_assert!(subs.contains(&(f.media_row / g.rows_per_subarray)));
        }
    }

    /// Sufficiently slow activation rates never flip anything: the refresh
    /// window resets disturbance first.
    #[test]
    fn slow_hammering_is_always_safe(
        row in 2u32..2046,
        gap_ns in 12_000u64..50_000,
    ) {
        let g = mini_geometry();
        let mut dram = DramSystemBuilder::new(g).trr(0, 0).build();
        // ~64ms/gap activations per window, far below any threshold.
        for _ in 0..20_000 {
            dram.activate_row(BankId(0), row, 0);
            dram.advance_ns(gap_ns);
        }
        prop_assert!(dram.flip_log().is_empty());
    }

    /// The invulnerable profile never flips regardless of pattern.
    #[test]
    fn invulnerable_never_flips(
        rows in prop::collection::vec(0u32..2048, 1..8),
    ) {
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .profiles(vec![DimmProfile::invulnerable()])
            .trr(0, 0)
            .build();
        for _ in 0..50_000 {
            for &r in &rows {
                dram.activate_row(BankId(1), r, 2_000);
            }
            dram.advance_ns(47 * rows.len() as u64);
        }
        prop_assert!(dram.flip_log().is_empty());
    }
}
