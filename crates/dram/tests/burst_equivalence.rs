//! Burst-vs-reference equivalence battery.
//!
//! `DramSystem::activate_burst` is specified to be *bit-identical* to the
//! per-ACT reference path for any run-ordered activation sequence: same flip
//! log (including order), same `DramStats`, same active-flip rows, same
//! deterministic telemetry. These properties drive randomized schedules —
//! across TRR configurations, RowPress open times, row repairs, and
//! subarray-boundary aggressors — through both paths and compare every
//! observable.

use dram::{DramStats, DramSystem, DramSystemBuilder};
use dram_addr::{mini_geometry, BankId, InternalMapConfig, RepairMap};
use proptest::prelude::*;

/// One coalescible run: `count` back-to-back ACTs of `(bank, row)` holding
/// the row open `extra_open_ns` beyond nominal, followed by a time advance.
#[derive(Debug, Clone)]
struct Run {
    bank: u32,
    row: u32,
    count: u64,
    extra_open_ns: u64,
    advance_ns: u64,
}

fn run_strategy() -> impl Strategy<Value = Run> {
    (0u32..4, 0u32..3, 0u32..2048, 0u64..2002, 0u32..2, 0u32..3).prop_map(
        |(bank, row_kind, row_any, count, press, adv_kind)| Run {
            bank,
            // Bias rows toward a few subarray-boundary-adjacent hot spots so
            // runs actually re-hammer the same victims past their thresholds.
            row: match row_kind {
                0 => 250 + row_any % 12, // straddles the 256-row subarray edge
                1 => 20 + row_any % 10,
                _ => row_any,
            },
            // 0 and 1 are degenerate bursts; anything else is a real run.
            count,
            extra_open_ns: if press == 0 { 0 } else { 1_500 }, // RowPress on/off
            advance_ns: match adv_kind {
                0 => 0,
                1 => 94,
                _ => 50_000,
            },
        },
    )
}

fn build(trr: (usize, usize), repairs: bool) -> DramSystem {
    let mut map = RepairMap::new();
    if repairs {
        // Repair a hot-spot row to a spare in another subarray, and a row
        // whose spare sits right at a subarray edge.
        map.insert(BankId(0), 22, 600);
        map.insert(BankId(1), 255, 511);
    }
    DramSystemBuilder::new(mini_geometry())
        .trr(trr.0, trr.1)
        .repairs(map)
        .internal_map(InternalMapConfig::identity())
        .build()
}

/// Replays `runs` per-ACT on `reference` and coalesced on `burst`, then
/// asserts every observable is bit-identical.
fn assert_equivalent(runs: &[Run], trr: (usize, usize), repairs: bool) -> DramStats {
    let mut reference = build(trr, repairs);
    let mut burst = build(trr, repairs);
    for r in runs {
        let bank = BankId(r.bank);
        for _ in 0..r.count {
            reference.activate_row(bank, r.row, r.extra_open_ns);
        }
        reference.advance_ns(r.advance_ns);
        burst.activate_burst(bank, r.row, r.count, r.extra_open_ns);
        burst.advance_ns(r.advance_ns);
    }
    assert_eq!(reference.stats(), burst.stats(), "DramStats diverged");
    assert_eq!(
        reference.flip_log().all(),
        burst.flip_log().all(),
        "flip logs diverged (order-sensitive)"
    );
    assert_eq!(
        reference.rows_with_active_flips(),
        burst.rows_with_active_flips(),
        "active flip rows diverged"
    );
    let snap = |d: &DramSystem| {
        let reg = telemetry::Registry::new();
        d.export_telemetry(&reg);
        reg.snapshot().deterministic().to_json()
    };
    assert_eq!(snap(&reference), snap(&burst), "telemetry diverged");
    *reference.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No TRR: pure disturbance accumulation, threshold crossings, refresh
    /// interleaving, and RowPress weight changes.
    #[test]
    fn burst_equals_reference_without_trr(
        runs in prop::collection::vec(run_strategy(), 1..40),
    ) {
        assert_equivalent(&runs, (0, 0), false);
    }

    /// Default TRR (capacity 4, serve 2): the counted observe must replay
    /// Misra-Gries decrement/replace churn and post-REF zero-count slots.
    #[test]
    fn burst_equals_reference_with_trr(
        runs in prop::collection::vec(run_strategy(), 1..40),
    ) {
        assert_equivalent(&runs, (4, 2), false);
    }

    /// Row repairs: bursts on repaired rows hammer the spare's neighbors and
    /// flips translate through the inverse repair map identically.
    #[test]
    fn burst_equals_reference_with_repairs(
        runs in prop::collection::vec(run_strategy(), 1..40),
    ) {
        assert_equivalent(&runs, (4, 2), true);
    }

    /// Long same-row sieges: single runs big enough to cross many weak-cell
    /// thresholds inside one burst, so the crossing-act solver and the
    /// ordered emission sweep are exercised hard.
    #[test]
    fn burst_equals_reference_on_long_sieges(
        row in 250u32..262,
        bank in 0u32..4,
        count in 30_000u64..90_000,
        press in 0u32..2,
    ) {
        let extra = if press == 0 { 0u64 } else { 2_000 };
        let runs = [
            Run { bank, row, count, extra_open_ns: extra, advance_ns: 100 },
            Run { bank, row: row + 2, count, extra_open_ns: 0, advance_ns: 0 },
            Run { bank, row, count: count / 2, extra_open_ns: 0, advance_ns: 60_000 },
        ];
        let stats = assert_equivalent(&runs, (0, 0), false);
        prop_assert!(stats.acts >= 75_000);
    }
}
