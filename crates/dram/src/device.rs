//! The top-level DRAM system: all banks, data, disturbance, refresh, ECC.

use crate::bank::{side_idx, BankState};
use crate::ecc::{classify, EccMode, ReadIntegrity};
use crate::flip::{BitFlip, FlipLog};
use crate::profile::DimmProfile;
use crate::{REFRESH_WINDOW_NS, REFS_PER_WINDOW};
use dram_addr::transform::media_row_from_internal;
use dram_addr::{
    internal_row, BankId, Geometry, InternalMapConfig, MediaAddress, RankSide, RepairMap,
};
use std::collections::HashMap;

/// Running counters of device-level events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DramStats {
    /// Total row activations.
    pub acts: u64,
    /// Distributed REF steps executed.
    pub ref_steps: u64,
    /// Suspected-aggressor rows served by TRR (neighbor refreshes issued
    /// from the tracker, summed over both rank sides).
    pub trr_triggers: u64,
    /// Words corrected by ECC during reads.
    pub corrected_words: u64,
    /// Uncorrectable (2-bit) words encountered during reads.
    pub uncorrectable_words: u64,
    /// Words where ECC was silently defeated during reads.
    pub silent_words: u64,
}

/// Result of a patrol-scrub pass (§2.5; consumed by Copy-on-Flip-style
/// defenses and the containment experiments).
#[derive(Debug, Default, Clone)]
pub struct ScrubReport {
    /// Corrected single-bit flips, as `(bank, media row, byte)` locations.
    pub corrected: Vec<(BankId, u32, u32)>,
    /// Locations with multi-bit (uncorrectable) damage, left in place.
    pub uncorrectable: Vec<(BankId, u32, u32)>,
}

/// Flipped cells of one media row: `(byte, bit, side)` tuples.
type FlippedCells = Vec<(u32, u8, RankSide)>;

/// Builder for [`DramSystem`].
#[derive(Debug, Clone)]
pub struct DramSystemBuilder {
    geometry: Geometry,
    internal: InternalMapConfig,
    repairs: RepairMap,
    profiles: Vec<DimmProfile>,
    ecc: EccMode,
    trr_capacity: usize,
    trr_served: usize,
    pattern_dependent: bool,
    scrub_interval_ns: u64,
}

impl DramSystemBuilder {
    /// Starts a builder for the given geometry with evaluation defaults:
    /// DDR4 mirroring+inversion, no repairs, DIMM profile "C" on every slot,
    /// SEC-DED ECC, and a 4-entry TRR serving 2 rows per REF.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            internal: InternalMapConfig::default(),
            repairs: RepairMap::new(),
            profiles: vec![DimmProfile::default_eval()],
            ecc: EccMode::SecDed,
            trr_capacity: 4,
            trr_served: 2,
            pattern_dependent: true,
            scrub_interval_ns: 0,
        }
    }

    /// Sets the DIMM-internal address transformations (§6).
    #[must_use]
    pub fn internal_map(mut self, cfg: InternalMapConfig) -> Self {
        self.internal = cfg;
        self
    }

    /// Installs a row-repair table (§6).
    #[must_use]
    pub fn repairs(mut self, repairs: RepairMap) -> Self {
        self.repairs = repairs;
        self
    }

    /// Assigns DIMM profiles round-robin across the machine's DIMM slots.
    ///
    /// With the evaluation geometry (6 DIMMs/socket) and the six Table 3
    /// profiles, socket 0's DIMMs are exactly A-F.
    #[must_use]
    pub fn profiles(mut self, profiles: Vec<DimmProfile>) -> Self {
        assert!(!profiles.is_empty(), "at least one DIMM profile required");
        self.profiles = profiles;
        self
    }

    /// Sets the ECC mode.
    #[must_use]
    pub fn ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Configures the per-bank TRR tracker (0 capacity disables TRR).
    #[must_use]
    pub fn trr(mut self, capacity: usize, served_per_ref: usize) -> Self {
        self.trr_capacity = capacity;
        self.trr_served = served_per_ref;
        self
    }

    /// Enables/disables data-pattern-dependent flips (true/anti cells).
    /// On (the default), only charged cells leak; experiments with
    /// all-zero victims see roughly half the flips of striped victims.
    #[must_use]
    pub fn pattern_dependent(mut self, on: bool) -> Self {
        self.pattern_dependent = on;
        self
    }

    /// Enables automatic ECC patrol scrubbing every `interval_ns` of
    /// simulated time (0 disables; servers typically scrub the full memory
    /// over hours — the §7.1 experiment relies on patrol scrub to catch
    /// any undetected flips).
    #[must_use]
    pub fn patrol_scrub(mut self, interval_ns: u64) -> Self {
        self.scrub_interval_ns = interval_ns;
        self
    }

    /// Builds the DRAM system.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`Geometry::validate`]).
    #[must_use]
    pub fn build(self) -> DramSystem {
        self.geometry.validate().expect("valid geometry");
        let dimm_slots = (self.geometry.sockets as usize)
            * (self.geometry.channels_per_socket as usize)
            * (self.geometry.dimms_per_channel as usize);
        let profile_of_dimm: Vec<DimmProfile> = (0..dimm_slots)
            .map(|i| self.profiles[i % self.profiles.len()].clone())
            .collect();
        let mut repair_inverse = HashMap::new();
        for (&(bank, media_row), &target) in self.repairs.iter() {
            repair_inverse.insert((bank, target), media_row);
        }
        let trefi_ns = REFRESH_WINDOW_NS / REFS_PER_WINDOW as u64;
        DramSystem {
            geometry: self.geometry,
            internal: self.internal,
            repairs: self.repairs,
            repair_inverse,
            profile_of_dimm,
            ecc: self.ecc,
            trr_capacity: self.trr_capacity,
            trr_served: self.trr_served,
            pattern_dependent: self.pattern_dependent,
            scrub_interval_ns: self.scrub_interval_ns,
            next_scrub_ns: self.scrub_interval_ns.max(1),
            scrub_history: ScrubReport::default(),
            banks: HashMap::new(),
            data: HashMap::new(),
            flipped: HashMap::new(),
            flip_log: FlipLog::new(),
            now_ns: 0,
            next_ref_ns: trefi_ns,
            trefi_ns,
            stats: DramStats::default(),
        }
    }
}

/// The machine's DRAM: every bank of every DIMM, with disturbance physics.
///
/// # Examples
///
/// Hammering two aggressor rows past the threshold flips bits in victims
/// between them, but never outside their subarray:
///
/// ```
/// use dram::{DramSystem, DramSystemBuilder};
/// use dram_addr::{mini_geometry, BankId};
///
/// let mut dram = DramSystemBuilder::new(mini_geometry()).trr(0, 0).build();
/// let bank = BankId(0);
/// for _ in 0..200_000 {
///     dram.activate_row(bank, 10, 0);
///     dram.activate_row(bank, 12, 0);
///     dram.advance_ns(94);
/// }
/// assert!(dram.flip_log().len() > 0);
/// for f in dram.flip_log().all() {
///     assert!(f.media_row / 256 == 10 / 256, "flip escaped the subarray");
/// }
/// ```
#[derive(Debug)]
pub struct DramSystem {
    geometry: Geometry,
    internal: InternalMapConfig,
    repairs: RepairMap,
    /// Internal spare row → the media row whose data lives there.
    repair_inverse: HashMap<(BankId, u32), u32>,
    profile_of_dimm: Vec<DimmProfile>,
    ecc: EccMode,
    trr_capacity: usize,
    trr_served: usize,
    pattern_dependent: bool,
    scrub_interval_ns: u64,
    next_scrub_ns: u64,
    scrub_history: ScrubReport,
    banks: HashMap<BankId, BankState>,
    /// Written row data, media coordinates; unwritten rows read as zeros.
    data: HashMap<(BankId, u32), Box<[u8]>>,
    /// Currently-flipped cells per media row.
    flipped: HashMap<(BankId, u32), FlippedCells>,
    flip_log: FlipLog,
    now_ns: u64,
    next_ref_ns: u64,
    trefi_ns: u64,
    stats: DramStats,
}

impl DramSystem {
    /// Convenience constructor with all defaults for `geometry`.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        DramSystemBuilder::new(geometry).build()
    }

    /// The geometry this system was built with.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Device-event counters.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The historical log of every bit flip that ever occurred.
    #[must_use]
    pub fn flip_log(&self) -> &FlipLog {
        &self.flip_log
    }

    /// Clears the historical flip log (active cell corruption is untouched).
    pub fn clear_flip_log(&mut self) {
        self.flip_log.clear();
    }

    /// Current simulated time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The DIMM profile governing a bank's cells.
    #[must_use]
    pub fn profile_for(&self, bank: BankId) -> &DimmProfile {
        let m = bank.to_media(&self.geometry);
        let idx = (m.socket as usize * self.geometry.channels_per_socket as usize
            + m.channel as usize)
            * self.geometry.dimms_per_channel as usize
            + m.dimm as usize;
        &self.profile_of_dimm[idx]
    }

    /// Advances simulated time, executing any distributed REF steps that
    /// come due (one step per tREFI; a full pass refreshes every row within
    /// the 64 ms window).
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns += ns;
        while self.next_ref_ns <= self.now_ns {
            self.refresh_step();
            self.next_ref_ns += self.trefi_ns;
        }
        if self.scrub_interval_ns > 0 {
            while self.next_scrub_ns <= self.now_ns {
                let report = self.scrub();
                self.scrub_history.corrected.extend(report.corrected);
                self.scrub_history
                    .uncorrectable
                    .extend(report.uncorrectable);
                self.next_scrub_ns += self.scrub_interval_ns;
            }
        }
    }

    /// Accumulated results of automatic patrol scrubs (empty when patrol
    /// scrubbing is disabled).
    #[must_use]
    pub fn scrub_history(&self) -> &ScrubReport {
        &self.scrub_history
    }

    /// Adds this device's event totals into `reg`: activation/refresh/TRR
    /// counts, ECC outcomes, patrol-scrub results, and the distribution of
    /// active flips per subarray group (the containment quantity Table 3
    /// keys on).
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("acts").add(self.stats.acts);
        reg.counter("ref_steps").add(self.stats.ref_steps);
        reg.counter("trr_triggers").add(self.stats.trr_triggers);
        reg.counter("ecc_corrected_words")
            .add(self.stats.corrected_words);
        reg.counter("ecc_uncorrectable_words")
            .add(self.stats.uncorrectable_words);
        reg.counter("ecc_silent_words").add(self.stats.silent_words);
        reg.counter("scrub_corrected")
            .add(self.scrub_history.corrected.len() as u64);
        reg.counter("scrub_uncorrectable")
            .add(self.scrub_history.uncorrectable.len() as u64);
        reg.counter("flips_active").add(self.flip_log.len() as u64);
        let mut per_group: HashMap<(BankId, u32), u64> = HashMap::new();
        for f in self.flip_log.all() {
            *per_group
                .entry((f.bank, self.geometry.subarray_of_row(f.media_row)))
                .or_default() += 1;
        }
        reg.counter("subarray_groups_with_flips")
            .add(per_group.len() as u64);
        let per_group_histo = reg.histo("flips_per_subarray_group");
        for &n in per_group.values() {
            per_group_histo.observe(n);
        }
    }

    /// Executes one distributed REF step across all active banks.
    fn refresh_step(&mut self) {
        self.stats.ref_steps += 1;
        let chunk = (self.geometry.rows_per_bank / REFS_PER_WINDOW).max(1);
        let rows_per_bank = self.geometry.rows_per_bank;
        for bank in self.banks.values_mut() {
            let start = bank.refresh_ptr;
            for i in 0..chunk {
                bank.refresh_row((start + i) % rows_per_bank);
            }
            bank.refresh_ptr = (start + chunk) % rows_per_bank;
            // TRR: serve suspected aggressors by refreshing their neighbors.
            for side in 0..2u8 {
                let served = bank.trr[side as usize].on_refresh();
                self.stats.trr_triggers += served.len() as u64;
                for agg in served {
                    for d in 1..=2u32 {
                        if agg >= d {
                            bank.refresh_half_row(side, agg - d);
                        }
                        if agg + d < rows_per_bank {
                            bank.refresh_half_row(side, agg + d);
                        }
                    }
                }
            }
        }
    }

    /// Activates a row given its full media address (§2.4).
    ///
    /// `extra_open_ns` is how long the row stays open beyond the nominal
    /// access time; long open times add RowPress disturbance (§2.5).
    pub fn activate(&mut self, media: &MediaAddress, extra_open_ns: u64) {
        let bank = media.global_bank(&self.geometry);
        self.activate_inner(bank, media.row, media.rank, extra_open_ns);
    }

    /// Activates `media_row` of `bank` (rank inferred from the bank id).
    pub fn activate_row(&mut self, bank: BankId, media_row: u32, extra_open_ns: u64) {
        let rank = bank.to_media(&self.geometry).rank;
        self.activate_inner(bank, media_row, rank, extra_open_ns);
    }

    fn activate_inner(&mut self, bank: BankId, media_row: u32, rank: u16, extra_open_ns: u64) {
        debug_assert!(media_row < self.geometry.rows_per_bank);
        self.stats.acts += 1;
        let profile = self.profile_for(bank).clone();
        let geometry = self.geometry;
        let internal_cfg = self.internal;
        let half = (geometry.row_bytes / 2) as u32;
        let sub_rows = geometry.rows_per_subarray;
        let rows_per_bank = geometry.rows_per_bank;
        let rowpress = profile.rowpress_per_us * extra_open_ns as f64 / 1000.0;
        let repaired_target = if self.repairs.is_repaired(bank, media_row) {
            Some(self.repairs.resolve(bank, media_row))
        } else {
            None
        };

        // Collect flips first to avoid borrowing `self` inside the loop.
        let mut new_flips: Vec<(RankSide, u32, crate::flip::WeakCell)> = Vec::new();
        {
            let trr_capacity = self.trr_capacity;
            let trr_served = self.trr_served;
            let state = self
                .banks
                .entry(bank)
                .or_insert_with(|| BankState::new(trr_capacity, trr_served));
            state.acts += 1;
            for side in RankSide::BOTH {
                // The internal row whose cells are physically activated: a
                // repaired row's charge lives at its spare (§6); otherwise
                // the DDR4/vendor transforms apply.
                let aggressor = repaired_target
                    .unwrap_or_else(|| internal_row(media_row, rank, side, internal_cfg));
                state.trr[side_idx(side) as usize].observe(aggressor);
                // An ACT refreshes the activated row itself.
                state.refresh_half_row(side_idx(side), aggressor);
                // Disturb same-subarray neighbors (§2.5): rows in other
                // subarrays are electrically isolated.
                let sub = aggressor / sub_rows;
                for d in 1..=profile.weights.radius() {
                    let w = profile.weights.at(d) * (1.0 + rowpress);
                    if w <= 0.0 {
                        continue;
                    }
                    let lo = aggressor.checked_sub(d);
                    let hi = if aggressor + d < rows_per_bank {
                        Some(aggressor + d)
                    } else {
                        None
                    };
                    for v in [lo, hi].into_iter().flatten() {
                        if v / sub_rows != sub {
                            continue; // Subarray isolation (Fig. 1).
                        }
                        let vs = state.victim_mut(&profile, bank.0, side, v, half);
                        vs.disturb += w;
                        while vs.next_cell < vs.cells.len()
                            && vs.cells[vs.next_cell].threshold <= vs.disturb
                        {
                            let cell = vs.cells[vs.next_cell];
                            vs.next_cell += 1;
                            new_flips.push((side, v, cell));
                        }
                    }
                }
            }
        }
        for (side, internal_victim, cell) in new_flips {
            self.apply_flip(bank, rank, side, internal_victim, cell);
        }
    }

    /// Applies one flip at an internal victim location, translating back to
    /// media coordinates. Honors cell polarity: only a charged cell (stored
    /// bit matching the cell's vulnerable state) can flip.
    fn apply_flip(
        &mut self,
        bank: BankId,
        rank: u16,
        side: RankSide,
        internal_victim: u32,
        cell: crate::flip::WeakCell,
    ) {
        let (byte_in_half, bit) = (cell.byte_in_half, cell.bit);
        // Whose data lives at this internal row? A repair spare holds the
        // repaired media row's data; otherwise invert the transforms. Flips
        // landing in a repaired-away (disused) defective row hit no data.
        let media_row = match self.repair_inverse.get(&(bank, internal_victim)) {
            Some(&m) => m,
            None => {
                let m = media_row_from_internal(internal_victim, rank, side, self.internal);
                if self.repairs.is_repaired(bank, m) {
                    return;
                }
                m
            }
        };
        let half = (self.geometry.row_bytes / 2) as u32;
        let byte = match side {
            RankSide::A => byte_in_half,
            RankSide::B => half + byte_in_half,
        };
        // Pattern dependence: the stored bit must be in the cell's charged
        // state to leak. (Stored = written data XOR any active flip.)
        if self.pattern_dependent {
            let stored = self
                .data
                .get(&(bank, media_row))
                .map_or(0, |row| row[byte as usize]);
            let already = self
                .flipped
                .get(&(bank, media_row))
                .is_some_and(|v| v.contains(&(byte, bit, side)));
            let current = ((stored >> bit) & 1) ^ u8::from(already);
            if current != cell.polarity.vulnerable_bit() {
                return;
            }
        }
        let key = (byte, bit, side);
        let active = self.flipped.entry((bank, media_row)).or_default();
        if !active.contains(&key) {
            active.push(key);
        }
        self.flip_log.record(BitFlip {
            bank,
            media_row,
            side,
            byte,
            bit,
        });
    }

    /// Writes bytes into a media row, restoring correct charge over the
    /// written region (overlapping flips are cleared).
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the row.
    pub fn write_row(&mut self, bank: BankId, media_row: u32, offset: u32, bytes: &[u8]) {
        let row_bytes = self.geometry.row_bytes as usize;
        let end = offset as usize + bytes.len();
        assert!(end <= row_bytes, "write beyond row end");
        let row = self
            .data
            .entry((bank, media_row))
            .or_insert_with(|| vec![0u8; row_bytes].into_boxed_slice());
        row[offset as usize..end].copy_from_slice(bytes);
        if let Some(active) = self.flipped.get_mut(&(bank, media_row)) {
            active.retain(|&(b, _, _)| (b as usize) < offset as usize || b as usize >= end);
            if active.is_empty() {
                self.flipped.remove(&(bank, media_row));
            }
        }
    }

    /// Reads bytes from a media row, applying active flips and ECC.
    ///
    /// Returns the data (corrected where ECC can correct) and the integrity
    /// classification of the access.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the row.
    pub fn read_row(
        &mut self,
        bank: BankId,
        media_row: u32,
        offset: u32,
        len: u32,
    ) -> (Vec<u8>, ReadIntegrity) {
        let row_bytes = self.geometry.row_bytes as usize;
        let end = offset as usize + len as usize;
        assert!(end <= row_bytes, "read beyond row end");
        let mut out = match self.data.get(&(bank, media_row)) {
            Some(row) => row[offset as usize..end].to_vec(),
            None => vec![0u8; len as usize],
        };
        // Collect flips per 64-bit word in the region.
        let mut per_word: HashMap<u32, Vec<(u32, u8)>> = HashMap::new();
        if let Some(active) = self.flipped.get(&(bank, media_row)) {
            for &(byte, bit, _) in active {
                if (byte as usize) >= offset as usize && (byte as usize) < end {
                    per_word.entry(byte / 8).or_default().push((byte, bit));
                }
            }
        }
        let counts: Vec<u32> = per_word.values().map(|v| v.len() as u32).collect();
        let integrity = classify(self.ecc, &counts);
        match integrity {
            ReadIntegrity::Clean => {}
            ReadIntegrity::Corrected(n) => {
                // ECC corrects the returned data (cells stay flipped).
                self.stats.corrected_words += n as u64;
            }
            other => {
                // Data returned with the corruption applied.
                for flips in per_word.values() {
                    for &(byte, bit) in flips {
                        out[byte as usize - offset as usize] ^= 1 << bit;
                    }
                }
                match other {
                    ReadIntegrity::Uncorrectable(n) => self.stats.uncorrectable_words += n as u64,
                    ReadIntegrity::SilentlyCorrupt(n) => self.stats.silent_words += n as u64,
                    _ => unreachable!(),
                }
            }
        }
        (out, integrity)
    }

    /// Number of actively-flipped cells in a media row.
    #[must_use]
    pub fn active_flip_count(&self, bank: BankId, media_row: u32) -> usize {
        self.flipped.get(&(bank, media_row)).map_or(0, Vec::len)
    }

    /// All media rows currently holding flipped cells.
    #[must_use]
    pub fn rows_with_active_flips(&self) -> Vec<(BankId, u32)> {
        let mut v: Vec<_> = self.flipped.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Patrol scrub (§2.5): walks all corrupted rows; corrects (rewrites)
    /// cells in words with a single flip, reports multi-bit words.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let keys: Vec<(BankId, u32)> = self.flipped.keys().copied().collect();
        for key in keys {
            let Some(active) = self.flipped.get_mut(&key) else {
                continue;
            };
            let mut per_word: HashMap<u32, u32> = HashMap::new();
            for &(byte, _, _) in active.iter() {
                *per_word.entry(byte / 8).or_default() += 1;
            }
            let (bank, row) = key;
            active.retain(|&(byte, _, _)| {
                if per_word[&(byte / 8)] == 1 {
                    report.corrected.push((bank, row, byte));
                    false
                } else {
                    report.uncorrectable.push((bank, row, byte));
                    true
                }
            });
            if active.is_empty() {
                self.flipped.remove(&key);
            }
        }
        report.corrected.sort_unstable();
        report.uncorrectable.sort_unstable();
        report.uncorrectable.dedup();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::mini_geometry;

    fn hammer_pair(dram: &mut DramSystem, bank: BankId, a: u32, b: u32, rounds: u32) {
        for _ in 0..rounds {
            dram.activate_row(bank, a, 0);
            dram.activate_row(bank, b, 0);
            dram.advance_ns(94); // ~2 * tRC
        }
    }

    fn no_trr() -> DramSystem {
        DramSystemBuilder::new(mini_geometry()).trr(0, 0).build()
    }

    #[test]
    fn double_sided_hammer_flips_sandwiched_victim() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        assert!(
            dram.flip_log().in_row_range(bank, 21, 22).count() > 0,
            "row 21 is double-sided hammered and must flip"
        );
    }

    #[test]
    fn flips_never_escape_the_subarray() {
        // §2.5/Fig. 1: rows in different subarrays are unaffected.
        let mut dram = no_trr();
        let bank = BankId(1);
        // Hammer at the subarray boundary (mini geometry: 256-row subarrays).
        hammer_pair(&mut dram, bank, 254, 256, 150_000);
        for f in dram.flip_log().all() {
            let sub_of_flip = f.media_row / 256;
            assert!(
                sub_of_flip == 254 / 256 || sub_of_flip == 256 / 256,
                "flip in row {} is outside both aggressors' subarrays",
                f.media_row
            );
            // Stronger: each flip must share a subarray with an aggressor.
        }
        // Victims 255 (same subarray as 254) may flip; row 256's neighbors
        // 257+ may flip; but aggressor 254 must never flip row 256's side
        // victims' subarray-crossing neighbors. Check the boundary cell:
        // row 255 can only have been flipped by aggressor 254 (same
        // subarray), which is legal; what must NOT happen is zero-distance
        // isolation violations, verified by the subarray check above.
        assert!(dram.stats().acts >= 300_000);
    }

    #[test]
    fn single_subarray_isolation_boundary_is_exact() {
        // Hammer only row 255 (last row of subarray 0). Row 256 (subarray 1)
        // is adjacent by media address but must never flip; row 254 may.
        let mut dram = no_trr();
        let bank = BankId(2);
        for _ in 0..400_000 {
            dram.activate_row(bank, 255, 0);
            dram.advance_ns(47);
        }
        assert_eq!(
            dram.flip_log().in_row_range(bank, 256, 259).count(),
            0,
            "no flips across the subarray boundary"
        );
    }

    #[test]
    fn refresh_prevents_slow_hammering() {
        // Below-threshold activation rates never flip: the 64 ms refresh
        // window clears disturbance first.
        let mut dram = no_trr();
        let bank = BankId(0);
        // ~6400 ACTs per aggressor per 64 ms window, far below threshold.
        for _ in 0..50_000 {
            dram.activate_row(bank, 40, 0);
            dram.activate_row(bank, 42, 0);
            dram.advance_ns(10_000);
        }
        assert!(dram.flip_log().is_empty(), "slow hammering must not flip");
    }

    #[test]
    fn trr_defends_against_simple_double_sided_hammering() {
        let mut trr = DramSystemBuilder::new(mini_geometry()).trr(4, 2).build();
        let bank = BankId(0);
        hammer_pair(&mut trr, bank, 20, 22, 120_000);
        assert!(
            trr.flip_log().is_empty(),
            "TRR should catch a plain double-sided pattern"
        );
    }

    #[test]
    fn many_sided_pattern_defeats_trr() {
        // TRRespass/Blacksmith-style: more aggressors than tracker slots.
        let mut dram = DramSystemBuilder::new(mini_geometry()).trr(4, 2).build();
        let bank = BankId(0);
        let aggressors: Vec<u32> = (0..12).map(|i| 10 + i * 2).collect();
        for _ in 0..120_000 {
            for &a in &aggressors {
                dram.activate_row(bank, a, 0);
            }
            dram.advance_ns(47 * aggressors.len() as u64);
        }
        assert!(
            !dram.flip_log().is_empty(),
            "a 12-sided pattern must defeat the 4-entry TRR"
        );
    }

    #[test]
    fn rowpress_amplifies_disturbance() {
        // Same ACT count, long open time: flips appear sooner (§2.5).
        let mut plain = no_trr();
        let mut pressed = no_trr();
        let bank = BankId(0);
        for _ in 0..30_000 {
            plain.activate_row(bank, 20, 0);
            plain.activate_row(bank, 22, 0);
            plain.advance_ns(94);
            pressed.activate_row(bank, 20, 3_000);
            pressed.activate_row(bank, 22, 3_000);
            pressed.advance_ns(94);
        }
        assert!(
            pressed.flip_log().len() > plain.flip_log().len(),
            "RowPress (long tAggOn) must increase flips: pressed={} plain={}",
            pressed.flip_log().len(),
            plain.flip_log().len()
        );
    }

    #[test]
    fn writes_restore_flipped_cells() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        let rows: Vec<u32> = dram
            .rows_with_active_flips()
            .iter()
            .filter(|(b, _)| *b == bank)
            .map(|&(_, r)| r)
            .collect();
        assert!(!rows.is_empty());
        let row_bytes = dram.geometry().row_bytes as usize;
        for r in rows {
            dram.write_row(bank, r, 0, &vec![0u8; row_bytes]);
            assert_eq!(dram.active_flip_count(bank, r), 0);
        }
    }

    #[test]
    fn read_applies_ecc() {
        let mut dram = no_trr();
        let bank = BankId(0);
        dram.write_row(bank, 21, 0, &[0xAAu8; 64]);
        hammer_pair(&mut dram, bank, 20, 22, 200_000);
        let n_flips = dram.active_flip_count(bank, 21);
        assert!(n_flips > 0);
        let (_data, integrity) = dram.read_row(bank, 21, 0, 8192);
        match integrity {
            ReadIntegrity::Corrected(_)
            | ReadIntegrity::Uncorrectable(_)
            | ReadIntegrity::SilentlyCorrupt(_) => {}
            ReadIntegrity::Clean => panic!("flipped row read back clean"),
        }
    }

    #[test]
    fn scrub_corrects_single_bit_words_and_reports_locations() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 30, 32, 120_000);
        assert!(!dram.rows_with_active_flips().is_empty());
        let report = dram.scrub();
        assert!(!report.corrected.is_empty() || !report.uncorrectable.is_empty());
        // After a scrub, another scrub finds nothing new to correct.
        let again = dram.scrub();
        assert!(again.corrected.is_empty());
    }

    #[test]
    fn repaired_rows_hammer_at_their_spare_location() {
        // A media row repaired to a spare in a different subarray disturbs
        // neighbors of the *spare*, not of the media address (§6).
        let mut repairs = RepairMap::new();
        let bank = BankId(0);
        // Media row 20 backed by internal row 600 (subarray 2 in mini).
        repairs.insert(bank, 20, 600);
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .trr(0, 0)
            .repairs(repairs)
            .internal_map(InternalMapConfig::identity())
            .build();
        for _ in 0..400_000 {
            dram.activate_row(bank, 20, 0);
            dram.advance_ns(47);
        }
        let near_media: usize = dram.flip_log().in_row_range(bank, 18, 23).count();
        let near_spare: usize = dram.flip_log().in_row_range(bank, 598, 603).count();
        assert_eq!(near_media, 0, "no disturbance at the disused media rows");
        assert!(near_spare > 0, "disturbance appears around the spare row");
    }

    #[test]
    fn profiles_map_to_dimm_slots_round_robin() {
        use dram_addr::skylake_geometry;
        let dram = DramSystemBuilder::new(skylake_geometry())
            .profiles(DimmProfile::evaluation_dimms())
            .build();
        // Socket 0 channel 0 -> profile A; channel 5 -> profile F.
        let g = *dram.geometry();
        let mut seen = Vec::new();
        for flat in 0..g.banks_per_socket() {
            let name = dram.profile_for(BankId(flat)).name;
            if !seen.contains(&name) {
                seen.push(name);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, ["A", "B", "C", "D", "E", "F"]);
    }

    #[test]
    fn invulnerable_profile_never_flips() {
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .profiles(vec![DimmProfile::invulnerable()])
            .trr(0, 0)
            .build();
        hammer_pair(&mut dram, BankId(0), 20, 22, 50_000);
        assert!(dram.flip_log().is_empty());
    }

    #[test]
    fn patrol_scrub_corrects_over_time() {
        // Like §7.1's 24 h soak: automatic scrubbing repairs single-bit
        // damage as simulated time passes.
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .trr(0, 0)
            .patrol_scrub(10_000_000) // every 10 ms of simulated time
            .build();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        // ~11 ms of hammering elapsed; push past the next scrub point.
        dram.advance_ns(20_000_000);
        assert!(
            !dram.scrub_history().corrected.is_empty(),
            "patrol scrub must have corrected something"
        );
        // Single-bit (per word) corruption is gone from the cells.
        let corrected = dram.scrub();
        assert!(corrected.corrected.is_empty(), "nothing left to correct");
    }

    #[test]
    fn flips_are_data_pattern_dependent() {
        // True cells flip only 1 -> 0; anti cells only 0 -> 1. Striping a
        // victim with all-ones vs all-zeros must select disjoint flip sets
        // at the same cell positions.
        let run = |fill: u8| {
            let mut dram = no_trr();
            let bank = BankId(0);
            let row_bytes = dram.geometry().row_bytes as usize;
            dram.write_row(bank, 21, 0, &vec![fill; row_bytes]);
            hammer_pair(&mut dram, bank, 20, 22, 200_000);
            let flips: Vec<(u32, u8)> = dram
                .flip_log()
                .in_row_range(bank, 21, 22)
                .map(|f| (f.byte, f.bit))
                .collect();
            flips
        };
        let ones = run(0xFF);
        let zeros = run(0x00);
        assert!(!ones.is_empty(), "all-ones victims expose true cells");
        assert!(!zeros.is_empty(), "all-zero victims expose anti cells");
        for f in &ones {
            assert!(!zeros.contains(f), "cell {f:?} flipped in both polarities");
        }
    }

    #[test]
    fn pattern_independence_can_be_disabled() {
        // With the option off, both fills flip the same cells.
        let run = |fill: u8| {
            let mut dram = DramSystemBuilder::new(mini_geometry())
                .trr(0, 0)
                .pattern_dependent(false)
                .build();
            let bank = BankId(0);
            let row_bytes = dram.geometry().row_bytes as usize;
            dram.write_row(bank, 21, 0, &vec![fill; row_bytes]);
            hammer_pair(&mut dram, bank, 20, 22, 150_000);
            dram.flip_log()
                .in_row_range(bank, 21, 22)
                .map(|f| (f.byte, f.bit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0xFF), run(0x00));
    }

    #[test]
    fn time_advances_and_refresh_steps_accumulate() {
        let mut dram = no_trr();
        dram.activate_row(BankId(0), 0, 0); // materialize a bank
        dram.advance_ns(REFRESH_WINDOW_NS);
        assert_eq!(dram.stats().ref_steps, REFS_PER_WINDOW as u64);
        assert_eq!(dram.now_ns(), REFRESH_WINDOW_NS);
    }
}
