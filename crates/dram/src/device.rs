//! The top-level DRAM system: all banks, data, disturbance, refresh, ECC.
//!
//! The activation path here is tier-0 hot: hammer patterns activate the same
//! few aggressor rows millions of times per refresh window. Supporting state
//! is therefore flat (geometry-ordinal `Vec`s instead of hashed maps, a
//! precomputed per-bank profile copy, reusable scratch buffers), and the
//! device offers two equivalent activation entry points:
//!
//! - [`DramSystem::activate_row`] / [`DramSystem::activate`]: the per-ACT
//!   *reference* path, O(blast radius) per activation;
//! - [`DramSystem::activate_burst`]: the *coalesced ledger* path, applying a
//!   run of same-row activations in O(blast radius) total. Disturbance
//!   between refresh events is linear in the activation count, so a burst
//!   can accumulate `count * w` per victim and emit every newly-crossed weak
//!   cell in one ordered sweep; `TrrTracker::observe_n` replays the sampler
//!   state exactly. The equivalence proptests in
//!   `crates/dram/tests/burst_equivalence.rs` pin the two paths to
//!   bit-identical flips, stats, and telemetry.

use crate::bank::{side_idx, BankState};
use crate::ecc::{classify, EccMode, ReadIntegrity};
use crate::flip::{BitFlip, FlipLog, WeakCell};
use crate::profile::DimmProfile;
use crate::rowmap::RowMap;
use crate::{REFRESH_WINDOW_NS, REFS_PER_WINDOW};
use dram_addr::transform::media_row_from_internal;
use dram_addr::{
    internal_row, BankId, Geometry, InternalMapConfig, MediaAddress, RankSide, RepairMap,
};

/// Running counters of device-level events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DramStats {
    /// Total row activations.
    pub acts: u64,
    /// Distributed REF steps executed.
    pub ref_steps: u64,
    /// Suspected-aggressor rows served by TRR (neighbor refreshes issued
    /// from the tracker, summed over both rank sides).
    pub trr_triggers: u64,
    /// Words corrected by ECC during reads.
    pub corrected_words: u64,
    /// Uncorrectable (2-bit) words encountered during reads.
    pub uncorrectable_words: u64,
    /// Words where ECC was silently defeated during reads.
    pub silent_words: u64,
}

/// Result of a patrol-scrub pass (§2.5; consumed by Copy-on-Flip-style
/// defenses and the containment experiments).
#[derive(Debug, Default, Clone)]
pub struct ScrubReport {
    /// Corrected single-bit flips, as `(bank, media row, byte)` locations.
    pub corrected: Vec<(BankId, u32, u32)>,
    /// Locations with multi-bit (uncorrectable) damage, left in place.
    pub uncorrectable: Vec<(BankId, u32, u32)>,
}

/// Flipped cells of one media row: `(byte, bit, side)` tuples.
type FlippedCells = Vec<(u32, u8, RankSide)>;

/// Packs a `(bank, row)` coordinate into a [`RowMap`] key.
#[inline]
#[must_use]
fn row_key(bank: BankId, row: u32) -> u64 {
    (bank.0 as u64) << 32 | row as u64
}

/// Unpacks a [`row_key`] back into `(bank, row)`.
#[inline]
#[must_use]
fn unpack_row_key(key: u64) -> (BankId, u32) {
    (BankId((key >> 32) as u32), key as u32)
}

/// Smallest activation index `j` in `[1, count]` at which a victim whose
/// disturbance evolves as `base + w * (n0 + j)` reaches `threshold`.
///
/// The caller guarantees `w > 0` and that the burst's final disturbance
/// crosses the threshold. The closed-form estimate is fixed up by walking
/// against the *exact* float evaluation the per-ACT reference path performs,
/// so the returned index is bit-for-bit the act on which the reference path
/// would have emitted the flip.
#[inline]
fn first_crossing(base: f64, w: f64, n0: u64, count: u64, threshold: f64) -> u64 {
    let val = |j: u64| base + w * ((n0 + j) as f64);
    debug_assert!(w > 0.0);
    debug_assert!(val(count) >= threshold, "caller checked the final value");
    let est = ((threshold - base) / w - n0 as f64).ceil();
    let mut j = if est.is_finite() && est >= 1.0 {
        (est as u64).min(count)
    } else {
        1
    };
    while j > 1 && val(j - 1) >= threshold {
        j -= 1;
    }
    while val(j) < threshold {
        j += 1;
    }
    j
}

/// Builder for [`DramSystem`].
#[derive(Debug, Clone)]
pub struct DramSystemBuilder {
    geometry: Geometry,
    internal: InternalMapConfig,
    repairs: RepairMap,
    profiles: Vec<DimmProfile>,
    ecc: EccMode,
    trr_capacity: usize,
    trr_served: usize,
    pattern_dependent: bool,
    scrub_interval_ns: u64,
}

impl DramSystemBuilder {
    /// Starts a builder for the given geometry with evaluation defaults:
    /// DDR4 mirroring+inversion, no repairs, DIMM profile "C" on every slot,
    /// SEC-DED ECC, and a 4-entry TRR serving 2 rows per REF.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            internal: InternalMapConfig::default(),
            repairs: RepairMap::new(),
            profiles: vec![DimmProfile::default_eval()],
            ecc: EccMode::SecDed,
            trr_capacity: 4,
            trr_served: 2,
            pattern_dependent: true,
            scrub_interval_ns: 0,
        }
    }

    /// Sets the DIMM-internal address transformations (§6).
    #[must_use]
    pub fn internal_map(mut self, cfg: InternalMapConfig) -> Self {
        self.internal = cfg;
        self
    }

    /// Installs a row-repair table (§6).
    #[must_use]
    pub fn repairs(mut self, repairs: RepairMap) -> Self {
        self.repairs = repairs;
        self
    }

    /// Assigns DIMM profiles round-robin across the machine's DIMM slots.
    ///
    /// With the evaluation geometry (6 DIMMs/socket) and the six Table 3
    /// profiles, socket 0's DIMMs are exactly A-F.
    #[must_use]
    pub fn profiles(mut self, profiles: Vec<DimmProfile>) -> Self {
        assert!(!profiles.is_empty(), "at least one DIMM profile required");
        self.profiles = profiles;
        self
    }

    /// Sets the ECC mode.
    #[must_use]
    pub fn ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Configures the per-bank TRR tracker (0 capacity disables TRR).
    #[must_use]
    pub fn trr(mut self, capacity: usize, served_per_ref: usize) -> Self {
        self.trr_capacity = capacity;
        self.trr_served = served_per_ref;
        self
    }

    /// Enables/disables data-pattern-dependent flips (true/anti cells).
    /// On (the default), only charged cells leak; experiments with
    /// all-zero victims see roughly half the flips of striped victims.
    #[must_use]
    pub fn pattern_dependent(mut self, on: bool) -> Self {
        self.pattern_dependent = on;
        self
    }

    /// Enables automatic ECC patrol scrubbing every `interval_ns` of
    /// simulated time (0 disables; servers typically scrub the full memory
    /// over hours — the §7.1 experiment relies on patrol scrub to catch
    /// any undetected flips).
    #[must_use]
    pub fn patrol_scrub(mut self, interval_ns: u64) -> Self {
        self.scrub_interval_ns = interval_ns;
        self
    }

    /// Builds the DRAM system.
    ///
    /// Per-bank lookups consulted on every activation — the DIMM profile and
    /// the rank — are precomputed here into geometry-ordinal flat arrays so
    /// the hot path never re-derives them from division chains.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`Geometry::validate`]).
    #[must_use]
    pub fn build(self) -> DramSystem {
        self.geometry.validate().expect("valid geometry");
        let total_banks = self.geometry.total_banks() as usize;
        let mut profile_of_bank = Vec::with_capacity(total_banks);
        let mut rank_of_bank = Vec::with_capacity(total_banks);
        for flat in 0..total_banks as u32 {
            let m = BankId(flat).to_media(&self.geometry);
            let dimm_idx = (m.socket as usize * self.geometry.channels_per_socket as usize
                + m.channel as usize)
                * self.geometry.dimms_per_channel as usize
                + m.dimm as usize;
            profile_of_bank.push(self.profiles[dimm_idx % self.profiles.len()]);
            rank_of_bank.push(m.rank);
        }
        let mut repair_inverse = RowMap::new();
        for (&(bank, media_row), &target) in self.repairs.iter() {
            *repair_inverse.get_or_insert_with(row_key(bank, target), || media_row) = media_row;
        }
        let trefi_ns = REFRESH_WINDOW_NS / REFS_PER_WINDOW as u64;
        DramSystem {
            geometry: self.geometry,
            internal: self.internal,
            repairs: self.repairs,
            repair_inverse,
            profile_of_bank,
            rank_of_bank,
            ecc: self.ecc,
            trr_capacity: self.trr_capacity,
            trr_served: self.trr_served,
            pattern_dependent: self.pattern_dependent,
            scrub_interval_ns: self.scrub_interval_ns,
            next_scrub_ns: self.scrub_interval_ns.max(1),
            scrub_history: ScrubReport::default(),
            banks: (0..total_banks).map(|_| None).collect(),
            touched_banks: Vec::new(),
            data: RowMap::new(),
            flipped: RowMap::new(),
            flip_log: FlipLog::new(),
            now_ns: 0,
            next_ref_ns: trefi_ns,
            trefi_ns,
            stats: DramStats::default(),
            scratch_flips: Vec::new(),
            scratch_read: Vec::new(),
            scratch_counts: Vec::new(),
        }
    }
}

/// The machine's DRAM: every bank of every DIMM, with disturbance physics.
///
/// # Examples
///
/// Hammering two aggressor rows past the threshold flips bits in victims
/// between them, but never outside their subarray:
///
/// ```
/// use dram::{DramSystem, DramSystemBuilder};
/// use dram_addr::{mini_geometry, BankId};
///
/// let mut dram = DramSystemBuilder::new(mini_geometry()).trr(0, 0).build();
/// let bank = BankId(0);
/// for _ in 0..200_000 {
///     dram.activate_row(bank, 10, 0);
///     dram.activate_row(bank, 12, 0);
///     dram.advance_ns(94);
/// }
/// assert!(dram.flip_log().len() > 0);
/// for f in dram.flip_log().all() {
///     assert!(f.media_row / 256 == 10 / 256, "flip escaped the subarray");
/// }
/// ```
#[derive(Debug)]
pub struct DramSystem {
    geometry: Geometry,
    internal: InternalMapConfig,
    repairs: RepairMap,
    /// Internal spare row → the media row whose data lives there, keyed by
    /// [`row_key`].
    repair_inverse: RowMap<u32>,
    /// DIMM profile of each bank, indexed by flat bank ordinal. A POD copy
    /// per bank so the activation path reads one cache line instead of
    /// re-deriving the DIMM slot from division chains.
    profile_of_bank: Vec<DimmProfile>,
    /// Rank of each bank, indexed by flat bank ordinal.
    rank_of_bank: Vec<u16>,
    ecc: EccMode,
    trr_capacity: usize,
    trr_served: usize,
    pattern_dependent: bool,
    scrub_interval_ns: u64,
    next_scrub_ns: u64,
    scrub_history: ScrubReport,
    /// Per-bank disturbance state, indexed by flat bank ordinal;
    /// materialized on first activation.
    banks: Vec<Option<BankState>>,
    /// Ordinals of materialized banks in first-touch order: the distributed
    /// REF sweep visits exactly these (untouched banks hold no victim state).
    touched_banks: Vec<u32>,
    /// Written row data, media coordinates (keyed by [`row_key`]); unwritten
    /// rows read as zeros.
    data: RowMap<Box<[u8]>>,
    /// Currently-flipped cells per media row (keyed by [`row_key`]; entries
    /// may be empty — [`RowMap`] has no removal).
    flipped: RowMap<FlippedCells>,
    flip_log: FlipLog,
    now_ns: u64,
    next_ref_ns: u64,
    trefi_ns: u64,
    stats: DramStats,
    /// Reusable flip-collection buffer for the activation paths:
    /// `(act index, side, internal victim, cell)`.
    scratch_flips: Vec<(u64, RankSide, u32, WeakCell)>,
    /// Reusable in-range flip buffer for reads: `(byte, bit)`.
    scratch_read: Vec<(u32, u8)>,
    /// Reusable per-word flip-count buffer for reads.
    scratch_counts: Vec<u32>,
}

impl DramSystem {
    /// Convenience constructor with all defaults for `geometry`.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        DramSystemBuilder::new(geometry).build()
    }

    /// The geometry this system was built with.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Device-event counters.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// The historical log of every bit flip that ever occurred.
    #[must_use]
    pub fn flip_log(&self) -> &FlipLog {
        &self.flip_log
    }

    /// Clears the historical flip log (active cell corruption is untouched).
    pub fn clear_flip_log(&mut self) {
        self.flip_log.clear();
    }

    /// Current simulated time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The DIMM profile governing a bank's cells.
    #[must_use]
    pub fn profile_for(&self, bank: BankId) -> &DimmProfile {
        &self.profile_of_bank[bank.0 as usize]
    }

    /// Advances simulated time, executing any distributed REF steps that
    /// come due (one step per tREFI; a full pass refreshes every row within
    /// the 64 ms window).
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns += ns;
        while self.next_ref_ns <= self.now_ns {
            self.refresh_step();
            self.next_ref_ns += self.trefi_ns;
        }
        if self.scrub_interval_ns > 0 {
            while self.next_scrub_ns <= self.now_ns {
                let report = self.scrub();
                self.scrub_history.corrected.extend(report.corrected);
                self.scrub_history
                    .uncorrectable
                    .extend(report.uncorrectable);
                self.next_scrub_ns += self.scrub_interval_ns;
            }
        }
    }

    /// Accumulated results of automatic patrol scrubs (empty when patrol
    /// scrubbing is disabled).
    #[must_use]
    pub fn scrub_history(&self) -> &ScrubReport {
        &self.scrub_history
    }

    /// Adds this device's event totals into `reg`: activation/refresh/TRR
    /// counts, ECC outcomes, patrol-scrub results, and the distribution of
    /// active flips per subarray group (the containment quantity Table 3
    /// keys on).
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("acts").add(self.stats.acts);
        reg.counter("ref_steps").add(self.stats.ref_steps);
        reg.counter("trr_triggers").add(self.stats.trr_triggers);
        reg.counter("ecc_corrected_words")
            .add(self.stats.corrected_words);
        reg.counter("ecc_uncorrectable_words")
            .add(self.stats.uncorrectable_words);
        reg.counter("ecc_silent_words").add(self.stats.silent_words);
        reg.counter("scrub_corrected")
            .add(self.scrub_history.corrected.len() as u64);
        reg.counter("scrub_uncorrectable")
            .add(self.scrub_history.uncorrectable.len() as u64);
        reg.counter("flips_active").add(self.flip_log.len() as u64);
        // Group flips by (bank, subarray) with a sort + run-length count.
        let mut groups: Vec<(BankId, u32)> = self
            .flip_log
            .all()
            .iter()
            .map(|f| (f.bank, self.geometry.subarray_of_row(f.media_row)))
            .collect();
        groups.sort_unstable();
        let mut distinct = 0u64;
        let mut i = 0;
        let per_group_histo = reg.histo("flips_per_subarray_group");
        let mut run_lengths = Vec::new();
        while i < groups.len() {
            let mut j = i + 1;
            while j < groups.len() && groups[j] == groups[i] {
                j += 1;
            }
            distinct += 1;
            run_lengths.push((j - i) as u64);
            i = j;
        }
        reg.counter("subarray_groups_with_flips").add(distinct);
        for n in run_lengths {
            per_group_histo.observe(n);
        }
    }

    /// Executes one distributed REF step across all active banks.
    fn refresh_step(&mut self) {
        self.stats.ref_steps += 1;
        let chunk = (self.geometry.rows_per_bank / REFS_PER_WINDOW).max(1);
        let rows_per_bank = self.geometry.rows_per_bank;
        for ti in 0..self.touched_banks.len() {
            let ord = self.touched_banks[ti] as usize;
            let bank = self.banks[ord].as_mut().expect("touched bank exists");
            let start = bank.refresh_ptr;
            for i in 0..chunk {
                bank.refresh_row((start + i) % rows_per_bank);
            }
            bank.refresh_ptr = (start + chunk) % rows_per_bank;
            // TRR: serve suspected aggressors by refreshing their neighbors.
            for side in 0..2u8 {
                let served = bank.trr[side as usize].on_refresh();
                self.stats.trr_triggers += served.len() as u64;
                for agg in served {
                    for d in 1..=2u32 {
                        if agg >= d {
                            bank.refresh_half_row(side, agg - d);
                        }
                        if agg + d < rows_per_bank {
                            bank.refresh_half_row(side, agg + d);
                        }
                    }
                }
            }
        }
    }

    /// Activates a row given its full media address (§2.4).
    ///
    /// `extra_open_ns` is how long the row stays open beyond the nominal
    /// access time; long open times add RowPress disturbance (§2.5).
    pub fn activate(&mut self, media: &MediaAddress, extra_open_ns: u64) {
        let bank = media.global_bank(&self.geometry);
        self.activate_inner(bank, media.row, media.rank, extra_open_ns);
    }

    /// Activates `media_row` of `bank` (rank inferred from the bank id).
    pub fn activate_row(&mut self, bank: BankId, media_row: u32, extra_open_ns: u64) {
        let rank = self.rank_of_bank[bank.0 as usize];
        self.activate_inner(bank, media_row, rank, extra_open_ns);
    }

    /// Applies `count` back-to-back activations of `media_row` in one
    /// O(blast radius) sweep (the coalesced activation ledger).
    ///
    /// Produces bit-for-bit the flips, stats, and bank state of `count`
    /// sequential [`DramSystem::activate_row`] calls: disturbance
    /// accumulates as `count * w` per victim in segment form, every
    /// newly-crossed weak cell is emitted at its exact crossing act (in
    /// per-ACT order), and TRR sampler state replays via
    /// [`crate::TrrTracker::observe_n`].
    ///
    /// Activations are instantaneous (they never advance simulated time), so
    /// a burst can never *internally* cross a refresh; the contract is that
    /// callers must split activation runs around `advance_ns` calls — i.e. a
    /// burst stands for a run of ACTs with no intervening time advance.
    /// `count = 0` is a no-op (no bank state is materialized).
    pub fn activate_burst(&mut self, bank: BankId, media_row: u32, count: u64, extra_open_ns: u64) {
        debug_assert!(media_row < self.geometry.rows_per_bank);
        debug_assert!(
            self.now_ns < self.next_ref_ns,
            "a burst must not span a refresh boundary: split runs around advance_ns"
        );
        if count == 0 {
            return;
        }
        self.stats.acts += count;
        let rank = self.rank_of_bank[bank.0 as usize];
        let profile = self.profile_of_bank[bank.0 as usize];
        let geometry = self.geometry;
        let internal_cfg = self.internal;
        let half = (geometry.row_bytes / 2) as u32;
        let sub_rows = geometry.rows_per_subarray;
        let rows_per_bank = geometry.rows_per_bank;
        let rowpress = profile.rowpress_per_us * extra_open_ns as f64 / 1000.0;
        let repaired_target = if self.repairs.is_repaired(bank, media_row) {
            Some(self.repairs.resolve(bank, media_row))
        } else {
            None
        };

        let mut new_flips = std::mem::take(&mut self.scratch_flips);
        new_flips.clear();
        {
            let slot = &mut self.banks[bank.0 as usize];
            if slot.is_none() {
                *slot = Some(BankState::new(self.trr_capacity, self.trr_served));
                self.touched_banks.push(bank.0);
            }
            let state = slot.as_mut().expect("just materialized");
            state.acts += count;
            for side in RankSide::BOTH {
                let aggressor = repaired_target
                    .unwrap_or_else(|| internal_row(media_row, rank, side, internal_cfg));
                state.trr[side_idx(side) as usize].observe_n(aggressor, count);
                // Every ACT refreshes the activated row itself; after the
                // run, only the last refresh matters.
                state.refresh_half_row(side_idx(side), aggressor);
                let sub = aggressor / sub_rows;
                for d in 1..=profile.weights.radius() {
                    let w = profile.weights.at(d) * (1.0 + rowpress);
                    if w <= 0.0 {
                        continue;
                    }
                    let lo = aggressor.checked_sub(d);
                    let hi = if aggressor + d < rows_per_bank {
                        Some(aggressor + d)
                    } else {
                        None
                    };
                    for v in [lo, hi].into_iter().flatten() {
                        if v / sub_rows != sub {
                            continue; // Subarray isolation (Fig. 1).
                        }
                        let vs = state.victim_mut(&profile, bank.0, side, v, half);
                        let (base, n0) = vs.add(w, count);
                        let final_disturb = base + w * ((n0 + count) as f64);
                        while vs.next_cell < vs.cells.len()
                            && vs.cells[vs.next_cell].threshold <= final_disturb
                        {
                            let cell = vs.cells[vs.next_cell];
                            let j = first_crossing(base, w, n0, count, cell.threshold);
                            vs.next_cell += 1;
                            new_flips.push((j, side, v, cell));
                        }
                    }
                }
            }
        }
        // Restore per-ACT emission order: ascending crossing act, ties kept
        // in (side, distance, lo/hi, cell) collection order by stability.
        new_flips.sort_by_key(|f| f.0);
        for &(_, side, internal_victim, cell) in &new_flips {
            self.apply_flip(bank, rank, side, internal_victim, cell);
        }
        new_flips.clear();
        self.scratch_flips = new_flips;
    }

    /// The per-ACT reference path (see [`DramSystem::activate_burst`] for
    /// the coalesced equivalent).
    fn activate_inner(&mut self, bank: BankId, media_row: u32, rank: u16, extra_open_ns: u64) {
        debug_assert!(media_row < self.geometry.rows_per_bank);
        self.stats.acts += 1;
        let profile = self.profile_of_bank[bank.0 as usize];
        let geometry = self.geometry;
        let internal_cfg = self.internal;
        let half = (geometry.row_bytes / 2) as u32;
        let sub_rows = geometry.rows_per_subarray;
        let rows_per_bank = geometry.rows_per_bank;
        let rowpress = profile.rowpress_per_us * extra_open_ns as f64 / 1000.0;
        let repaired_target = if self.repairs.is_repaired(bank, media_row) {
            Some(self.repairs.resolve(bank, media_row))
        } else {
            None
        };

        // Collect flips first to avoid borrowing `self` inside the loop.
        let mut new_flips = std::mem::take(&mut self.scratch_flips);
        new_flips.clear();
        {
            let slot = &mut self.banks[bank.0 as usize];
            if slot.is_none() {
                *slot = Some(BankState::new(self.trr_capacity, self.trr_served));
                self.touched_banks.push(bank.0);
            }
            let state = slot.as_mut().expect("just materialized");
            state.acts += 1;
            for side in RankSide::BOTH {
                // The internal row whose cells are physically activated: a
                // repaired row's charge lives at its spare (§6); otherwise
                // the DDR4/vendor transforms apply.
                let aggressor = repaired_target
                    .unwrap_or_else(|| internal_row(media_row, rank, side, internal_cfg));
                state.trr[side_idx(side) as usize].observe(aggressor);
                // An ACT refreshes the activated row itself.
                state.refresh_half_row(side_idx(side), aggressor);
                // Disturb same-subarray neighbors (§2.5): rows in other
                // subarrays are electrically isolated.
                let sub = aggressor / sub_rows;
                for d in 1..=profile.weights.radius() {
                    let w = profile.weights.at(d) * (1.0 + rowpress);
                    if w <= 0.0 {
                        continue;
                    }
                    let lo = aggressor.checked_sub(d);
                    let hi = if aggressor + d < rows_per_bank {
                        Some(aggressor + d)
                    } else {
                        None
                    };
                    for v in [lo, hi].into_iter().flatten() {
                        if v / sub_rows != sub {
                            continue; // Subarray isolation (Fig. 1).
                        }
                        let vs = state.victim_mut(&profile, bank.0, side, v, half);
                        vs.add(w, 1);
                        let disturb = vs.disturb();
                        while vs.next_cell < vs.cells.len()
                            && vs.cells[vs.next_cell].threshold <= disturb
                        {
                            let cell = vs.cells[vs.next_cell];
                            vs.next_cell += 1;
                            new_flips.push((1, side, v, cell));
                        }
                    }
                }
            }
        }
        for &(_, side, internal_victim, cell) in &new_flips {
            self.apply_flip(bank, rank, side, internal_victim, cell);
        }
        new_flips.clear();
        self.scratch_flips = new_flips;
    }

    /// Applies one flip at an internal victim location, translating back to
    /// media coordinates. Honors cell polarity: only a charged cell (stored
    /// bit matching the cell's vulnerable state) can flip.
    fn apply_flip(
        &mut self,
        bank: BankId,
        rank: u16,
        side: RankSide,
        internal_victim: u32,
        cell: WeakCell,
    ) {
        let (byte_in_half, bit) = (cell.byte_in_half, cell.bit);
        // Whose data lives at this internal row? A repair spare holds the
        // repaired media row's data; otherwise invert the transforms. Flips
        // landing in a repaired-away (disused) defective row hit no data.
        let media_row = match self.repair_inverse.get(row_key(bank, internal_victim)) {
            Some(&m) => m,
            None => {
                let m = media_row_from_internal(internal_victim, rank, side, self.internal);
                if self.repairs.is_repaired(bank, m) {
                    return;
                }
                m
            }
        };
        let half = (self.geometry.row_bytes / 2) as u32;
        let byte = match side {
            RankSide::A => byte_in_half,
            RankSide::B => half + byte_in_half,
        };
        // Pattern dependence: the stored bit must be in the cell's charged
        // state to leak. (Stored = written data XOR any active flip.)
        if self.pattern_dependent {
            let stored = self
                .data
                .get(row_key(bank, media_row))
                .map_or(0, |row| row[byte as usize]);
            let already = self
                .flipped
                .get(row_key(bank, media_row))
                .is_some_and(|v| v.contains(&(byte, bit, side)));
            let current = ((stored >> bit) & 1) ^ u8::from(already);
            if current != cell.polarity.vulnerable_bit() {
                return;
            }
        }
        let key = (byte, bit, side);
        let active = self
            .flipped
            .get_or_insert_with(row_key(bank, media_row), Vec::new);
        if !active.contains(&key) {
            active.push(key);
        }
        self.flip_log.record(BitFlip {
            bank,
            media_row,
            side,
            byte,
            bit,
        });
    }

    /// Writes bytes into a media row, restoring correct charge over the
    /// written region (overlapping flips are cleared).
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the row.
    pub fn write_row(&mut self, bank: BankId, media_row: u32, offset: u32, bytes: &[u8]) {
        let row_bytes = self.geometry.row_bytes as usize;
        let end = offset as usize + bytes.len();
        assert!(end <= row_bytes, "write beyond row end");
        let row = self.data.get_or_insert_with(row_key(bank, media_row), || {
            // lint:allow(hot-alloc) — first write to a row allocates its backing store once
            vec![0u8; row_bytes].into_boxed_slice()
        });
        row[offset as usize..end].copy_from_slice(bytes);
        if let Some(active) = self.flipped.get_mut(row_key(bank, media_row)) {
            // RowMap has no removal; an emptied list simply stays empty.
            active.retain(|&(b, _, _)| (b as usize) < offset as usize || b as usize >= end);
        }
    }

    /// Reads bytes from a media row into `out` (cleared first), applying
    /// active flips and ECC, without allocating.
    ///
    /// Returns the integrity classification; `out` holds the data, corrected
    /// where ECC can correct. This is the hot-path form of
    /// [`DramSystem::read_row`] — block-copy loops (guest slices, migration)
    /// call it once per cache line with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the row.
    pub fn read_row_into(
        &mut self,
        bank: BankId,
        media_row: u32,
        offset: u32,
        len: u32,
        out: &mut Vec<u8>,
    ) -> ReadIntegrity {
        let row_bytes = self.geometry.row_bytes as usize;
        let end = offset as usize + len as usize;
        assert!(end <= row_bytes, "read beyond row end");
        out.clear();
        match self.data.get(row_key(bank, media_row)) {
            Some(row) => out.extend_from_slice(&row[offset as usize..end]),
            None => out.resize(len as usize, 0),
        }
        // Collect in-range flips, then count them per 64-bit word via a
        // sort + run-length pass (same multiset `classify` always saw).
        let mut in_range = std::mem::take(&mut self.scratch_read);
        in_range.clear();
        if let Some(active) = self.flipped.get(row_key(bank, media_row)) {
            for &(byte, bit, _) in active {
                if (byte as usize) >= offset as usize && (byte as usize) < end {
                    in_range.push((byte, bit));
                }
            }
        }
        let mut counts = std::mem::take(&mut self.scratch_counts);
        counts.clear();
        in_range.sort_unstable_by_key(|&(byte, _)| byte / 8);
        let mut i = 0;
        while i < in_range.len() {
            let word = in_range[i].0 / 8;
            let mut j = i + 1;
            while j < in_range.len() && in_range[j].0 / 8 == word {
                j += 1;
            }
            counts.push((j - i) as u32);
            i = j;
        }
        let integrity = classify(self.ecc, &counts);
        match integrity {
            ReadIntegrity::Clean => {}
            ReadIntegrity::Corrected(n) => {
                // ECC corrects the returned data (cells stay flipped).
                self.stats.corrected_words += n as u64;
            }
            other => {
                // Data returned with the corruption applied.
                for &(byte, bit) in &in_range {
                    out[byte as usize - offset as usize] ^= 1 << bit;
                }
                match other {
                    ReadIntegrity::Uncorrectable(n) => self.stats.uncorrectable_words += n as u64,
                    ReadIntegrity::SilentlyCorrupt(n) => self.stats.silent_words += n as u64,
                    _ => unreachable!(),
                }
            }
        }
        in_range.clear();
        self.scratch_read = in_range;
        counts.clear();
        self.scratch_counts = counts;
        integrity
    }

    /// Reads bytes from a media row, applying active flips and ECC.
    ///
    /// Returns the data (corrected where ECC can correct) and the integrity
    /// classification of the access. Allocates the returned buffer; hot
    /// loops should prefer [`DramSystem::read_row_into`].
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the row.
    pub fn read_row(
        &mut self,
        bank: BankId,
        media_row: u32,
        offset: u32,
        len: u32,
    ) -> (Vec<u8>, ReadIntegrity) {
        let mut out = Vec::with_capacity(len as usize);
        let integrity = self.read_row_into(bank, media_row, offset, len, &mut out);
        (out, integrity)
    }

    /// Number of actively-flipped cells in a media row.
    #[must_use]
    pub fn active_flip_count(&self, bank: BankId, media_row: u32) -> usize {
        self.flipped
            .get(row_key(bank, media_row))
            .map_or(0, Vec::len)
    }

    /// All media rows currently holding flipped cells.
    #[must_use]
    pub fn rows_with_active_flips(&self) -> Vec<(BankId, u32)> {
        let mut v: Vec<(BankId, u32)> = self
            .flipped
            .iter()
            .filter(|(_, cells)| !cells.is_empty())
            .map(|(k, _)| unpack_row_key(k))
            .collect();
        v.sort_unstable();
        v
    }

    /// Patrol scrub (§2.5): walks all corrupted rows; corrects (rewrites)
    /// cells in words with a single flip, reports multi-bit words.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut keys: Vec<u64> = self
            .flipped
            .iter()
            .filter(|(_, cells)| !cells.is_empty())
            .map(|(k, _)| k)
            .collect();
        keys.sort_unstable();
        for key in keys {
            let Some(active) = self.flipped.get_mut(key) else {
                continue;
            };
            // Per-word flip counts, kept sorted by word for binary search.
            let mut words: Vec<(u32, u32)> = Vec::new();
            for &(byte, _, _) in active.iter() {
                match words.binary_search_by_key(&(byte / 8), |e| e.0) {
                    Ok(i) => words[i].1 += 1,
                    Err(i) => words.insert(i, (byte / 8, 1)),
                }
            }
            let (bank, row) = unpack_row_key(key);
            active.retain(|&(byte, _, _)| {
                let i = words
                    .binary_search_by_key(&(byte / 8), |e| e.0)
                    .expect("every active byte was counted");
                if words[i].1 == 1 {
                    report.corrected.push((bank, row, byte));
                    false
                } else {
                    report.uncorrectable.push((bank, row, byte));
                    true
                }
            });
        }
        report.corrected.sort_unstable();
        report.uncorrectable.sort_unstable();
        report.uncorrectable.dedup();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::mini_geometry;

    fn hammer_pair(dram: &mut DramSystem, bank: BankId, a: u32, b: u32, rounds: u32) {
        for _ in 0..rounds {
            dram.activate_row(bank, a, 0);
            dram.activate_row(bank, b, 0);
            dram.advance_ns(94); // ~2 * tRC
        }
    }

    fn no_trr() -> DramSystem {
        DramSystemBuilder::new(mini_geometry()).trr(0, 0).build()
    }

    #[test]
    fn double_sided_hammer_flips_sandwiched_victim() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        assert!(
            dram.flip_log().in_row_range(bank, 21, 22).count() > 0,
            "row 21 is double-sided hammered and must flip"
        );
    }

    #[test]
    fn flips_never_escape_the_subarray() {
        // §2.5/Fig. 1: rows in different subarrays are unaffected.
        let mut dram = no_trr();
        let bank = BankId(1);
        // Hammer at the subarray boundary (mini geometry: 256-row subarrays).
        hammer_pair(&mut dram, bank, 254, 256, 150_000);
        for f in dram.flip_log().all() {
            let sub_of_flip = f.media_row / 256;
            assert!(
                sub_of_flip == 254 / 256 || sub_of_flip == 256 / 256,
                "flip in row {} is outside both aggressors' subarrays",
                f.media_row
            );
            // Stronger: each flip must share a subarray with an aggressor.
        }
        // Victims 255 (same subarray as 254) may flip; row 256's neighbors
        // 257+ may flip; but aggressor 254 must never flip row 256's side
        // victims' subarray-crossing neighbors. Check the boundary cell:
        // row 255 can only have been flipped by aggressor 254 (same
        // subarray), which is legal; what must NOT happen is zero-distance
        // isolation violations, verified by the subarray check above.
        assert!(dram.stats().acts >= 300_000);
    }

    #[test]
    fn single_subarray_isolation_boundary_is_exact() {
        // Hammer only row 255 (last row of subarray 0). Row 256 (subarray 1)
        // is adjacent by media address but must never flip; row 254 may.
        let mut dram = no_trr();
        let bank = BankId(2);
        for _ in 0..400_000 {
            dram.activate_row(bank, 255, 0);
            dram.advance_ns(47);
        }
        assert_eq!(
            dram.flip_log().in_row_range(bank, 256, 259).count(),
            0,
            "no flips across the subarray boundary"
        );
    }

    #[test]
    fn refresh_prevents_slow_hammering() {
        // Below-threshold activation rates never flip: the 64 ms refresh
        // window clears disturbance first.
        let mut dram = no_trr();
        let bank = BankId(0);
        // ~6400 ACTs per aggressor per 64 ms window, far below threshold.
        for _ in 0..50_000 {
            dram.activate_row(bank, 40, 0);
            dram.activate_row(bank, 42, 0);
            dram.advance_ns(10_000);
        }
        assert!(dram.flip_log().is_empty(), "slow hammering must not flip");
    }

    #[test]
    fn trr_defends_against_simple_double_sided_hammering() {
        let mut trr = DramSystemBuilder::new(mini_geometry()).trr(4, 2).build();
        let bank = BankId(0);
        hammer_pair(&mut trr, bank, 20, 22, 120_000);
        assert!(
            trr.flip_log().is_empty(),
            "TRR should catch a plain double-sided pattern"
        );
    }

    #[test]
    fn many_sided_pattern_defeats_trr() {
        // TRRespass/Blacksmith-style: more aggressors than tracker slots.
        let mut dram = DramSystemBuilder::new(mini_geometry()).trr(4, 2).build();
        let bank = BankId(0);
        let aggressors: Vec<u32> = (0..12).map(|i| 10 + i * 2).collect();
        for _ in 0..120_000 {
            for &a in &aggressors {
                dram.activate_row(bank, a, 0);
            }
            dram.advance_ns(47 * aggressors.len() as u64);
        }
        assert!(
            !dram.flip_log().is_empty(),
            "a 12-sided pattern must defeat the 4-entry TRR"
        );
    }

    #[test]
    fn rowpress_amplifies_disturbance() {
        // Same ACT count, long open time: flips appear sooner (§2.5).
        let mut plain = no_trr();
        let mut pressed = no_trr();
        let bank = BankId(0);
        for _ in 0..30_000 {
            plain.activate_row(bank, 20, 0);
            plain.activate_row(bank, 22, 0);
            plain.advance_ns(94);
            pressed.activate_row(bank, 20, 3_000);
            pressed.activate_row(bank, 22, 3_000);
            pressed.advance_ns(94);
        }
        assert!(
            pressed.flip_log().len() > plain.flip_log().len(),
            "RowPress (long tAggOn) must increase flips: pressed={} plain={}",
            pressed.flip_log().len(),
            plain.flip_log().len()
        );
    }

    #[test]
    fn writes_restore_flipped_cells() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        let rows: Vec<u32> = dram
            .rows_with_active_flips()
            .iter()
            .filter(|(b, _)| *b == bank)
            .map(|&(_, r)| r)
            .collect();
        assert!(!rows.is_empty());
        let row_bytes = dram.geometry().row_bytes as usize;
        for r in rows {
            dram.write_row(bank, r, 0, &vec![0u8; row_bytes]);
            assert_eq!(dram.active_flip_count(bank, r), 0);
        }
    }

    #[test]
    fn read_applies_ecc() {
        let mut dram = no_trr();
        let bank = BankId(0);
        dram.write_row(bank, 21, 0, &[0xAAu8; 64]);
        hammer_pair(&mut dram, bank, 20, 22, 200_000);
        let n_flips = dram.active_flip_count(bank, 21);
        assert!(n_flips > 0);
        let (_data, integrity) = dram.read_row(bank, 21, 0, 8192);
        match integrity {
            ReadIntegrity::Corrected(_)
            | ReadIntegrity::Uncorrectable(_)
            | ReadIntegrity::SilentlyCorrupt(_) => {}
            ReadIntegrity::Clean => panic!("flipped row read back clean"),
        }
    }

    #[test]
    fn read_row_into_matches_read_row() {
        let mut dram = no_trr();
        let bank = BankId(0);
        dram.write_row(bank, 21, 0, &[0x5Au8; 128]);
        hammer_pair(&mut dram, bank, 20, 22, 200_000);
        let mut scratch = Vec::new();
        for (offset, len) in [(0u32, 64u32), (64, 64), (0, 8192), (100, 28)] {
            let integrity_into = dram.read_row_into(bank, 21, offset, len, &mut scratch);
            let (data, integrity) = dram.read_row(bank, 21, offset, len);
            // Stats diverge (both calls count ECC events) but data and
            // classification must agree.
            assert_eq!(scratch, data, "offset {offset} len {len}");
            assert_eq!(integrity_into, integrity);
        }
    }

    #[test]
    fn scrub_corrects_single_bit_words_and_reports_locations() {
        let mut dram = no_trr();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 30, 32, 120_000);
        assert!(!dram.rows_with_active_flips().is_empty());
        let report = dram.scrub();
        assert!(!report.corrected.is_empty() || !report.uncorrectable.is_empty());
        // After a scrub, another scrub finds nothing new to correct.
        let again = dram.scrub();
        assert!(again.corrected.is_empty());
    }

    #[test]
    fn repaired_rows_hammer_at_their_spare_location() {
        // A media row repaired to a spare in a different subarray disturbs
        // neighbors of the *spare*, not of the media address (§6).
        let mut repairs = RepairMap::new();
        let bank = BankId(0);
        // Media row 20 backed by internal row 600 (subarray 2 in mini).
        repairs.insert(bank, 20, 600);
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .trr(0, 0)
            .repairs(repairs)
            .internal_map(InternalMapConfig::identity())
            .build();
        for _ in 0..400_000 {
            dram.activate_row(bank, 20, 0);
            dram.advance_ns(47);
        }
        let near_media: usize = dram.flip_log().in_row_range(bank, 18, 23).count();
        let near_spare: usize = dram.flip_log().in_row_range(bank, 598, 603).count();
        assert_eq!(near_media, 0, "no disturbance at the disused media rows");
        assert!(near_spare > 0, "disturbance appears around the spare row");
    }

    #[test]
    fn profiles_map_to_dimm_slots_round_robin() {
        use dram_addr::skylake_geometry;
        let dram = DramSystemBuilder::new(skylake_geometry())
            .profiles(DimmProfile::evaluation_dimms())
            .build();
        // Socket 0 channel 0 -> profile A; channel 5 -> profile F.
        let g = *dram.geometry();
        let mut seen = Vec::new();
        for flat in 0..g.banks_per_socket() {
            let name = dram.profile_for(BankId(flat)).name;
            if !seen.contains(&name) {
                seen.push(name);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, ["A", "B", "C", "D", "E", "F"]);
    }

    #[test]
    fn invulnerable_profile_never_flips() {
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .profiles(vec![DimmProfile::invulnerable()])
            .trr(0, 0)
            .build();
        hammer_pair(&mut dram, BankId(0), 20, 22, 50_000);
        assert!(dram.flip_log().is_empty());
    }

    #[test]
    fn patrol_scrub_corrects_over_time() {
        // Like §7.1's 24 h soak: automatic scrubbing repairs single-bit
        // damage as simulated time passes.
        let mut dram = DramSystemBuilder::new(mini_geometry())
            .trr(0, 0)
            .patrol_scrub(10_000_000) // every 10 ms of simulated time
            .build();
        let bank = BankId(0);
        hammer_pair(&mut dram, bank, 20, 22, 120_000);
        // ~11 ms of hammering elapsed; push past the next scrub point.
        dram.advance_ns(20_000_000);
        assert!(
            !dram.scrub_history().corrected.is_empty(),
            "patrol scrub must have corrected something"
        );
        // Single-bit (per word) corruption is gone from the cells.
        let corrected = dram.scrub();
        assert!(corrected.corrected.is_empty(), "nothing left to correct");
    }

    #[test]
    fn flips_are_data_pattern_dependent() {
        // True cells flip only 1 -> 0; anti cells only 0 -> 1. Striping a
        // victim with all-ones vs all-zeros must select disjoint flip sets
        // at the same cell positions.
        let run = |fill: u8| {
            let mut dram = no_trr();
            let bank = BankId(0);
            let row_bytes = dram.geometry().row_bytes as usize;
            dram.write_row(bank, 21, 0, &vec![fill; row_bytes]);
            hammer_pair(&mut dram, bank, 20, 22, 200_000);
            let flips: Vec<(u32, u8)> = dram
                .flip_log()
                .in_row_range(bank, 21, 22)
                .map(|f| (f.byte, f.bit))
                .collect();
            flips
        };
        let ones = run(0xFF);
        let zeros = run(0x00);
        assert!(!ones.is_empty(), "all-ones victims expose true cells");
        assert!(!zeros.is_empty(), "all-zero victims expose anti cells");
        for f in &ones {
            assert!(!zeros.contains(f), "cell {f:?} flipped in both polarities");
        }
    }

    #[test]
    fn pattern_independence_can_be_disabled() {
        // With the option off, both fills flip the same cells.
        let run = |fill: u8| {
            let mut dram = DramSystemBuilder::new(mini_geometry())
                .trr(0, 0)
                .pattern_dependent(false)
                .build();
            let bank = BankId(0);
            let row_bytes = dram.geometry().row_bytes as usize;
            dram.write_row(bank, 21, 0, &vec![fill; row_bytes]);
            hammer_pair(&mut dram, bank, 20, 22, 150_000);
            dram.flip_log()
                .in_row_range(bank, 21, 22)
                .map(|f| (f.byte, f.bit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0xFF), run(0x00));
    }

    #[test]
    fn time_advances_and_refresh_steps_accumulate() {
        let mut dram = no_trr();
        dram.activate_row(BankId(0), 0, 0); // materialize a bank
        dram.advance_ns(REFRESH_WINDOW_NS);
        assert_eq!(dram.stats().ref_steps, REFS_PER_WINDOW as u64);
        assert_eq!(dram.now_ns(), REFRESH_WINDOW_NS);
    }

    // ------------------------------------------------------------------
    // Burst edge cases. The broad randomized equivalence battery lives in
    // crates/dram/tests/burst_equivalence.rs; these pin the named corners.
    // ------------------------------------------------------------------

    /// Asserts two devices have bit-identical observable state.
    fn assert_same_state(a: &DramSystem, b: &DramSystem) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.flip_log().all(), b.flip_log().all());
        assert_eq!(a.rows_with_active_flips(), b.rows_with_active_flips());
    }

    #[test]
    fn burst_count_zero_and_one_match_per_act_exactly() {
        let mut reference = no_trr();
        let mut burst = no_trr();
        let bank = BankId(0);
        // count = 0: a no-op that must not even materialize bank state.
        burst.activate_burst(bank, 10, 0, 0);
        assert_eq!(burst.stats().acts, 0);
        assert!(burst.touched_banks.is_empty());
        // count = 1 repeatedly: identical to the per-ACT path bit-for-bit.
        for round in 0..120_000 {
            reference.activate_row(bank, 20, 0);
            reference.activate_row(bank, 22, 0);
            reference.advance_ns(94);
            burst.activate_burst(bank, 20, 1, 0);
            burst.activate_burst(bank, 22, 1, 0);
            burst.advance_ns(94);
            let _ = round;
        }
        assert_same_state(&reference, &burst);
        assert!(!reference.flip_log().is_empty());
    }

    #[test]
    fn burst_split_at_refresh_boundary_matches_per_act() {
        // A hammer run interleaved with time advances: the caller splits the
        // run into one burst per inter-refresh interval. Both paths must see
        // the same refresh schedule and produce the same flips.
        let mut reference = no_trr();
        let mut burst = no_trr();
        let bank = BankId(0);
        let per_interval = 800u64; // ACTs between time advances
        for _ in 0..160 {
            for _ in 0..per_interval {
                reference.activate_row(bank, 50, 0);
            }
            reference.advance_ns(40_000); // > tREFI: refresh lands mid-run
            burst.activate_burst(bank, 50, per_interval, 0);
            burst.advance_ns(40_000);
        }
        assert_same_state(&reference, &burst);
        assert!(reference.stats().ref_steps > 0, "refreshes did occur");
    }

    #[test]
    fn burst_crossing_a_trr_serve_matches_per_act() {
        // With TRR enabled, REFs between bursts serve tracked aggressors and
        // reset counters; observe_n must replay the sampler exactly across
        // those serves, including the zero-count entries they leave behind.
        let run = |coalesced: bool| {
            let mut dram = DramSystemBuilder::new(mini_geometry()).trr(4, 2).build();
            let bank = BankId(0);
            let aggressors: [u32; 12] = core::array::from_fn(|i| 10 + 2 * i as u32);
            for _ in 0..12_000 {
                for &a in &aggressors {
                    if coalesced {
                        dram.activate_burst(bank, a, 10, 0);
                    } else {
                        for _ in 0..10 {
                            dram.activate_row(bank, a, 0);
                        }
                    }
                }
                dram.advance_ns(47 * 10 * aggressors.len() as u64);
            }
            dram
        };
        let reference = run(false);
        let burst = run(true);
        assert_same_state(&reference, &burst);
        assert!(reference.stats().trr_triggers > 0, "TRR did serve");
        assert!(!reference.flip_log().is_empty(), "pattern defeated TRR");
    }

    #[test]
    fn burst_on_repaired_row_matches_per_act() {
        let build = || {
            let mut repairs = RepairMap::new();
            repairs.insert(BankId(0), 20, 600);
            DramSystemBuilder::new(mini_geometry())
                .trr(0, 0)
                .repairs(repairs)
                .internal_map(InternalMapConfig::identity())
                .build()
        };
        let mut reference = build();
        let mut burst = build();
        let bank = BankId(0);
        for _ in 0..500 {
            for _ in 0..800 {
                reference.activate_row(bank, 20, 0);
            }
            reference.advance_ns(800 * 47);
            burst.activate_burst(bank, 20, 800, 0);
            burst.advance_ns(800 * 47);
        }
        assert_same_state(&reference, &burst);
        assert!(
            reference.flip_log().in_row_range(bank, 598, 603).count() > 0,
            "hammering lands at the spare"
        );
    }

    #[test]
    fn burst_with_victims_straddling_subarray_edge_matches_per_act() {
        // Aggressor at row 255 (last of subarray 0, mini geometry): victims
        // 256/257 are out of the subarray and must stay untouched on both
        // paths; 253/254 accumulate normally.
        let mut reference = no_trr();
        let mut burst = no_trr();
        let bank = BankId(2);
        for _ in 0..500 {
            for _ in 0..900 {
                reference.activate_row(bank, 255, 0);
            }
            reference.advance_ns(900 * 47);
            burst.activate_burst(bank, 255, 900, 0);
            burst.advance_ns(900 * 47);
        }
        assert_same_state(&reference, &burst);
        assert_eq!(burst.flip_log().in_row_range(bank, 256, 259).count(), 0);
        assert!(burst.flip_log().in_row_range(bank, 253, 255).count() > 0);
    }

    #[test]
    fn burst_with_rowpress_matches_per_act() {
        let mut reference = no_trr();
        let mut burst = no_trr();
        let bank = BankId(0);
        for _ in 0..400 {
            // Mixed weights within one window: RowPress on row 20 only, so
            // victim 21 sees two weight regimes and the segment fold runs.
            // Both paths issue the identical run-ordered ACT sequence.
            for _ in 0..100 {
                reference.activate_row(bank, 20, 3_000);
            }
            for _ in 0..100 {
                reference.activate_row(bank, 22, 0);
            }
            reference.advance_ns(100 * 94);
            burst.activate_burst(bank, 20, 100, 3_000);
            burst.activate_burst(bank, 22, 100, 0);
            burst.advance_ns(100 * 94);
        }
        assert_same_state(&reference, &burst);
        assert!(!reference.flip_log().is_empty());
    }
}
