//! A deterministic open-addressed map for per-bank victim state.
//!
//! `std::collections::HashMap` is banned from the hot-path modules (see the
//! `siloz-lint` rule table in `DESIGN.md` §4d): its default `RandomState`
//! seeds SipHash from process entropy — a nondeterminism source — and the
//! hash itself is far heavier than needed for small integer keys that are
//! already well-mixed by a single multiply. This map replaces it on the
//! per-activation victim path:
//!
//! - keys are packed `u64`s (side/row tuples), hashed with one Fibonacci
//!   multiply;
//! - power-of-two capacity, linear probing, growth at 7/8 load;
//! - no removal (victim state is reset in place by refresh, never deleted),
//!   so there are no tombstones and probes stay short;
//! - iteration order is a pure function of the insertion sequence, so every
//!   fold over the map is reproducible run to run.

/// Fibonacci hashing constant (2^64 / φ).
const FIB: u64 = 0x9e37_79b9_7f4a_7c15;

/// Sentinel key marking an empty slot. Packed keys are `(small id) << 32 |
/// row` with ids far below `u32::MAX`, so the sentinel can never collide
/// with a real key.
const EMPTY: u64 = u64::MAX;

/// A deterministic open-addressed `u64 → V` map without removal.
#[derive(Debug, Clone)]
pub struct RowMap<V> {
    /// Slot keys; `EMPTY` marks a free slot.
    keys: Vec<u64>,
    /// Slot values, `Some` exactly where `keys` is not `EMPTY`.
    vals: Vec<Option<V>>,
    /// Number of occupied slots.
    len: usize,
}

impl<V> Default for RowMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RowMap<V> {
    /// Initial slot count (power of two).
    const INITIAL_SLOTS: usize = 16;

    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keys: vec![EMPTY; Self::INITIAL_SLOTS],
            vals: (0..Self::INITIAL_SLOTS).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index `key` hashes to under the current capacity.
    fn slot_of(&self, key: u64) -> usize {
        let mask = self.keys.len() as u64 - 1;
        (key.wrapping_mul(FIB) >> 32 & mask) as usize
    }

    /// Index of `key`'s slot, or of the empty slot where it would go.
    fn probe(&self, key: u64) -> usize {
        debug_assert_ne!(key, EMPTY, "sentinel key");
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            if self.keys[i] == key || self.keys[i] == EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles capacity and re-inserts every entry.
    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            (0..new_slots).map(|_| None).collect::<Vec<Option<V>>>(),
        );
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key != EMPTY {
                let i = self.probe(key);
                self.keys[i] = key;
                self.vals[i] = val;
            }
        }
    }

    /// Returns a shared reference to `key`'s value, if present.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i].as_ref()
        } else {
            None
        }
    }

    /// Returns a mutable reference to `key`'s value, if present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i].as_mut()
        } else {
            None
        }
    }

    /// Returns a mutable reference to `key`'s value, inserting `make()` on
    /// first touch.
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        let mut i = self.probe(key);
        if self.keys[i] != key {
            if (self.len + 1) * 8 > self.keys.len() * 7 {
                self.grow();
                i = self.probe(key);
            }
            self.keys[i] = key;
            self.vals[i] = Some(make());
            self.len += 1;
        }
        self.vals[i].as_mut().expect("occupied slot has a value")
    }

    /// Iterates over values in slot order (deterministic for a given
    /// insertion sequence).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.vals.iter().filter_map(Option::as_ref)
    }

    /// Iterates over `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY)
            .map(|(&k, v)| (k, v.as_ref().expect("occupied slot has a value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_and_len() {
        let mut m = RowMap::new();
        assert!(m.is_empty());
        *m.get_or_insert_with(7, || 10u32) += 1;
        *m.get_or_insert_with(7, || 99) += 1;
        assert_eq!(m.get(7), Some(&12));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(8), None);
        assert!(m.get_mut(8).is_none());
    }

    #[test]
    fn grows_past_initial_capacity_and_matches_std_hashmap() {
        let mut m = RowMap::new();
        let mut reference = HashMap::new();
        // Keys shaped like packed (side, row) tuples, with collisions.
        for i in 0..1000u64 {
            let key = ((i % 2) << 32) | ((i * 37) % 400);
            *m.get_or_insert_with(key, || 0u64) += i;
            *reference.entry(key).or_insert(0u64) += i;
        }
        assert_eq!(m.len(), reference.len());
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(&v), "key {k:#x}");
        }
        let sum: u64 = m.values().sum();
        assert_eq!(sum, reference.values().sum::<u64>());
    }

    #[test]
    fn iteration_order_is_deterministic() {
        let build = || {
            let mut m = RowMap::new();
            for i in 0..100u64 {
                m.get_or_insert_with(i * 101, || i);
            }
            m.iter().map(|(k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        let mut m: RowMap<char> = RowMap::new();
        // Find two keys hashing to the same initial slot; both must stay
        // reachable through the linear probe.
        let a = 1u64;
        let b = (2..)
            .find(|&k| m.slot_of(k) == m.slot_of(a))
            .expect("a colliding key exists");
        m.get_or_insert_with(a, || 'a');
        m.get_or_insert_with(b, || 'b');
        assert_eq!(m.get(a), Some(&'a'));
        assert_eq!(m.get(b), Some(&'b'));
    }
}
