//! Per-DIMM disturbance profiles.
//!
//! Rowhammer thresholds vary across DIMMs (§2.5); Table 3 of the paper runs
//! the containment experiment across six DIMMs (A-F). This module models a
//! DIMM's susceptibility: its base threshold, per-row threshold variation,
//! blast-radius weights (distance-1 neighbors plus the weaker "Half-Double"
//! distance-2 effect), RowPress sensitivity, and weak-cell density.

use crate::util::{mix, unit_float};

/// Relative disturbance deposited on victims at each distance from the
/// aggressor, within the aggressor's subarray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisturbanceWeights {
    /// Weight for immediately-adjacent rows (distance 1).
    pub distance1: f64,
    /// Weight for rows two away (distance 2, the "Half-Double" effect).
    pub distance2: f64,
}

impl Default for DisturbanceWeights {
    fn default() -> Self {
        Self {
            distance1: 1.0,
            distance2: 0.2,
        }
    }
}

impl DisturbanceWeights {
    /// Maximum distance (in rows) at which any disturbance is deposited.
    #[must_use]
    pub fn radius(&self) -> u32 {
        if self.distance2 > 0.0 {
            2
        } else if self.distance1 > 0.0 {
            1
        } else {
            0
        }
    }

    /// The weight at `distance` rows from the aggressor.
    #[must_use]
    pub fn at(&self, distance: u32) -> f64 {
        match distance {
            1 => self.distance1,
            2 => self.distance2,
            _ => 0.0,
        }
    }
}

/// A DIMM's Rowhammer/RowPress susceptibility profile.
///
/// Thresholds are expressed in effective activations per refresh window: a
/// victim whose accumulated (weighted) disturbance exceeds its sampled
/// threshold before its next refresh flips bits.
#[derive(Debug, Clone, Copy)]
pub struct DimmProfile {
    /// Short vendor-anonymized name ("A" ... "F" in Table 3).
    pub name: &'static str,
    /// Median per-row Rowhammer threshold, in weighted ACTs per window.
    pub base_threshold: f64,
    /// Relative threshold spread across rows (lognormal-ish, e.g. 0.2).
    pub threshold_spread: f64,
    /// Blast-radius weights.
    pub weights: DisturbanceWeights,
    /// Extra disturbance per nanosecond a row is held open beyond the
    /// nominal access time (RowPress, §2.5), as a fraction of one ACT's
    /// disturbance per 1000 ns.
    pub rowpress_per_us: f64,
    /// Expected number of flippable (weak) cells per 8 KiB row at threshold.
    pub weak_cells_per_row: f64,
    /// Seed distinguishing this physical DIMM's cell population.
    pub seed: u64,
}

impl DimmProfile {
    /// The six anonymized evaluation DIMMs of Table 3.
    ///
    /// Thresholds span the modern server range reported in the literature
    /// the paper cites (tens of thousands of ACTs, decreasing with process
    /// scaling); exact values are synthetic but ordered A (most susceptible)
    /// to F (least).
    #[must_use]
    pub fn evaluation_dimms() -> Vec<DimmProfile> {
        let mk = |name, thr: f64, weak: f64, seed| DimmProfile {
            name,
            base_threshold: thr,
            threshold_spread: 0.25,
            weights: DisturbanceWeights::default(),
            rowpress_per_us: 0.5,
            weak_cells_per_row: weak,
            seed,
        };
        vec![
            mk("A", 22_000.0, 4.0, 0xA11CE),
            mk("B", 30_000.0, 3.0, 0xB0B0),
            mk("C", 38_000.0, 2.5, 0xCAFE),
            mk("D", 47_000.0, 2.0, 0xD00D),
            mk("E", 55_000.0, 1.5, 0xE66),
            mk("F", 65_000.0, 1.0, 0xF00F),
        ]
    }

    /// Profile used by default in tests/examples (DIMM "C").
    #[must_use]
    pub fn default_eval() -> DimmProfile {
        Self::evaluation_dimms().remove(2)
    }

    /// An invulnerable profile (infinite threshold): useful for performance
    /// experiments where disturbance bookkeeping is irrelevant.
    #[must_use]
    pub fn invulnerable() -> DimmProfile {
        DimmProfile {
            name: "invulnerable",
            base_threshold: f64::INFINITY,
            threshold_spread: 0.0,
            weights: DisturbanceWeights {
                distance1: 0.0,
                distance2: 0.0,
            },
            rowpress_per_us: 0.0,
            weak_cells_per_row: 0.0,
            seed: 0,
        }
    }

    /// The sampled disturbance threshold for a given victim half-row.
    ///
    /// Deterministic in `(profile seed, bank, side, internal row)`: the same
    /// cell population always has the same threshold, as on a real DIMM.
    #[must_use]
    pub fn row_threshold(&self, bank: u32, side: u8, internal_row: u32) -> f64 {
        if !self.base_threshold.is_finite() {
            return f64::INFINITY;
        }
        let h = mix(&[self.seed, bank as u64, side as u64, internal_row as u64]);
        // Map a uniform sample through a symmetric multiplicative spread:
        // threshold = base * exp(spread * (u - 0.5) * 2).
        let u = unit_float(h);
        self.base_threshold * (self.threshold_spread * (u - 0.5) * 2.0).exp()
    }

    /// Number of weak cells in a given victim half-row (deterministic).
    #[must_use]
    pub fn weak_cell_count(&self, bank: u32, side: u8, internal_row: u32) -> u32 {
        if self.weak_cells_per_row <= 0.0 {
            return 0;
        }
        let h = mix(&[
            self.seed ^ 0xdead_beef,
            bank as u64,
            side as u64,
            internal_row as u64,
        ]);
        // Rows have at least one weak cell; the count varies around the
        // configured half-row density (half of the per-row figure per side).
        let per_side = (self.weak_cells_per_row / 2.0).max(0.5);
        let u = unit_float(h);
        (per_side * (0.5 + 1.5 * u)).round().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_dimms_are_six_and_ordered() {
        let dimms = DimmProfile::evaluation_dimms();
        assert_eq!(dimms.len(), 6);
        let names: Vec<_> = dimms.iter().map(|d| d.name).collect();
        assert_eq!(names, ["A", "B", "C", "D", "E", "F"]);
        for w in dimms.windows(2) {
            assert!(
                w[0].base_threshold < w[1].base_threshold,
                "profiles ordered by increasing threshold"
            );
        }
    }

    #[test]
    fn thresholds_are_deterministic_and_spread() {
        let p = DimmProfile::default_eval();
        let t1 = p.row_threshold(0, 0, 100);
        assert_eq!(t1, p.row_threshold(0, 0, 100));
        assert_ne!(t1, p.row_threshold(0, 0, 101));
        // Spread stays within the configured multiplicative envelope.
        for row in 0..2000 {
            let t = p.row_threshold(3, 1, row);
            assert!(t >= p.base_threshold * (-0.25f64).exp() - 1e-9);
            assert!(t <= p.base_threshold * (0.25f64).exp() + 1e-9);
        }
    }

    #[test]
    fn invulnerable_profile_never_flips() {
        let p = DimmProfile::invulnerable();
        assert!(p.row_threshold(0, 0, 0).is_infinite());
        assert_eq!(p.weak_cell_count(0, 0, 0), 0);
        assert_eq!(p.weights.radius(), 0);
    }

    #[test]
    fn weights_radius_and_lookup() {
        let w = DisturbanceWeights::default();
        assert_eq!(w.radius(), 2);
        assert_eq!(w.at(1), 1.0);
        assert_eq!(w.at(2), 0.2);
        assert_eq!(w.at(3), 0.0);
        assert_eq!(
            w.at(0),
            0.0,
            "the aggressor itself is refreshed, not disturbed"
        );
        let d1_only = DisturbanceWeights {
            distance1: 1.0,
            distance2: 0.0,
        };
        assert_eq!(d1_only.radius(), 1);
    }

    #[test]
    fn weak_cell_count_is_at_least_one_for_vulnerable_rows() {
        let p = DimmProfile::default_eval();
        for row in 0..500 {
            assert!(p.weak_cell_count(1, 0, row) >= 1);
        }
    }
}
