//! In-DRAM Target Row Refresh (TRR) modeling (§2.5).
//!
//! Deployed TRR implementations track a small number of frequently-activated
//! rows per bank and refresh their neighbors ahead of schedule during REF
//! commands. Because the tracker capacity is tiny, many-sided hammering
//! patterns with decoy rows (TRRespass/Blacksmith) overwhelm it: the tracked
//! set churns and true aggressors slip through. We model exactly that
//! mechanism with a Misra-Gries-style frequent-items tracker.

/// A per-bank TRR tracker.
///
/// Tracks up to `capacity` candidate aggressor rows with activation
/// counters. On each REF, the most-activated candidates are "served":
/// their neighbors get refreshed, and their counters reset.
#[derive(Debug, Clone)]
pub struct TrrTracker {
    capacity: usize,
    served_per_ref: usize,
    entries: Vec<(u32, u64)>, // (internal row, activation count)
}

impl TrrTracker {
    /// Creates a tracker with `capacity` slots, serving `served_per_ref`
    /// aggressors per REF command. Deployed trackers are small; the default
    /// used across the workspace is capacity 4, serving 2.
    #[must_use]
    pub fn new(capacity: usize, served_per_ref: usize) -> Self {
        Self {
            capacity,
            served_per_ref,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// A disabled tracker (no TRR), for ablations.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    /// Records an activation of `internal_row` (Misra-Gries update).
    pub fn observe(&mut self, internal_row: u32) {
        if self.capacity == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == internal_row) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((internal_row, 1));
            return;
        }
        // Tracker full: decrement all counters (Misra-Gries); replace any
        // that reach zero. This is the mechanism many-sided patterns abuse —
        // a stream of decoys keeps every counter near zero.
        for e in &mut self.entries {
            e.1 = e.1.saturating_sub(1);
        }
        if let Some(slot) = self.entries.iter_mut().find(|e| e.1 == 0) {
            *slot = (internal_row, 1);
        }
    }

    /// Records `n` consecutive activations of `internal_row`, with state
    /// identical to calling [`TrrTracker::observe`] `n` times.
    ///
    /// The closed form for the full-and-absent case: let `m` be the minimum
    /// tracked count and `r = max(m, 1)`. Sequential observes decrement every
    /// counter once per call until the `r`-th call frees a zero slot and
    /// inserts `(row, 1)`; the remaining `n - r` calls then increment that
    /// entry. If `n < r` no slot ever frees, so the burst only decrements.
    /// (`m` can be 0: `on_refresh` leaves served entries at count 0, and the
    /// very next observe replaces one — hence the `max(m, 1)`.)
    pub fn observe_n(&mut self, internal_row: u32, n: u64) {
        if self.capacity == 0 || n == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == internal_row) {
            e.1 += n;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((internal_row, n));
            return;
        }
        let m = self.entries.iter().map(|e| e.1).min().unwrap_or(0);
        let r = m.max(1);
        if n < r {
            for e in &mut self.entries {
                e.1 = e.1.saturating_sub(n);
            }
            return;
        }
        for e in &mut self.entries {
            e.1 = e.1.saturating_sub(r);
        }
        if let Some(slot) = self.entries.iter_mut().find(|e| e.1 == 0) {
            *slot = (internal_row, 1 + (n - r));
        }
    }

    /// Handles a REF command: returns the internal rows whose *neighbors*
    /// should be refreshed now (the suspected aggressors), resetting their
    /// counters.
    pub fn on_refresh(&mut self) -> Vec<u32> {
        if self.capacity == 0 || self.served_per_ref == 0 {
            return Vec::new();
        }
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.1));
        let n = self.served_per_ref.min(self.entries.len());
        let mut served = Vec::with_capacity(n);
        for e in self.entries.iter_mut().take(n) {
            if e.1 > 0 {
                served.push(e.0);
                e.1 = 0;
            }
        }
        served
    }

    /// Currently-tracked `(row, count)` entries (diagnostics).
    #[must_use]
    pub fn entries(&self) -> &[(u32, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_heavy_hitters() {
        let mut t = TrrTracker::new(4, 2);
        for _ in 0..1000 {
            t.observe(10);
            t.observe(20);
        }
        t.observe(30);
        let served = t.on_refresh();
        assert!(served.contains(&10));
        assert!(served.contains(&20));
        assert_eq!(served.len(), 2);
    }

    #[test]
    fn served_counters_reset() {
        let mut t = TrrTracker::new(2, 2);
        for _ in 0..10 {
            t.observe(5);
        }
        assert_eq!(t.on_refresh(), vec![5]);
        // Nothing re-observed since: nothing to serve.
        assert!(t.on_refresh().is_empty());
    }

    #[test]
    fn decoy_flood_evicts_true_aggressors() {
        // The TRRespass/Blacksmith weakness: more simultaneous aggressors
        // than tracker slots (plus decoys) keep all counters churning, so a
        // REF may serve decoys instead of the true aggressors.
        let mut t = TrrTracker::new(4, 2);
        // 12-sided pattern: each aggressor activated round-robin.
        for round in 0..5000 {
            for agg in 0..12u32 {
                t.observe(agg * 2);
            }
            let _ = round;
        }
        // Counters should all be tiny relative to the 5000 activations each
        // row actually received: the tracker has lost the magnitude.
        assert!(t.entries().iter().all(|&(_, c)| c < 100));
    }

    #[test]
    fn observe_n_replays_sequential_observes_exactly() {
        // Drive both trackers through a schedule that exercises every
        // observe_n branch: tracked-row increment, insert-with-room,
        // full-and-absent with n < r, n == r, n > r, and the post-refresh
        // zero-count-entry case (m == 0).
        let schedule: &[(u32, u64)] = &[
            (10, 3), // insert with room
            (20, 5), // insert with room
            (30, 2), // insert with room
            (40, 4), // insert with room (tracker now full)
            (10, 7), // tracked increment
            (50, 1), // full & absent, n < r (min count 2)
            (50, 2), // full & absent, n == r
            (60, 9), // full & absent, n > r
            (10, 1), // tracked increment after churn
        ];
        let mut seq = TrrTracker::new(4, 2);
        let mut burst = TrrTracker::new(4, 2);
        for &(row, n) in schedule {
            for _ in 0..n {
                seq.observe(row);
            }
            burst.observe_n(row, n);
            assert_eq!(seq.entries(), burst.entries(), "after ({row}, {n})");
        }
        // A REF leaves served entries at count 0; the next burst must still
        // match sequential semantics (the m == 0, r == 1 case).
        assert_eq!(seq.on_refresh(), burst.on_refresh());
        for &(row, n) in &[(70u32, 1u64), (80, 6), (70, 2)] {
            for _ in 0..n {
                seq.observe(row);
            }
            burst.observe_n(row, n);
            assert_eq!(seq.entries(), burst.entries(), "post-REF ({row}, {n})");
        }
    }

    #[test]
    fn observe_n_degenerate_counts() {
        let mut t = TrrTracker::new(4, 2);
        t.observe_n(10, 0);
        assert!(t.entries().is_empty(), "n = 0 is a no-op");
        t.observe_n(10, 1);
        let mut one = TrrTracker::new(4, 2);
        one.observe(10);
        assert_eq!(t.entries(), one.entries(), "n = 1 equals observe()");
        let mut d = TrrTracker::disabled();
        d.observe_n(10, 100);
        assert!(d.entries().is_empty());
    }

    #[test]
    fn disabled_tracker_does_nothing() {
        let mut t = TrrTracker::disabled();
        t.observe(1);
        assert!(t.on_refresh().is_empty());
        assert!(t.entries().is_empty());
    }
}
