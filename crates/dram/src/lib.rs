//! A functional DDR4 DRAM device model with read-disturbance physics.
//!
//! This crate simulates the *device* half of the memory system: cells, rows,
//! banks, refresh, in-DRAM target row refresh (TRR), ECC, and — centrally for
//! the Siloz reproduction — Rowhammer/RowPress disturbance (§2.5):
//!
//! - each activation (ACT) of an *aggressor* row deposits disturbance on
//!   nearby *victim* rows **in the same subarray**; rows in other subarrays
//!   are electrically isolated and never disturbed (§2.5, Fig. 1);
//! - disturbance accumulates until a victim is refreshed (auto-refresh, TRR,
//!   or its own activation); crossing a per-cell threshold flips bits;
//! - adjacency is computed on *internal* row addresses, i.e. after DDR4
//!   mirroring/inversion, vendor scrambling, and row repairs
//!   ([`dram_addr::transform`], §6), and separately for the A/B half-row
//!   sides of server DIMMs (§2.3);
//! - a sampling TRR tracker refreshes suspected victims early but — like
//!   deployed TRR — can be defeated by many-sided access patterns (§2.5);
//! - SEC-DED ECC corrects single-bit flips per 64-bit word, detects
//!   double-bit flips, and can be silently defeated by triple flips (§2.5).
//!
//! The model is *functional*, not cycle-accurate: the memory controller
//! (crate `memctrl`) decides when ACTs happen and owns timing; this crate
//! owns what those ACTs do to the cells.

#![forbid(unsafe_code)]

pub mod bank;
pub mod device;
pub mod ecc;
pub mod flip;
pub mod profile;
pub mod rowmap;
pub mod trr;
pub mod util;

pub use bank::BankState;
pub use device::{DramStats, DramSystem, DramSystemBuilder, ScrubReport};
pub use ecc::{EccMode, ReadIntegrity};
pub use flip::{BitFlip, FlipLog};
pub use profile::{DimmProfile, DisturbanceWeights};
pub use trr::TrrTracker;

/// Nanoseconds in one DDR4 refresh window (tREFW = 64 ms, §2.3).
pub const REFRESH_WINDOW_NS: u64 = 64_000_000;

/// Number of REF commands distributed across a refresh window (DDR4: 8192).
pub const REFS_PER_WINDOW: u32 = 8192;

/// Default duration a row stays open for a normal access, in nanoseconds
/// (roughly tRAS for a closed-page access).
pub const DEFAULT_OPEN_NS: u64 = 35;
