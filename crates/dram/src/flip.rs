//! Bit-flip records and weak-cell placement.

use crate::profile::DimmProfile;
use crate::util::{mix, unit_float};
use dram_addr::{BankId, RankSide};

/// One observed Rowhammer/RowPress bit flip, in media coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFlip {
    /// Bank the flip occurred in.
    pub bank: BankId,
    /// Media row address of the victim row.
    pub media_row: u32,
    /// Half-row side holding the flipped cell (§2.3).
    pub side: RankSide,
    /// Byte offset within the full 8 KiB media row.
    pub byte: u32,
    /// Bit index within the byte.
    pub bit: u8,
}

/// Log of all flips a DRAM system has suffered since construction.
///
/// The log is the ground truth for security experiments: Table 3 checks
/// whether any logged flip falls outside the hammering domain's subarray
/// group, and the EPT experiment checks protected row ranges.
#[derive(Debug, Default, Clone)]
pub struct FlipLog {
    flips: Vec<BitFlip>,
}

impl FlipLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a flip (idempotent per exact cell: re-flipping the same cell
    /// is not logged twice).
    pub fn record(&mut self, flip: BitFlip) {
        if !self.flips.contains(&flip) {
            self.flips.push(flip);
        }
    }

    /// All recorded flips, in occurrence order.
    #[must_use]
    pub fn all(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Number of recorded flips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether no flips have occurred.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// Flips affecting a given bank.
    pub fn in_bank(&self, bank: BankId) -> impl Iterator<Item = &BitFlip> {
        self.flips.iter().filter(move |f| f.bank == bank)
    }

    /// Flips whose victim media row lies within `[lo, hi)` in `bank`.
    pub fn in_row_range(
        &self,
        bank: BankId,
        lo: u32,
        hi: u32,
    ) -> impl Iterator<Item = &BitFlip> + '_ {
        self.flips
            .iter()
            .filter(move |f| f.bank == bank && f.media_row >= lo && f.media_row < hi)
    }

    /// Clears the log (e.g. between experiment phases).
    pub fn clear(&mut self) {
        self.flips.clear();
    }
}

/// Charge orientation of a DRAM cell (§2.5 background).
///
/// A *true cell* stores logical 1 as charged: disturbance leaks charge, so
/// it can only flip 1 → 0. An *anti cell* stores logical 0 as charged and
/// flips 0 → 1. Flips are therefore data-pattern dependent — the basis of
/// RAMBleed-style inference and of Blacksmith's striped victim patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellPolarity {
    /// Charged = 1; flips 1 → 0 under disturbance.
    True,
    /// Charged = 0; flips 0 → 1 under disturbance.
    Anti,
}

impl CellPolarity {
    /// The stored bit value that is vulnerable (charged) for this polarity.
    #[must_use]
    pub fn vulnerable_bit(self) -> u8 {
        match self {
            CellPolarity::True => 1,
            CellPolarity::Anti => 0,
        }
    }
}

/// A weak cell of a particular victim half-row: the position that flips once
/// the row's accumulated disturbance exceeds `threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakCell {
    /// Byte offset within the half-row (0..row_bytes/2).
    pub byte_in_half: u32,
    /// Bit index within the byte.
    pub bit: u8,
    /// Disturbance level at which this cell flips. The weakest cell flips at
    /// the row threshold; stronger cells require progressively more.
    pub threshold: f64,
    /// True/anti cell orientation: only the charged state can flip.
    pub polarity: CellPolarity,
}

/// Deterministically enumerates the weak cells of a victim half-row.
///
/// Cell positions and strength multipliers depend only on
/// `(profile seed, bank, side, internal row)`, so repeated experiments see
/// the same flippable population — as with a physical DIMM.
#[must_use]
pub fn weak_cells(
    profile: &DimmProfile,
    bank: u32,
    side: RankSide,
    internal_row: u32,
    half_row_bytes: u32,
) -> Vec<WeakCell> {
    let side_idx = match side {
        RankSide::A => 0u8,
        RankSide::B => 1,
    };
    let count = profile.weak_cell_count(bank, side_idx, internal_row);
    let row_threshold = profile.row_threshold(bank, side_idx, internal_row);
    if count == 0 || !row_threshold.is_finite() {
        return Vec::new();
    }
    let mut cells = Vec::with_capacity(count as usize);
    for i in 0..count {
        let h = mix(&[
            profile.seed ^ 0x5eed_ce11,
            bank as u64,
            side_idx as u64,
            internal_row as u64,
            i as u64,
        ]);
        let byte_in_half = (h % half_row_bytes as u64) as u32;
        let bit = ((h >> 32) % 8) as u8;
        // Cell `i` flips at threshold * (1 + i * step); later cells need more
        // hammering, so flip counts grow with disturbance as on real DIMMs.
        let step = 0.35 * unit_float(h.rotate_left(17)) + 0.15;
        let threshold = row_threshold * (1.0 + i as f64 * step);
        // True/anti layout is a manufacturing property; roughly half each.
        let polarity = if (h >> 40) & 1 == 0 {
            CellPolarity::True
        } else {
            CellPolarity::Anti
        };
        cells.push(WeakCell {
            byte_in_half,
            bit,
            threshold,
            polarity,
        });
    }
    cells.sort_by(|a, b| a.threshold.total_cmp(&b.threshold));
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip(bank: u32, row: u32) -> BitFlip {
        BitFlip {
            bank: BankId(bank),
            media_row: row,
            side: RankSide::A,
            byte: 1,
            bit: 2,
        }
    }

    #[test]
    fn log_records_and_dedups() {
        let mut log = FlipLog::new();
        log.record(flip(0, 5));
        log.record(flip(0, 5));
        log.record(flip(1, 5));
        assert_eq!(log.len(), 2);
        assert_eq!(log.in_bank(BankId(0)).count(), 1);
    }

    #[test]
    fn row_range_filter() {
        let mut log = FlipLog::new();
        for r in [0u32, 10, 20, 30] {
            log.record(flip(0, r));
        }
        assert_eq!(log.in_row_range(BankId(0), 5, 25).count(), 2);
        assert_eq!(log.in_row_range(BankId(1), 0, 100).count(), 0);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn weak_cells_deterministic_and_sorted() {
        let p = DimmProfile::default_eval();
        let a = weak_cells(&p, 0, RankSide::A, 42, 4096);
        let b = weak_cells(&p, 0, RankSide::A, 42, 4096);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        for w in a.windows(2) {
            assert!(w[0].threshold <= w[1].threshold);
        }
        for c in &a {
            assert!(c.byte_in_half < 4096);
            assert!(c.bit < 8);
        }
    }

    #[test]
    fn weakest_cell_flips_at_row_threshold() {
        let p = DimmProfile::default_eval();
        let cells = weak_cells(&p, 7, RankSide::B, 9, 4096);
        let row_thr = p.row_threshold(7, 1, 9);
        assert!((cells[0].threshold - row_thr).abs() < 1e-9);
    }

    #[test]
    fn invulnerable_profile_has_no_weak_cells() {
        let p = DimmProfile::invulnerable();
        assert!(weak_cells(&p, 0, RankSide::A, 0, 4096).is_empty());
    }
}
