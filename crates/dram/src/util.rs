//! Small deterministic hashing utilities for reproducible cell sampling.

/// SplitMix64: a tiny, high-quality mixing function.
///
/// Used to derive per-row thresholds and weak-cell positions
/// deterministically from `(seed, bank, row, ...)` tuples, so experiments
/// are exactly reproducible for a given DIMM seed.
#[must_use]
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a sequence of values into one hash.
#[must_use]
pub fn mix(values: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        h = splitmix64(h ^ v);
    }
    h
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[must_use]
pub const fn unit_float(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Consecutive seeds should differ in many bits.
        let d = (splitmix64(7) ^ splitmix64(8)).count_ones();
        assert!(d > 10, "poor diffusion: {d} differing bits");
    }

    #[test]
    fn mix_depends_on_order_and_content() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_ne!(mix(&[1, 2]), mix(&[1, 3]));
        assert_eq!(mix(&[1, 2]), mix(&[1, 2]));
    }

    #[test]
    fn unit_float_in_range() {
        for i in 0..1000u64 {
            let f = unit_float(splitmix64(i));
            assert!((0.0..1.0).contains(&f));
        }
    }
}
