//! SEC-DED ECC modeling (§2.5).
//!
//! Server memory protects each 64-bit word with single-error-correct,
//! double-error-detect codes. ECC corrects one flipped bit per word (while
//! still *reporting* the event — the side channel Copy-on-Flip relies on and
//! RAMBleed-style attacks exploit), detects two, and can be silently defeated
//! or even miscorrect at three or more flips per word.

/// ECC configuration of a memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EccMode {
    /// No ECC: every flip reaches software silently.
    None,
    /// SEC-DED per 64-bit word (server default).
    #[default]
    SecDed,
}

/// Integrity classification of one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadIntegrity {
    /// No flipped cells in the read region.
    Clean,
    /// All flipped words had exactly one flipped bit; data was corrected.
    /// The count is the number of corrected words (reported to the OS as
    /// corrected machine-check events).
    Corrected(u32),
    /// At least one word had exactly two flipped bits: detected but
    /// uncorrectable (fatal machine-check on real hardware).
    Uncorrectable(u32),
    /// At least one word had three or more flipped bits: the code may be
    /// silently defeated (returned data is corrupt with no error signal).
    SilentlyCorrupt(u32),
}

impl ReadIntegrity {
    /// Whether the returned data is trustworthy.
    #[must_use]
    pub fn data_is_correct(&self) -> bool {
        matches!(self, ReadIntegrity::Clean | ReadIntegrity::Corrected(_))
    }
}

/// Classifies a read given the number of flipped bits in each 64-bit word of
/// the region, under `mode`.
///
/// `flips_per_word` contains one entry per word that has at least one flip
/// (words without flips are omitted).
#[must_use]
pub fn classify(mode: EccMode, flips_per_word: &[u32]) -> ReadIntegrity {
    if flips_per_word.iter().all(|&n| n == 0) {
        return ReadIntegrity::Clean;
    }
    match mode {
        EccMode::None => {
            let n = flips_per_word.iter().filter(|&&n| n > 0).count() as u32;
            ReadIntegrity::SilentlyCorrupt(n)
        }
        EccMode::SecDed => {
            let silent = flips_per_word.iter().filter(|&&n| n >= 3).count() as u32;
            if silent > 0 {
                return ReadIntegrity::SilentlyCorrupt(silent);
            }
            let fatal = flips_per_word.iter().filter(|&&n| n == 2).count() as u32;
            if fatal > 0 {
                return ReadIntegrity::Uncorrectable(fatal);
            }
            let corrected = flips_per_word.iter().filter(|&&n| n == 1).count() as u32;
            ReadIntegrity::Corrected(corrected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_when_no_flips() {
        assert_eq!(classify(EccMode::SecDed, &[]), ReadIntegrity::Clean);
        assert_eq!(classify(EccMode::SecDed, &[0, 0]), ReadIntegrity::Clean);
        assert_eq!(classify(EccMode::None, &[]), ReadIntegrity::Clean);
    }

    #[test]
    fn single_bit_flips_are_corrected() {
        let r = classify(EccMode::SecDed, &[1, 0, 1]);
        assert_eq!(r, ReadIntegrity::Corrected(2));
        assert!(r.data_is_correct());
    }

    #[test]
    fn double_bit_flips_are_fatal() {
        let r = classify(EccMode::SecDed, &[1, 2]);
        assert_eq!(r, ReadIntegrity::Uncorrectable(1));
        assert!(!r.data_is_correct());
    }

    #[test]
    fn triple_flips_defeat_ecc_silently() {
        // §2.5: malicious workloads can induce uncorrected flips despite ECC.
        let r = classify(EccMode::SecDed, &[3, 2, 1]);
        assert_eq!(r, ReadIntegrity::SilentlyCorrupt(1));
        assert!(!r.data_is_correct());
    }

    #[test]
    fn no_ecc_passes_everything_through() {
        let r = classify(EccMode::None, &[1]);
        assert_eq!(r, ReadIntegrity::SilentlyCorrupt(1));
    }
}
