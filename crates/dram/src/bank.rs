//! Per-bank disturbance and refresh state.

use crate::flip::{weak_cells, WeakCell};
use crate::profile::DimmProfile;
use crate::rowmap::RowMap;
use crate::trr::TrrTracker;
use dram_addr::RankSide;

/// Side index helper (A = 0, B = 1) used for compact keys.
#[must_use]
pub(crate) fn side_idx(side: RankSide) -> u8 {
    match side {
        RankSide::A => 0,
        RankSide::B => 1,
    }
}

/// Packs a `(side, internal_row)` victim coordinate into a [`RowMap`] key.
#[must_use]
#[inline]
pub(crate) fn victim_key(side: u8, internal_row: u32) -> u64 {
    (side as u64) << 32 | internal_row as u64
}

/// Disturbance state of one victim half-row.
///
/// Disturbance is stored in *segment* form, `base + w * n`: `n` activations
/// at the current per-ACT weight `w` on top of a folded `base` from earlier
/// weight regimes (RowPress changes `w` mid-window). This makes a coalesced
/// burst of `k` activations (`n += k`) produce bit-for-bit the same float as
/// `k` sequential per-ACT updates — both evaluate `base + w * n` with one
/// multiply and one add — which is what pins the burst path to the reference
/// path in the equivalence proptests.
#[derive(Debug, Clone)]
pub(crate) struct VictimState {
    /// Folded disturbance from earlier weight segments (since last refresh).
    pub base: f64,
    /// Per-activation weight of the current segment.
    pub w: f64,
    /// Activation count in the current segment.
    pub n: u64,
    /// This half-row's weak cells, sorted by flip threshold.
    pub cells: Vec<WeakCell>,
    /// Index of the next unflipped weak cell at the current disturbance.
    pub next_cell: usize,
}

impl VictimState {
    /// Accumulated weighted disturbance since this half-row's last refresh.
    #[inline]
    #[must_use]
    pub(crate) fn disturb(&self) -> f64 {
        self.base + self.w * self.n as f64
    }

    /// Records `k` activations at weight `w`, folding the previous segment
    /// if the weight changed. Returns `(base, n_before)` so callers can
    /// evaluate the disturbance after any prefix `j <= k` of the burst as
    /// `base + w * (n_before + j)` — exactly the value `j` sequential
    /// per-ACT calls would have produced.
    #[inline]
    pub(crate) fn add(&mut self, w: f64, k: u64) -> (f64, u64) {
        if self.w.to_bits() != w.to_bits() {
            self.base += self.w * self.n as f64;
            self.w = w;
            self.n = 0;
        }
        let n_before = self.n;
        self.n += k;
        (self.base, n_before)
    }
}

/// Mutable state of a single DRAM bank: victim disturbance accumulators,
/// per-side TRR trackers, and the auto-refresh pointer.
#[derive(Debug)]
pub struct BankState {
    pub(crate) victims: RowMap<VictimState>,
    pub(crate) trr: [TrrTracker; 2],
    /// Next internal row the distributed auto-refresh will cover.
    pub(crate) refresh_ptr: u32,
    /// Total activations this bank has seen (diagnostics).
    pub acts: u64,
}

impl BankState {
    /// Fresh bank state with the given TRR configuration.
    #[must_use]
    pub fn new(trr_capacity: usize, trr_served_per_ref: usize) -> Self {
        Self {
            victims: RowMap::new(),
            trr: [
                TrrTracker::new(trr_capacity, trr_served_per_ref),
                TrrTracker::new(trr_capacity, trr_served_per_ref),
            ],
            refresh_ptr: 0,
            acts: 0,
        }
    }

    /// Returns the victim state for `(side, internal_row)`, creating it with
    /// its deterministic weak-cell population on first touch.
    #[inline]
    pub(crate) fn victim_mut(
        &mut self,
        profile: &DimmProfile,
        bank: u32,
        side: RankSide,
        internal_row: u32,
        half_row_bytes: u32,
    ) -> &mut VictimState {
        self.victims
            .get_or_insert_with(victim_key(side_idx(side), internal_row), || VictimState {
                base: 0.0,
                w: 0.0,
                n: 0,
                cells: weak_cells(profile, bank, side, internal_row, half_row_bytes),
                next_cell: 0,
            })
    }

    /// Refreshes one half-row: clears its disturbance accumulator and
    /// re-arms its weak cells (charge restored; already-flipped data stays
    /// flipped until rewritten or scrubbed).
    #[inline]
    pub(crate) fn refresh_half_row(&mut self, side: u8, internal_row: u32) {
        if let Some(v) = self.victims.get_mut(victim_key(side, internal_row)) {
            v.base = 0.0;
            v.n = 0;
            v.next_cell = 0;
        }
    }

    /// Refreshes both half-rows of an internal row.
    pub(crate) fn refresh_row(&mut self, internal_row: u32) {
        self.refresh_half_row(0, internal_row);
        self.refresh_half_row(1, internal_row);
    }

    /// Peak accumulated disturbance across all victims (diagnostics).
    #[must_use]
    pub fn max_disturbance(&self) -> f64 {
        self.victims
            .values()
            .map(VictimState::disturb)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_state_created_lazily_with_cells() {
        let p = DimmProfile::default_eval();
        let mut b = BankState::new(4, 2);
        assert!(b.victims.is_empty());
        let v = b.victim_mut(&p, 0, RankSide::A, 7, 4096);
        assert!(!v.cells.is_empty());
        assert_eq!(v.disturb(), 0.0);
        assert_eq!(b.victims.len(), 1);
    }

    #[test]
    fn refresh_clears_disturbance_and_rearms() {
        let p = DimmProfile::default_eval();
        let mut b = BankState::new(4, 2);
        {
            let v = b.victim_mut(&p, 0, RankSide::A, 7, 4096);
            v.add(1.0, 123);
            v.next_cell = 2;
            assert_eq!(v.disturb(), 123.0);
        }
        b.refresh_row(7);
        let v = b.victims.get(victim_key(0, 7)).unwrap();
        assert_eq!(v.disturb(), 0.0);
        assert_eq!(v.next_cell, 0);
    }

    #[test]
    fn victim_add_burst_matches_sequential_bitwise() {
        // The core FP-equivalence invariant: k sequential add(w, 1) calls
        // leave the exact same (base, w, n) as one add(w, k), across weight
        // changes (RowPress) and refreshes.
        let regimes = [(1.0f64, 7u64), (1.2, 3), (1.2, 5), (0.2, 11), (1.0, 1)];
        let mut seq = VictimState {
            base: 0.0,
            w: 0.0,
            n: 0,
            cells: Vec::new(),
            next_cell: 0,
        };
        let mut burst = seq.clone();
        for &(w, k) in &regimes {
            for _ in 0..k {
                seq.add(w, 1);
            }
            let (base, n_before) = burst.add(w, k);
            assert_eq!(base.to_bits(), burst.base.to_bits());
            assert_eq!(burst.n, n_before + k);
            assert_eq!(seq.base.to_bits(), burst.base.to_bits());
            assert_eq!(seq.w.to_bits(), burst.w.to_bits());
            assert_eq!(seq.n, burst.n);
            assert_eq!(seq.disturb().to_bits(), burst.disturb().to_bits());
        }
    }

    #[test]
    fn refresh_of_untouched_row_is_a_noop() {
        let mut b = BankState::new(4, 2);
        b.refresh_row(1000);
        assert!(b.victims.is_empty());
    }

    #[test]
    fn max_disturbance_tracks_peak() {
        let p = DimmProfile::default_eval();
        let mut b = BankState::new(0, 0);
        assert_eq!(b.max_disturbance(), 0.0);
        b.victim_mut(&p, 0, RankSide::A, 1, 4096).add(1.0, 5);
        b.victim_mut(&p, 0, RankSide::B, 2, 4096).add(1.0, 9);
        assert_eq!(b.max_disturbance(), 9.0);
    }
}
