//! Property tests for the memory controller: stats consistency, clock
//! monotonicity, and scheduling invariants under random traces.

use dram::DramSystem;
use dram_addr::mini_decoder;
use memctrl::{MemOp, MemoryController};
use proptest::prelude::*;

fn arb_op(cap: u64) -> impl Strategy<Value = MemOp> {
    (
        0..cap / 64,
        any::<bool>(),
        0u64..50_000,
        any::<bool>(),
        0u16..4,
    )
        .prop_map(|(line, write, gap, dep, thread)| MemOp {
            phys: line * 64,
            write,
            gap_ps: gap,
            dependent: dep,
            thread,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every op is served exactly once; hit/miss/conflict counts partition
    /// accesses; total latency and elapsed time are coherent.
    #[test]
    fn stats_are_consistent(ops in prop::collection::vec(arb_op(1 << 28), 1..300)) {
        let dec = mini_decoder();
        let mut dram = DramSystem::new(*dec.geometry());
        let mut ctrl = MemoryController::new(dec).without_physics();
        let n = ops.len() as u64;
        let res = ctrl.run_trace(&mut dram, ops);
        prop_assert_eq!(res.stats.accesses, n);
        prop_assert_eq!(
            res.stats.row_hits + res.stats.row_misses + res.stats.row_conflicts,
            n
        );
        prop_assert_eq!(res.stats.bytes, n * 64);
        prop_assert!(res.stats.total_latency_ps > 0);
        prop_assert!(res.elapsed_ps > 0);
        // Per-thread latency sums match the global sum.
        let per_thread: u64 = res.thread_latency.iter().map(|&(_, (s, _))| s).sum();
        prop_assert_eq!(per_thread, res.stats.total_latency_ps);
        let per_thread_n: u64 = res.thread_latency.iter().map(|&(_, (_, c))| c).sum();
        prop_assert_eq!(per_thread_n, n);
    }

    /// The controller clock never goes backwards across traces.
    #[test]
    fn clock_is_monotonic(
        a in prop::collection::vec(arb_op(1 << 28), 1..100),
        b in prop::collection::vec(arb_op(1 << 28), 1..100),
    ) {
        let dec = mini_decoder();
        let mut dram = DramSystem::new(*dec.geometry());
        let mut ctrl = MemoryController::new(dec).without_physics();
        ctrl.run_trace(&mut dram, a);
        let t1 = ctrl.clock_ps();
        ctrl.run_trace(&mut dram, b);
        prop_assert!(ctrl.clock_ps() >= t1);
    }

    /// Mean latency is bounded below by the hit latency and the trace's
    /// completions never precede their arrivals.
    #[test]
    fn latency_floor_holds(ops in prop::collection::vec(arb_op(1 << 24), 1..200)) {
        let dec = mini_decoder();
        let mut dram = DramSystem::new(*dec.geometry());
        let mut ctrl = MemoryController::new(dec).without_physics();
        let res = ctrl.run_trace(&mut dram, ops);
        let hit_floor_ns = 17.0;
        prop_assert!(
            res.stats.mean_latency_ns() >= hit_floor_ns,
            "mean {} below physical floor",
            res.stats.mean_latency_ns()
        );
    }
}
