//! Pre-decoded replay programs: the config-specific half of trace
//! compilation.
//!
//! A [`CompiledTrace`] is a guest trace resolved all the way to scheduling
//! coordinates: each op carries the flat bank, media row, and rank/channel
//! ordinals that [`MemoryController::run_trace`] would have derived from
//! its window-fill decode, so [`MemoryController::run_compiled`] replays it
//! with no per-op decode or ordinal arithmetic at all. Decode-cache
//! accounting is preserved exactly — compilation runs a [`StreamDecoder`]
//! over the trace in order and stores its counters; replay credits them
//! into the controller's TLB so exported telemetry is identical to the
//! direct path.
//!
//! [`MemoryController`]: crate::MemoryController
//! [`MemoryController::run_trace`]: crate::MemoryController::run_trace
//! [`MemoryController::run_compiled`]: crate::MemoryController::run_compiled

use crate::controller::MemOp;
use dram_addr::{StreamDecoder, SystemAddressDecoder};

/// Flat-bank sentinel for ops whose address failed to decode. Such ops are
/// dropped at replay, exactly as [`run_trace`] drops undecoded window
/// entries — but they still occupy window and thread bookkeeping.
///
/// [`run_trace`]: crate::MemoryController::run_trace
pub(crate) const INVALID_BANK: u32 = u32::MAX;

/// One pre-decoded trace op, reduced to exactly what the scheduler and
/// timing model consume (24 bytes, so replay streams the program through
/// cache efficiently).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledOp {
    /// CPU time before issue on this thread, picoseconds.
    pub gap_ps: u64,
    /// Media row of the access (unset when invalid).
    pub row: u32,
    /// Machine-wide flat bank id, or [`INVALID_BANK`] for dropped ops.
    pub bank: u32,
    /// [`dram_addr::Geometry::rank_ordinal`] of the access.
    pub rank_ord: u16,
    /// [`dram_addr::Geometry::channel_ordinal`] of the access.
    pub chan_ord: u16,
    /// Issuing hardware thread.
    pub thread: u16,
    /// Write (true) or read (false).
    pub write: bool,
    /// Cannot issue before this thread's previous op completes.
    pub dependent: bool,
}

/// A trace compiled against one concrete address-decoder configuration,
/// ready for decode-free replay.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    pub(crate) ops: Vec<CompiledOp>,
    /// Decode-cache counters accumulated while compiling, credited into
    /// the replaying controller's TLB (`hits`, `misses`, `aliases`).
    pub(crate) tlb_hits: u64,
    pub(crate) tlb_misses: u64,
    pub(crate) tlb_aliases: u64,
}

impl CompiledTrace {
    /// Decodes `ops` in trace order against `decoder`.
    ///
    /// The decode order matters: [`run_trace`] decodes each op once as it
    /// enters the lookahead window, which is trace order, so a fresh
    /// streaming decoder walked the same way reproduces the exact TLB
    /// hit/miss/alias sequence the direct path would produce.
    ///
    /// [`run_trace`]: crate::MemoryController::run_trace
    #[must_use]
    pub fn compile<I>(decoder: SystemAddressDecoder, ops: I) -> Self
    where
        I: IntoIterator<Item = MemOp>,
    {
        let geometry = *decoder.geometry();
        let iter = ops.into_iter();
        let mut decoded = Vec::with_capacity(iter.size_hint().0);
        let mut stream = StreamDecoder::new(decoder);
        for op in iter {
            let (row, bank, rank_ord, chan_ord) = match stream.decode_with_bank(op.phys) {
                Ok((m, bank)) => (
                    m.row,
                    bank.0,
                    geometry.rank_ordinal(m.socket, m.channel, m.dimm, m.rank) as u16,
                    geometry.channel_ordinal(m.socket, m.channel) as u16,
                ),
                // Placeholder coordinates; replay drops the op by sentinel.
                Err(_) => (0, INVALID_BANK, 0, 0),
            };
            decoded.push(CompiledOp {
                gap_ps: op.gap_ps,
                row,
                bank,
                rank_ord,
                chan_ord,
                thread: op.thread,
                write: op.write,
                dependent: op.dependent,
            });
        }
        let (tlb_hits, tlb_misses, tlb_aliases) = stream.counters();
        Self {
            ops: decoded,
            tlb_hits,
            tlb_misses,
            tlb_aliases,
        }
    }

    /// Number of compiled ops (including invalid ones, which replay as
    /// drops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Decode-cache `(hits, misses, aliases)` accumulated at compile time.
    #[must_use]
    pub fn tlb_counters(&self) -> (u64, u64, u64) {
        (self.tlb_hits, self.tlb_misses, self.tlb_aliases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::mini_decoder;

    #[test]
    fn compile_marks_invalid_ops_and_keeps_order() {
        let dec = mini_decoder();
        let cap = dec.capacity();
        let ops = [
            MemOp::read(0),
            MemOp::read(cap + 64),
            MemOp::write(128).on_thread(3),
        ];
        let prog = CompiledTrace::compile(dec.clone(), ops);
        assert_eq!(prog.len(), 3);
        assert!(!prog.is_empty());
        assert_ne!(prog.ops[0].bank, INVALID_BANK);
        assert_eq!(prog.ops[1].bank, INVALID_BANK);
        assert_eq!(prog.ops[2].thread, 3);
        assert!(prog.ops[2].write);
        let g = dec.geometry();
        let expect = dec.decode(128).unwrap();
        assert_eq!(prog.ops[2].row, expect.row);
        assert_eq!(
            prog.ops[2].rank_ord as usize,
            g.rank_ordinal(expect.socket, expect.channel, expect.dimm, expect.rank)
        );
        assert_eq!(
            prog.ops[2].chan_ord as usize,
            g.channel_ordinal(expect.socket, expect.channel)
        );
        // Invalid addresses never touch the decode counters.
        let (h, m, _) = prog.tlb_counters();
        assert_eq!(h + m, 2);
    }
}
