//! The retained hash-map controller: the pre-flat-array reference
//! implementation.
//!
//! [`HashedController`] keeps per-bank, per-rank, and per-channel state in
//! `HashMap`s and re-decodes every pending op on every FR-FCFS pick —
//! exactly the structure [`crate::MemoryController`] had before its state
//! was flattened into geometry-ordinal-indexed `Vec`s and fronted by the
//! decode TLB. It is kept for two reasons: the Criterion benches compare
//! the two head-to-head to quantify the flattening win, and an equivalence
//! test asserts both produce identical [`TraceResult`]s, which pins the
//! refactor to the original semantics.

use crate::bankfsm::{AccessKind, BankFsm, PagePolicy};
use crate::controller::{AccessResult, MemOp, TraceResult};
use crate::stats::CtrlStats;
use crate::timing::DdrTimings;
use dram::DramSystem;
use dram_addr::{AddrError, BankId, SystemAddressDecoder};
use std::collections::{HashMap, VecDeque};

/// Per-rank activate bookkeeping (tFAW and tRRD).
#[derive(Debug, Default, Clone)]
struct RankState {
    recent_acts: VecDeque<u64>,
    last_act_ps: u64,
}

/// The original hash-map-backed FR-FCFS controller, retained as the
/// baseline for benchmarks and equivalence tests.
#[derive(Debug)]
pub struct HashedController {
    decoder: SystemAddressDecoder,
    timings: DdrTimings,
    banks: HashMap<BankId, BankFsm>,
    bus_free: HashMap<(u16, u16), u64>,
    ranks: HashMap<(u16, u16, u16, u16), RankState>,
    next_ref_ps: u64,
    stats: CtrlStats,
    bank_touches: HashMap<BankId, u64>,
    drive_physics: bool,
    /// Row-buffer management policy.
    pub policy: PagePolicy,
    /// FR-FCFS lookahead window for [`Self::run_trace`].
    pub window: usize,
    dram_sync_counter: u32,
    /// Pending-window occupancy at each FR-FCFS pick, observed at the same
    /// loop position as the flat controller so telemetry is comparable.
    queue_depth: telemetry::HistoSnapshot,
    /// Per-access latency distribution, nanoseconds.
    latency_ns: telemetry::HistoSnapshot,
}

impl HashedController {
    /// Creates a controller with default DDR4-2933 timings.
    #[must_use]
    pub fn new(decoder: SystemAddressDecoder) -> Self {
        Self::with_timings(decoder, DdrTimings::default())
    }

    /// Creates a controller with explicit timings.
    ///
    /// # Panics
    ///
    /// Panics if `timings` are inconsistent.
    #[must_use]
    pub fn with_timings(decoder: SystemAddressDecoder, timings: DdrTimings) -> Self {
        timings.validate().expect("valid timings");
        Self {
            decoder,
            timings,
            banks: HashMap::new(),
            bus_free: HashMap::new(),
            ranks: HashMap::new(),
            next_ref_ps: timings.t_refi_ps,
            stats: CtrlStats::default(),
            bank_touches: HashMap::new(),
            drive_physics: true,
            policy: PagePolicy::Open,
            window: 16,
            dram_sync_counter: 0,
            queue_depth: telemetry::HistoSnapshot::default(),
            latency_ns: telemetry::HistoSnapshot::default(),
        }
    }

    /// Switches to a closed-page (auto-precharge) policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PagePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Disables driving the DRAM disturbance physics on activates.
    #[must_use]
    pub fn without_physics(mut self) -> Self {
        self.drive_physics = false;
        self
    }

    /// The decoder in use.
    #[must_use]
    pub fn decoder(&self) -> &SystemAddressDecoder {
        &self.decoder
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Number of distinct banks touched so far.
    #[must_use]
    pub fn banks_touched(&self) -> usize {
        self.bank_touches.len()
    }

    /// Adds this controller's totals into `reg`. Metric-for-metric
    /// comparable with [`crate::MemoryController::export_telemetry`],
    /// except there is no `tlb` child (this implementation decodes
    /// uncached); the equivalence test compares the shared metrics.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        self.stats.export_telemetry(reg);
        reg.histo("queue_depth").merge_from(&self.queue_depth);
        reg.histo("latency_ns").merge_from(&self.latency_ns);
        reg.counter("banks_touched")
            .add(self.bank_touches.len() as u64);
        let per_bank = reg.histo("accesses_per_bank");
        for &n in self.bank_touches.values() {
            per_bank.observe(n);
        }
    }

    /// Serves one access arriving at `arrival_ps`.
    pub fn access_at(
        &mut self,
        dram: &mut DramSystem,
        phys: u64,
        write: bool,
        arrival_ps: u64,
    ) -> Result<AccessResult, AddrError> {
        let media = self.decoder.decode(phys)?;
        let bank_id = media.global_bank(self.decoder.geometry());
        // Distributed refresh: when the clock crosses tREFI, steal tRFC from
        // every bank (coarse model of per-rank staggered REF).
        while arrival_ps >= self.next_ref_ps {
            let t = self.timings;
            for fsm in self.banks.values_mut() {
                fsm.precharge(self.next_ref_ps, &t);
                fsm.ready_ps += t.t_rfc_ps;
            }
            self.next_ref_ps += t.t_refi_ps;
        }
        let fsm = self.banks.entry(bank_id).or_default();
        // Rank-level ACT constraints apply only if an ACT will be issued.
        let needs_act = fsm.classify(media.row) != AccessKind::RowHit;
        let mut arrival = arrival_ps;
        let rank_key = (media.socket, media.channel, media.dimm, media.rank);
        if needs_act {
            let rank = self.ranks.entry(rank_key).or_default();
            arrival = arrival.max(rank.last_act_ps + self.timings.t_rrd_ps);
            if rank.recent_acts.len() == 4 {
                let oldest = rank.recent_acts[0];
                arrival = arrival.max(oldest + self.timings.t_faw_ps);
            }
        }
        let (kind, act_start, bank_done) =
            fsm.access_with_policy(media.row, arrival, &self.timings, self.policy);
        if kind != AccessKind::RowHit {
            let rank = self.ranks.entry(rank_key).or_default();
            rank.last_act_ps = act_start;
            rank.recent_acts.push_back(act_start);
            while rank.recent_acts.len() > 4 {
                rank.recent_acts.pop_front();
            }
        }
        // Channel data bus: the burst occupies the bus; queue if busy.
        let bus = self
            .bus_free
            .entry((media.socket, media.channel))
            .or_insert(0);
        let data_start = (bank_done - self.timings.t_burst_ps).max(*bus);
        let done = data_start + self.timings.t_burst_ps;
        *bus = done;
        if done > bank_done {
            // Bus queueing delays this bank's next availability too.
            self.banks.get_mut(&bank_id).expect("bank exists").ready_ps = done;
        }
        let latency = done - arrival_ps;
        self.stats.record(kind, !write, latency, done);
        self.latency_ns.observe(latency / 1000);
        *self.bank_touches.entry(bank_id).or_insert(0) += 1;
        if self.drive_physics && kind != AccessKind::RowHit {
            dram.activate(&media, 0);
            self.dram_sync_counter += 1;
            if self.dram_sync_counter >= 512 {
                self.dram_sync_counter = 0;
                let clock_ns = self.stats.clock_ps / 1000;
                if clock_ns > dram.now_ns() {
                    dram.advance_ns(clock_ns - dram.now_ns());
                }
            }
        }
        Ok(AccessResult {
            kind,
            done_ps: done,
            latency_ps: latency,
        })
    }

    /// Replays a trace with FR-FCFS scheduling over a lookahead window,
    /// re-decoding pending ops on every pick as the original did.
    pub fn run_trace<I>(&mut self, dram: &mut DramSystem, ops: I) -> TraceResult
    where
        I: IntoIterator<Item = MemOp>,
    {
        let start_clock = self.stats.clock_ps;
        let before = self.stats;
        let mut thread_cursor: HashMap<u16, u64> = HashMap::new();
        let mut thread_last_done: HashMap<u16, u64> = HashMap::new();
        let mut outstanding: HashMap<u16, u32> = HashMap::new();
        let mut first_issue: Option<u64> = None;
        let mut pending: VecDeque<(MemOp, u64)> = VecDeque::new();
        let mut staged: Option<MemOp> = None;
        let mut thread_latency: HashMap<u16, (u64, u64)> = HashMap::new();
        let mut bypassed = 0u32;
        let mut iter = ops.into_iter();
        loop {
            while pending.len() < self.window.max(1) {
                let Some(op) = staged.take().or_else(|| iter.next()) else {
                    break;
                };
                if op.dependent && outstanding.get(&op.thread).copied().unwrap_or(0) > 0 {
                    staged = Some(op);
                    break;
                }
                let cursor = thread_cursor.entry(op.thread).or_insert(start_clock);
                let mut issue = *cursor + op.gap_ps;
                if op.dependent {
                    issue = issue.max(
                        thread_last_done
                            .get(&op.thread)
                            .copied()
                            .unwrap_or(start_clock),
                    );
                }
                *cursor = issue;
                first_issue.get_or_insert(issue);
                *outstanding.entry(op.thread).or_insert(0) += 1;
                pending.push_back((op, issue));
            }
            let Some(_) = pending.front() else { break };
            self.queue_depth.observe(pending.len() as u64);
            let choice = if bypassed >= self.window as u32 {
                0
            } else {
                pending
                    .iter()
                    .position(|(op, _)| {
                        self.decoder.decode(op.phys).ok().is_some_and(|m| {
                            let bank = m.global_bank(self.decoder.geometry());
                            self.banks
                                .get(&bank)
                                .is_some_and(|f| f.classify(m.row) == AccessKind::RowHit)
                        })
                    })
                    .unwrap_or(0)
            };
            bypassed = if choice == 0 { 0 } else { bypassed + 1 };
            let (op, issue) = pending.remove(choice).expect("choice is in range");
            *outstanding.get_mut(&op.thread).expect("counted") -= 1;
            if let Ok(res) = self.access_at(dram, op.phys, op.write, issue) {
                let last = thread_last_done.entry(op.thread).or_insert(start_clock);
                *last = (*last).max(res.done_ps);
                let lat = thread_latency.entry(op.thread).or_insert((0, 0));
                lat.0 += res.latency_ps;
                lat.1 += 1;
            }
        }
        let elapsed = self
            .stats
            .clock_ps
            .saturating_sub(first_issue.unwrap_or(start_clock));
        let mut delta = self.stats;
        delta.accesses -= before.accesses;
        delta.row_hits -= before.row_hits;
        delta.row_misses -= before.row_misses;
        delta.row_conflicts -= before.row_conflicts;
        delta.reads -= before.reads;
        delta.total_latency_ps -= before.total_latency_ps;
        delta.bytes -= before.bytes;
        let mut thread_latency: Vec<(u16, (u64, u64))> = thread_latency.into_iter().collect();
        thread_latency.sort_unstable_by_key(|&(t, _)| t);
        TraceResult {
            stats: delta,
            elapsed_ps: elapsed,
            thread_latency,
        }
    }
}
