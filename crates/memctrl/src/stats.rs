//! Controller statistics.

use crate::bankfsm::AccessKind;

/// Running statistics of a memory controller.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CtrlStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to closed banks.
    pub row_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Reads (the remainder are writes).
    pub reads: u64,
    /// Sum of per-access latency in picoseconds.
    pub total_latency_ps: u64,
    /// Completion time of the last access (controller clock), picoseconds.
    pub clock_ps: u64,
    /// Bytes transferred (64 B per access).
    pub bytes: u64,
}

impl CtrlStats {
    /// Records one access.
    pub fn record(&mut self, kind: AccessKind, is_read: bool, latency_ps: u64, done_ps: u64) {
        self.accesses += 1;
        match kind {
            AccessKind::RowHit => self.row_hits += 1,
            AccessKind::RowMiss => self.row_misses += 1,
            AccessKind::RowConflict => self.row_conflicts += 1,
        }
        if is_read {
            self.reads += 1;
        }
        self.total_latency_ps += latency_ps;
        self.clock_ps = self.clock_ps.max(done_ps);
        self.bytes += 64;
    }

    /// Mean access latency in nanoseconds.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.total_latency_ps as f64 / self.accesses as f64 / 1000.0
    }

    /// Row-buffer hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.accesses as f64
    }

    /// Adds these totals into `reg` (`accesses`, hit/miss/conflict split,
    /// read count, latency sum, bytes). Both controller implementations
    /// export through this, so their telemetry is comparable field by
    /// field.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("accesses").add(self.accesses);
        reg.counter("row_hits").add(self.row_hits);
        reg.counter("row_misses").add(self.row_misses);
        reg.counter("row_conflicts").add(self.row_conflicts);
        reg.counter("reads").add(self.reads);
        reg.counter("latency_ps_total").add(self.total_latency_ps);
        reg.counter("bytes").add(self.bytes);
    }

    /// Achieved bandwidth in GiB/s over the elapsed controller clock.
    #[must_use]
    pub fn bandwidth_gib_s(&self) -> f64 {
        if self.clock_ps == 0 {
            return 0.0;
        }
        let secs = self.clock_ps as f64 * 1e-12;
        self.bytes as f64 / (1u64 << 30) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_derives() {
        let mut s = CtrlStats::default();
        s.record(AccessKind::RowHit, true, 10_000, 50_000);
        s.record(AccessKind::RowConflict, false, 30_000, 90_000);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.clock_ps, 90_000);
        assert!((s.mean_latency_ns() - 20.0).abs() < 1e-9);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert!(s.bandwidth_gib_s() > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CtrlStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.bandwidth_gib_s(), 0.0);
    }
}
