//! The FR-FCFS memory controller.
//!
//! All scheduling state lives in dense `Vec`s indexed by ordinals derived
//! from the [`Geometry`] (flat bank id, channel ordinal, rank ordinal)
//! rather than hash maps — the controller's hot path does no hashing at
//! all. Address decode goes through a [`DecodeTlb`], and [`run_trace`]
//! decodes each op once at window-fill time instead of re-decoding the
//! whole pending window on every FR-FCFS pick. The pre-flattening
//! implementation is retained as [`crate::HashedController`] for benchmark
//! comparison and semantic-equivalence tests.
//!
//! [`run_trace`]: MemoryController::run_trace

use crate::bankfsm::{AccessKind, BankFsm, PagePolicy};
use crate::compiled::{CompiledTrace, INVALID_BANK};
use crate::stats::CtrlStats;
use crate::timing::DdrTimings;
use dram::DramSystem;
use dram_addr::{AddrError, BankId, DecodeTlb, Geometry, MediaAddress, SystemAddressDecoder};
use std::collections::VecDeque;

/// One memory operation of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Host physical address.
    pub phys: u64,
    /// Write (true) or read (false).
    pub write: bool,
    /// CPU time (picoseconds) this thread spends between its previous op's
    /// issue and this op's issue: models compute between memory accesses.
    pub gap_ps: u64,
    /// If true, this op cannot issue before this *thread's* previous op
    /// completes (models a data dependency, e.g. pointer chasing).
    pub dependent: bool,
    /// Issuing hardware thread. Threads progress independently: gaps and
    /// dependencies apply per thread, so a 40-thread trace keeps the
    /// memory system far busier than a serial one.
    pub thread: u16,
}

impl MemOp {
    /// An independent read with no preceding compute gap, on thread 0.
    #[must_use]
    pub const fn read(phys: u64) -> Self {
        Self {
            phys,
            write: false,
            gap_ps: 0,
            dependent: false,
            thread: 0,
        }
    }

    /// An independent write with no preceding compute gap, on thread 0.
    #[must_use]
    pub const fn write(phys: u64) -> Self {
        Self {
            phys,
            write: true,
            gap_ps: 0,
            dependent: false,
            thread: 0,
        }
    }

    /// Marks the op as dependent on its thread's previous op completing.
    #[must_use]
    pub const fn after_previous(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Adds a compute gap before the op.
    #[must_use]
    pub const fn with_gap_ps(mut self, gap_ps: u64) -> Self {
        self.gap_ps = gap_ps;
        self
    }

    /// Assigns the op to a hardware thread.
    #[must_use]
    pub const fn on_thread(mut self, thread: u16) -> Self {
        self.thread = thread;
        self
    }
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Row-buffer interaction.
    pub kind: AccessKind,
    /// Completion time (data burst end), picoseconds.
    pub done_ps: u64,
    /// Arrival-to-completion latency, picoseconds.
    pub latency_ps: u64,
}

/// Result of replaying a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// Controller statistics accumulated over the trace.
    pub stats: CtrlStats,
    /// Time from the first issue to the last completion, picoseconds.
    pub elapsed_ps: u64,
    /// Per-thread `(latency sum ps, access count)` — for per-tenant
    /// accounting when several VMs' threads share one trace. Sorted by
    /// thread id, ascending; threads with no completed access are omitted.
    pub thread_latency: Vec<(u16, (u64, u64))>,
}

impl TraceResult {
    /// Elapsed time in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ps as f64 * 1e-9
    }

    /// Achieved bandwidth over the trace, GiB/s.
    #[must_use]
    pub fn bandwidth_gib_s(&self) -> f64 {
        if self.elapsed_ps == 0 {
            return 0.0;
        }
        self.stats.bytes as f64 / (1u64 << 30) as f64 / (self.elapsed_ps as f64 * 1e-12)
    }

    /// Mean access latency (ns) over a set of threads (e.g. one tenant's).
    #[must_use]
    pub fn mean_latency_ns_of(&self, threads: impl IntoIterator<Item = u16>) -> f64 {
        let (mut sum, mut count) = (0u64, 0u64);
        for t in threads {
            if let Ok(i) = self.thread_latency.binary_search_by_key(&t, |&(id, _)| id) {
                let (s, c) = self.thread_latency[i].1;
                sum += s;
                count += c;
            }
        }
        if count == 0 {
            return 0.0;
        }
        sum as f64 / count as f64 / 1000.0
    }
}

/// A buffered run of back-to-back same-row activations, awaiting coalesced
/// issue to the device as one [`DramSystem::activate_burst`]. While a run is
/// pending no other device call is made, so flushing it late is
/// bit-identical to having issued each ACT at buffering time.
#[derive(Debug, Clone, Copy)]
struct ActRun {
    bank: BankId,
    row: u32,
    count: u64,
}

/// Per-rank activate bookkeeping (tFAW and tRRD).
#[derive(Debug, Default, Clone)]
struct RankState {
    recent_acts: VecDeque<u64>,
    last_act_ps: u64,
}

/// Per-thread issue state during [`MemoryController::run_trace`], stored in
/// a dense `Vec` indexed by thread id.
#[derive(Debug, Clone, Copy)]
struct PerThread {
    cursor: u64,
    last_done: u64,
    outstanding: u32,
    lat_sum: u64,
    lat_count: u64,
}

/// Returns the state slot for `thread`, growing the table on first sight.
fn per_thread(threads: &mut Vec<PerThread>, thread: u16, start_clock: u64) -> &mut PerThread {
    let idx = thread as usize;
    if idx >= threads.len() {
        threads.resize(
            idx + 1,
            PerThread {
                cursor: start_clock,
                last_done: start_clock,
                outstanding: 0,
                lat_sum: 0,
                lat_count: 0,
            },
        );
    }
    &mut threads[idx]
}

/// A window entry of the replay loops: issue time plus the scheduling
/// coordinates of the op's decode (performed once, at window entry —
/// `bank` is [`INVALID_BANK`] when the address failed to decode). 24 bytes,
/// so the per-pick FR-FCFS scan streams over a compact contiguous window.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    issue: u64,
    bank: u32,
    row: u32,
    rank_ord: u16,
    chan_ord: u16,
    thread: u16,
    write: bool,
}

/// The memory controller: address decode, FR-FCFS scheduling, DDR timing.
///
/// # Examples
///
/// ```
/// use dram::DramSystem;
/// use dram_addr::mini_decoder;
/// use memctrl::{MemOp, MemoryController};
///
/// let dec = mini_decoder();
/// let mut dram = DramSystem::new(*dec.geometry());
/// let mut ctrl = MemoryController::new(dec);
/// let ops: Vec<MemOp> = (0..1024).map(|i| MemOp::read(i * 64)).collect();
/// let result = ctrl.run_trace(&mut dram, ops);
/// assert_eq!(result.stats.accesses, 1024);
/// assert!(result.bandwidth_gib_s() > 1.0);
/// ```
#[derive(Debug)]
pub struct MemoryController {
    tlb: DecodeTlb,
    /// Copy of the decoder's geometry, for ordinal arithmetic without
    /// borrowing through the TLB.
    geometry: Geometry,
    timings: DdrTimings,
    /// Per-bank row-buffer FSMs, indexed by flat [`BankId`].
    banks: Vec<BankFsm>,
    /// Channel bus free time, indexed by [`Geometry::channel_ordinal`].
    bus_free: Vec<u64>,
    /// Per-rank ACT bookkeeping, indexed by [`Geometry::rank_ordinal`].
    ranks: Vec<RankState>,
    next_ref_ps: u64,
    stats: CtrlStats,
    /// Accesses per bank, indexed by flat [`BankId`] (utilization
    /// accounting; §4.1's bank-level parallelism claim is auditable from
    /// this).
    bank_touches: Vec<u64>,
    /// Flat ids of banks touched so far, in first-touch order; the
    /// distributed-refresh sweep visits only these, matching the hash-map
    /// implementation where un-accessed banks accrued no refresh debt.
    touched: Vec<u32>,
    drive_physics: bool,
    /// Pending same-row activation run, coalesced into one device burst at
    /// the next run break, time sync, or end of trace (§4f).
    pending_act: Option<ActRun>,
    /// Row-buffer management policy.
    pub policy: PagePolicy,
    /// FR-FCFS lookahead window for [`Self::run_trace`].
    pub window: usize,
    dram_sync_counter: u32,
    /// Pending-window occupancy at each FR-FCFS pick (single-owner local
    /// accumulator; merged into a registry at export time).
    queue_depth: telemetry::HistoSnapshot,
    /// Per-access latency distribution, nanoseconds.
    latency_ns: telemetry::HistoSnapshot,
    /// Installed per-ACT defense, if any (§4h). `None` — the common case,
    /// covering the undefended baseline *and* Siloz, whose defense is
    /// placement-time — leaves the issue loop's fast path untouched.
    mitigation: Option<Box<dyn mitigation::Mitigation>>,
}

impl MemoryController {
    /// Creates a controller with default DDR4-2933 timings.
    #[must_use]
    pub fn new(decoder: SystemAddressDecoder) -> Self {
        Self::with_timings(decoder, DdrTimings::default())
    }

    /// Creates a controller with explicit timings.
    ///
    /// # Panics
    ///
    /// Panics if `timings` are inconsistent.
    #[must_use]
    pub fn with_timings(decoder: SystemAddressDecoder, timings: DdrTimings) -> Self {
        timings.validate().expect("valid timings");
        let geometry = *decoder.geometry();
        Self {
            geometry,
            timings,
            banks: vec![BankFsm::default(); geometry.total_banks() as usize],
            bus_free: vec![0; geometry.total_channels() as usize],
            ranks: vec![RankState::default(); geometry.total_ranks() as usize],
            next_ref_ps: timings.t_refi_ps,
            stats: CtrlStats::default(),
            bank_touches: vec![0; geometry.total_banks() as usize],
            touched: Vec::new(),
            drive_physics: true,
            pending_act: None,
            policy: PagePolicy::Open,
            window: 16,
            dram_sync_counter: 0,
            queue_depth: telemetry::HistoSnapshot::default(),
            latency_ns: telemetry::HistoSnapshot::default(),
            mitigation: None,
            tlb: DecodeTlb::new(decoder),
        }
    }

    /// Switches to a closed-page (auto-precharge) policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PagePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Disables driving the DRAM disturbance physics on activates (useful
    /// for pure performance experiments).
    #[must_use]
    pub fn without_physics(mut self) -> Self {
        self.drive_physics = false;
        self
    }

    /// Installs a per-ACT defense: `m.on_act` is consulted on every
    /// activation (row misses and conflicts, not row hits) and its
    /// returned delay is added to the op's arrival time before rank
    /// constraints apply; `m.on_refresh` fires at every tREFI crossing.
    /// Controllers without a hook skip both calls entirely.
    #[must_use]
    pub fn with_mitigation(mut self, m: Box<dyn mitigation::Mitigation>) -> Self {
        self.mitigation = Some(m);
        self
    }

    /// The installed per-ACT defense, if any.
    #[must_use]
    pub fn mitigation(&self) -> Option<&dyn mitigation::Mitigation> {
        self.mitigation.as_deref()
    }

    /// The decoder in use.
    #[must_use]
    pub fn decoder(&self) -> &SystemAddressDecoder {
        self.tlb.inner()
    }

    /// Decode-TLB `(hits, misses)` so far.
    #[must_use]
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb.hits(), self.tlb.misses())
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Current controller clock (completion time of the latest access).
    #[must_use]
    pub fn clock_ps(&self) -> u64 {
        self.stats.clock_ps
    }

    /// Number of distinct banks touched so far.
    #[must_use]
    pub fn banks_touched(&self) -> usize {
        self.touched.len()
    }

    /// Per-bank access counts for touched banks (utilization audit).
    pub fn bank_touches(&self) -> impl Iterator<Item = (BankId, u64)> + '_ {
        self.touched
            .iter()
            .map(|&ord| (BankId(ord), self.bank_touches[ord as usize]))
    }

    /// Coefficient of variation of per-bank load (0 = perfectly even),
    /// over touched banks only.
    #[must_use]
    pub fn bank_load_cv(&self) -> f64 {
        if self.touched.is_empty() {
            return 0.0;
        }
        let n = self.touched.len() as f64;
        let counts = || {
            self.touched
                .iter()
                .map(|&ord| self.bank_touches[ord as usize])
        };
        let mean = counts().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts().map(|c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    }

    /// Adds this controller's totals into `reg`: the [`CtrlStats`] split,
    /// queue-depth and latency distributions, per-bank utilization, and a
    /// `tlb` child with the decode cache's hit/miss/alias counts.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        self.stats.export_telemetry(reg);
        reg.histo("queue_depth").merge_from(&self.queue_depth);
        reg.histo("latency_ns").merge_from(&self.latency_ns);
        reg.counter("banks_touched").add(self.touched.len() as u64);
        let per_bank = reg.histo("accesses_per_bank");
        for &ord in &self.touched {
            per_bank.observe(self.bank_touches[ord as usize]);
        }
        self.tlb.export_telemetry(&reg.child("tlb"));
        if let Some(m) = &self.mitigation {
            m.export_telemetry(&reg.child("mitigation"));
        }
    }

    /// Serves one access arriving at `arrival_ps`.
    pub fn access_at(
        &mut self,
        dram: &mut DramSystem,
        phys: u64,
        write: bool,
        arrival_ps: u64,
    ) -> Result<AccessResult, AddrError> {
        let (media, bank_id) = self.tlb.decode_with_bank(phys)?;
        let res = self.access_decoded(dram, media, bank_id, write, 0, arrival_ps);
        // Single-access callers observe device state between calls; don't
        // leave an activation buffered.
        self.flush_acts(dram);
        Ok(res)
    }

    /// The decode-free access path: serves an already-decoded access.
    fn access_decoded(
        &mut self,
        dram: &mut DramSystem,
        media: MediaAddress,
        bank_id: BankId,
        write: bool,
        thread: u16,
        arrival_ps: u64,
    ) -> AccessResult {
        let rank_ord =
            self.geometry
                .rank_ordinal(media.socket, media.channel, media.dimm, media.rank);
        let chan_ord = self.geometry.channel_ordinal(media.socket, media.channel);
        self.access_inner(
            dram, bank_id, media.row, rank_ord, chan_ord, write, thread, arrival_ps,
        )
    }

    /// The innermost service path: bank, row, and geometry ordinals already
    /// resolved (by [`Self::access_decoded`], or at compile time for
    /// [`Self::run_compiled`] programs).
    #[allow(clippy::too_many_arguments)]
    fn access_inner(
        &mut self,
        dram: &mut DramSystem,
        bank_id: BankId,
        row: u32,
        rank_ord: usize,
        chan_ord: usize,
        write: bool,
        thread: u16,
        arrival_ps: u64,
    ) -> AccessResult {
        // Distributed refresh: when the clock crosses tREFI, steal tRFC from
        // every touched bank (coarse model of per-rank staggered REF).
        while arrival_ps >= self.next_ref_ps {
            let t = self.timings;
            for &ord in &self.touched {
                let fsm = &mut self.banks[ord as usize];
                fsm.precharge(self.next_ref_ps, &t);
                fsm.ready_ps += t.t_rfc_ps;
            }
            if let Some(m) = self.mitigation.as_deref_mut() {
                m.on_refresh(self.next_ref_ps);
            }
            self.next_ref_ps += t.t_refi_ps;
        }
        let ord = bank_id.0 as usize;
        // Rank-level ACT constraints apply only if an ACT will be issued.
        let kind = self.banks[ord].classify(row);
        let mut arrival = arrival_ps;
        if kind != AccessKind::RowHit {
            // Defense throttling delays the ACT before timing constraints
            // re-queue it, so rank windows apply to the *delayed* issue.
            if let Some(m) = self.mitigation.as_deref_mut() {
                arrival += m.on_act(bank_id.0, row, thread, arrival);
            }
            let rank = &self.ranks[rank_ord];
            arrival = arrival.max(rank.last_act_ps + self.timings.t_rrd_ps);
            if rank.recent_acts.len() == 4 {
                let oldest = rank.recent_acts[0];
                arrival = arrival.max(oldest + self.timings.t_faw_ps);
            }
        }
        let (act_start, bank_done) =
            self.banks[ord].access_classified(kind, row, arrival, &self.timings, self.policy);
        if kind != AccessKind::RowHit {
            let rank = &mut self.ranks[rank_ord];
            rank.last_act_ps = act_start;
            rank.recent_acts.push_back(act_start);
            while rank.recent_acts.len() > 4 {
                rank.recent_acts.pop_front();
            }
        }
        // Channel data bus: the burst occupies the bus; queue if busy.
        let bus = &mut self.bus_free[chan_ord];
        let data_start = (bank_done - self.timings.t_burst_ps).max(*bus);
        let done = data_start + self.timings.t_burst_ps;
        *bus = done;
        if done > bank_done {
            // Bus queueing delays this bank's next availability too.
            self.banks[ord].ready_ps = done;
        }
        let latency = done - arrival_ps;
        self.stats.record(kind, !write, latency, done);
        self.latency_ns.observe(latency / 1000);
        if self.bank_touches[ord] == 0 {
            self.touched.push(bank_id.0);
        }
        self.bank_touches[ord] += 1;
        if self.drive_physics && kind != AccessKind::RowHit {
            // Coalesce back-to-back same-row ACTs (closed-page same-row
            // streams, hammering traces) into one burst; a run breaks as
            // soon as any other row activates, keeping the device's global
            // flip-log order identical to per-ACT issue.
            match &mut self.pending_act {
                Some(run) if run.bank == bank_id && run.row == row => run.count += 1,
                run => {
                    if let Some(prev) = run.take() {
                        dram.activate_burst(prev.bank, prev.row, prev.count, 0);
                    }
                    *run = Some(ActRun {
                        bank: bank_id,
                        row,
                        count: 1,
                    });
                }
            }
            self.dram_sync_counter += 1;
            if self.dram_sync_counter >= 512 {
                self.dram_sync_counter = 0;
                self.sync_dram_time(dram);
            }
        }
        AccessResult {
            kind,
            done_ps: done,
            latency_ps: latency,
        }
    }

    /// Issues any buffered activation run to the device as one coalesced
    /// burst.
    fn flush_acts(&mut self, dram: &mut DramSystem) {
        if let Some(run) = self.pending_act.take() {
            dram.activate_burst(run.bank, run.row, run.count, 0);
        }
    }

    /// Brings the DRAM device clock up to the controller clock so
    /// distributed refresh keeps pace with simulated time. Flushes any
    /// buffered activation run first — bursts must not span the refresh
    /// boundaries `advance_ns` may cross.
    pub fn sync_dram_time(&mut self, dram: &mut DramSystem) {
        self.flush_acts(dram);
        let clock_ns = self.stats.clock_ps / 1000;
        if clock_ns > dram.now_ns() {
            dram.advance_ns(clock_ns - dram.now_ns());
        }
    }

    /// FR-FCFS pick: the oldest row-hit if any, else the oldest op; the
    /// starvation bound forces the oldest once `bypassed` reaches the
    /// window size. `hitmask` bit `i` mirrors "entry `i` classifies as a
    /// row hit" whenever `masked` (windows of at most 64 entries); larger
    /// windows fall back to scanning.
    #[inline]
    fn pick(&self, pending: &[PendingOp], hitmask: u64, masked: bool, bypassed: u32) -> usize {
        if bypassed >= self.window as u32 {
            0
        } else if masked {
            if hitmask == 0 {
                0
            } else {
                hitmask.trailing_zeros() as usize
            }
        } else {
            pending
                .iter()
                .position(|p| {
                    p.bank != INVALID_BANK
                        && self.banks[p.bank as usize].classify(p.row) == AccessKind::RowHit
                })
                .unwrap_or(0)
        }
    }

    /// Re-derives `hitmask` bits after serving an access on `served_bank`:
    /// only that bank's open row changed, so only its entries re-classify —
    /// unless the access crossed a refresh boundary (`refresh_crossed`),
    /// which precharged every touched bank and thus cleared every hit
    /// except those the just-served bank re-opened.
    #[inline]
    fn requalify(
        &self,
        pending: &[PendingOp],
        hitmask: &mut u64,
        served_bank: u32,
        refresh_crossed: bool,
    ) {
        if refresh_crossed {
            *hitmask = 0;
        }
        let open = self.banks[served_bank as usize].open_row;
        for (i, e) in pending.iter().enumerate() {
            if e.bank == served_bank {
                if open == Some(e.row) {
                    *hitmask |= 1 << i;
                } else {
                    *hitmask &= !(1 << i);
                }
            }
        }
    }

    /// Replays a trace with FR-FCFS scheduling over a lookahead window.
    ///
    /// Each thread's ops issue in order, separated by their `gap_ps` (and
    /// by completion when `dependent`); different threads progress
    /// independently. Within the lookahead window, row-buffer hits are
    /// served first, as real controllers do. Ops are decoded once when they
    /// enter the window; the FR-FCFS scan works on the stored decode.
    pub fn run_trace<I>(&mut self, dram: &mut DramSystem, ops: I) -> TraceResult
    where
        I: IntoIterator<Item = MemOp>,
    {
        let start_clock = self.stats.clock_ps;
        let before = self.stats;
        let mut threads: Vec<PerThread> = Vec::new();
        let mut first_issue: Option<u64> = None;
        let window = self.window.max(1);
        let mut pending: Vec<PendingOp> = Vec::with_capacity(window);
        let mut staged: Option<MemOp> = None;
        let mut bypassed = 0u32;
        let masked = window <= 64;
        let mut hitmask = 0u64;
        let mut iter = ops.into_iter();
        loop {
            // Fill the window. A dependent op whose thread still has an op
            // in flight cannot be timestamped yet; it (and everything
            // behind it) waits.
            while pending.len() < window {
                let Some(op) = staged.take().or_else(|| iter.next()) else {
                    break;
                };
                let t = per_thread(&mut threads, op.thread, start_clock);
                if op.dependent && t.outstanding > 0 {
                    staged = Some(op);
                    break;
                }
                let mut issue = t.cursor + op.gap_ps;
                if op.dependent {
                    issue = issue.max(t.last_done);
                }
                t.cursor = issue;
                t.outstanding += 1;
                first_issue.get_or_insert(issue);
                // Decode once on entry; invalid addresses stay undecoded
                // (bank sentinel) and are dropped when picked.
                let entry = match self.tlb.decode_with_bank(op.phys) {
                    Ok((m, bank)) => PendingOp {
                        issue,
                        bank: bank.0,
                        row: m.row,
                        rank_ord: self
                            .geometry
                            .rank_ordinal(m.socket, m.channel, m.dimm, m.rank)
                            as u16,
                        chan_ord: self.geometry.channel_ordinal(m.socket, m.channel) as u16,
                        thread: op.thread,
                        write: op.write,
                    },
                    Err(_) => PendingOp {
                        issue,
                        bank: INVALID_BANK,
                        row: 0,
                        rank_ord: 0,
                        chan_ord: 0,
                        thread: op.thread,
                        write: op.write,
                    },
                };
                if masked
                    && entry.bank != INVALID_BANK
                    && self.banks[entry.bank as usize].classify(entry.row) == AccessKind::RowHit
                {
                    hitmask |= 1 << pending.len();
                }
                pending.push(entry);
            }
            if pending.is_empty() {
                break;
            }
            self.queue_depth.observe(pending.len() as u64);
            // FR-FCFS: pick the oldest row-hit if any, else the oldest op.
            // Cap how often the oldest op may be bypassed — real
            // controllers bound reordering to prevent starvation.
            let choice = self.pick(&pending, hitmask, masked, bypassed);
            bypassed = if choice == 0 { 0 } else { bypassed + 1 };
            let p = pending.remove(choice);
            if masked {
                // Collapse the removed entry's bit out of the mask.
                let below = (1u64 << choice) - 1;
                hitmask = (hitmask & below) | ((hitmask >> 1) & !below);
            }
            let thread = p.thread as usize;
            threads[thread].outstanding -= 1;
            if p.bank != INVALID_BANK {
                let ref_before = self.next_ref_ps;
                let res = self.access_inner(
                    dram,
                    BankId(p.bank),
                    p.row,
                    p.rank_ord as usize,
                    p.chan_ord as usize,
                    p.write,
                    p.thread,
                    p.issue,
                );
                let t = &mut threads[thread];
                t.last_done = t.last_done.max(res.done_ps);
                t.lat_sum += res.latency_ps;
                t.lat_count += 1;
                if masked {
                    self.requalify(
                        &pending,
                        &mut hitmask,
                        p.bank,
                        self.next_ref_ps != ref_before,
                    );
                }
            }
            // Undecoded (out-of-range) ops are dropped from the trace; the
            // workload layer is responsible for valid addressing.
        }
        self.flush_acts(dram);
        let elapsed = self
            .stats
            .clock_ps
            .saturating_sub(first_issue.unwrap_or(start_clock));
        let mut delta = self.stats;
        delta.accesses -= before.accesses;
        delta.row_hits -= before.row_hits;
        delta.row_misses -= before.row_misses;
        delta.row_conflicts -= before.row_conflicts;
        delta.reads -= before.reads;
        delta.total_latency_ps -= before.total_latency_ps;
        delta.bytes -= before.bytes;
        let thread_latency = threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.lat_count > 0)
            .map(|(id, t)| (id as u16, (t.lat_sum, t.lat_count)))
            .collect();
        TraceResult {
            stats: delta,
            elapsed_ps: elapsed,
            thread_latency,
        }
    }

    /// Replays a pre-decoded program — the decode-free twin of
    /// [`Self::run_trace`].
    ///
    /// Scheduling is identical op for op: same window fill with the same
    /// dependent-op stall, same FR-FCFS pick with the same starvation
    /// bound, same `access_decoded` service path — so results,
    /// statistics, and telemetry are bit-identical to running the source
    /// trace through [`Self::run_trace`] on an identically-configured
    /// controller. The compile-time decode counters are credited into this
    /// controller's TLB up front, which for a fresh controller reproduces
    /// the direct path's exported `tlb` metrics exactly.
    pub fn run_compiled(&mut self, dram: &mut DramSystem, prog: &CompiledTrace) -> TraceResult {
        self.tlb
            .credit(prog.tlb_hits, prog.tlb_misses, prog.tlb_aliases);
        let start_clock = self.stats.clock_ps;
        let before = self.stats;
        let mut threads: Vec<PerThread> = Vec::new();
        let mut first_issue: Option<u64> = None;
        let window = self.window.max(1);
        let mut pending: Vec<PendingOp> = Vec::with_capacity(window);
        let mut bypassed = 0u32;
        let masked = window <= 64;
        let mut hitmask = 0u64;
        let mut next = 0usize;
        let ops = prog.ops.as_slice();
        loop {
            while pending.len() < window && next < ops.len() {
                let op = &ops[next];
                let t = per_thread(&mut threads, op.thread, start_clock);
                if op.dependent && t.outstanding > 0 {
                    break;
                }
                let mut issue = t.cursor + op.gap_ps;
                if op.dependent {
                    issue = issue.max(t.last_done);
                }
                t.cursor = issue;
                t.outstanding += 1;
                first_issue.get_or_insert(issue);
                if masked
                    && op.bank != INVALID_BANK
                    && self.banks[op.bank as usize].classify(op.row) == AccessKind::RowHit
                {
                    hitmask |= 1 << pending.len();
                }
                pending.push(PendingOp {
                    issue,
                    bank: op.bank,
                    row: op.row,
                    rank_ord: op.rank_ord,
                    chan_ord: op.chan_ord,
                    thread: op.thread,
                    write: op.write,
                });
                next += 1;
            }
            if pending.is_empty() {
                break;
            }
            self.queue_depth.observe(pending.len() as u64);
            let choice = self.pick(&pending, hitmask, masked, bypassed);
            bypassed = if choice == 0 { 0 } else { bypassed + 1 };
            let p = pending.remove(choice);
            if masked {
                let below = (1u64 << choice) - 1;
                hitmask = (hitmask & below) | ((hitmask >> 1) & !below);
            }
            let thread = p.thread as usize;
            threads[thread].outstanding -= 1;
            if p.bank != INVALID_BANK {
                let ref_before = self.next_ref_ps;
                let res = self.access_inner(
                    dram,
                    BankId(p.bank),
                    p.row,
                    p.rank_ord as usize,
                    p.chan_ord as usize,
                    p.write,
                    p.thread,
                    p.issue,
                );
                let t = &mut threads[thread];
                t.last_done = t.last_done.max(res.done_ps);
                t.lat_sum += res.latency_ps;
                t.lat_count += 1;
                if masked {
                    self.requalify(
                        &pending,
                        &mut hitmask,
                        p.bank,
                        self.next_ref_ps != ref_before,
                    );
                }
            }
        }
        self.flush_acts(dram);
        let elapsed = self
            .stats
            .clock_ps
            .saturating_sub(first_issue.unwrap_or(start_clock));
        let mut delta = self.stats;
        delta.accesses -= before.accesses;
        delta.row_hits -= before.row_hits;
        delta.row_misses -= before.row_misses;
        delta.row_conflicts -= before.row_conflicts;
        delta.reads -= before.reads;
        delta.total_latency_ps -= before.total_latency_ps;
        delta.bytes -= before.bytes;
        let thread_latency = threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.lat_count > 0)
            .map(|(id, t)| (id as u16, (t.lat_sum, t.lat_count)))
            .collect();
        TraceResult {
            stats: delta,
            elapsed_ps: elapsed,
            thread_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::{mini_decoder, mini_geometry};

    fn setup() -> (MemoryController, DramSystem) {
        let dec = mini_decoder();
        let dram = DramSystem::new(*dec.geometry());
        (MemoryController::new(dec), dram)
    }

    #[test]
    fn sequential_stream_exploits_bank_parallelism() {
        // Sequential lines hit all banks; compare against a single-bank
        // stream of the same length: the interleaved stream must be much
        // faster (§2.4 / §4.1, the >18% bank-level-parallelism effect).
        let (mut ctrl, mut dram) = setup();
        let n = 4096u64;
        let seq: Vec<MemOp> = (0..n).map(|i| MemOp::read(i * 64)).collect();
        let seq_res = ctrl.run_trace(&mut dram, seq);

        let (mut ctrl2, mut dram2) = setup();
        // Same bank every time: line slot 0 of each row group, stride one
        // row group so every access opens a new row in the same bank.
        let rg = ctrl2.decoder().geometry().row_group_bytes();
        let single: Vec<MemOp> = (0..n).map(|i| MemOp::read(i * rg)).collect();
        let single_res = ctrl2.run_trace(&mut dram2, single);

        assert!(
            seq_res.elapsed_ps * 4 < single_res.elapsed_ps,
            "bank-parallel {} vs single-bank {}",
            seq_res.elapsed_ps,
            single_res.elapsed_ps
        );
    }

    #[test]
    fn row_hits_dominate_sequential_access() {
        let (mut ctrl, mut dram) = setup();
        // Touch 64 consecutive lines in the same row group repeatedly.
        let ops: Vec<MemOp> = (0..8192u64).map(|i| MemOp::read((i % 512) * 64)).collect();
        let res = ctrl.run_trace(&mut dram, ops);
        assert!(
            res.stats.hit_rate() > 0.8,
            "hit rate {} too low",
            res.stats.hit_rate()
        );
    }

    #[test]
    fn random_access_conflicts_more_than_sequential() {
        let (mut ctrl, mut dram) = setup();
        let seq: Vec<MemOp> = (0..4096u64).map(|i| MemOp::read(i * 64)).collect();
        let seq_res = ctrl.run_trace(&mut dram, seq);

        let (mut ctrl2, mut dram2) = setup();
        let cap = ctrl2.decoder().capacity();
        let mut x = 0x12345u64;
        let rnd: Vec<MemOp> = (0..4096)
            .map(|_| {
                x = dram::util::splitmix64(x);
                MemOp::read((x % cap) & !63)
            })
            .collect();
        let rnd_res = ctrl2.run_trace(&mut dram2, rnd);
        assert!(rnd_res.stats.hit_rate() < seq_res.stats.hit_rate());
        assert!(rnd_res.stats.mean_latency_ns() > seq_res.stats.mean_latency_ns());
    }

    #[test]
    fn dependent_ops_serialize() {
        let (mut ctrl, mut dram) = setup();
        let rg = ctrl.decoder().geometry().row_group_bytes();
        let dep: Vec<MemOp> = (0..256u64)
            .map(|i| MemOp::read((i * rg) % (1 << 28)).after_previous())
            .collect();
        let dep_res = ctrl.run_trace(&mut dram, dep);

        let (mut ctrl2, mut dram2) = setup();
        let indep: Vec<MemOp> = (0..256u64)
            .map(|i| MemOp::read((i * rg) % (1 << 28)))
            .collect();
        let ind_res = ctrl2.run_trace(&mut dram2, indep);
        assert!(
            dep_res.elapsed_ps > ind_res.elapsed_ps * 2,
            "dependent {} vs independent {}",
            dep_res.elapsed_ps,
            ind_res.elapsed_ps
        );
    }

    #[test]
    fn gaps_add_compute_time() {
        let (mut ctrl, mut dram) = setup();
        let ops: Vec<MemOp> = (0..100u64)
            .map(|i| MemOp::read(i * 64).with_gap_ps(1_000_000))
            .collect();
        let res = ctrl.run_trace(&mut dram, ops);
        assert!(res.elapsed_ps >= 99 * 1_000_000);
    }

    #[test]
    fn physics_is_driven_on_activates() {
        let (mut ctrl, mut dram) = setup();
        let rg = ctrl.decoder().geometry().row_group_bytes();
        let ops: Vec<MemOp> = (0..512u64).map(|i| MemOp::read(i * rg)).collect();
        ctrl.run_trace(&mut dram, ops);
        assert!(
            dram.stats().acts > 0,
            "activates must reach the device model"
        );

        let dec = mini_decoder();
        let mut dram2 = DramSystem::new(mini_geometry());
        let mut ctrl2 = MemoryController::new(dec).without_physics();
        let ops: Vec<MemOp> = (0..512u64).map(|i| MemOp::read(i * rg)).collect();
        ctrl2.run_trace(&mut dram2, ops);
        assert_eq!(dram2.stats().acts, 0);
    }

    #[test]
    fn refresh_steals_time() {
        // Run long enough to cross several tREFI boundaries and verify the
        // clock advances past the pure access time.
        let (mut ctrl, mut dram) = setup();
        let ops: Vec<MemOp> = (0..20_000u64)
            .map(|i| MemOp::read((i % 64) * 64).with_gap_ps(2_000))
            .collect();
        let res = ctrl.run_trace(&mut dram, ops);
        assert!(res.elapsed_ps > 20_000 * 2_000);
        assert!(res.stats.accesses == 20_000);
    }

    #[test]
    fn threads_progress_independently() {
        // Two threads of dependent pointer chases overlap each other; one
        // thread of the same total work serializes fully.
        let rg = mini_decoder().geometry().row_group_bytes();
        let chase = |thread: u16, n: u64| -> Vec<MemOp> {
            (0..n)
                .map(move |i| {
                    MemOp::read(((thread as u64 * 997 + i) * rg) % (1 << 28))
                        .after_previous()
                        .on_thread(thread)
                })
                .collect()
        };
        let (mut c1, mut d1) = setup();
        let single = c1.run_trace(&mut d1, chase(0, 512));

        let (mut c2, mut d2) = setup();
        // Interleave two 256-op chains.
        let a = chase(0, 256);
        let b = chase(1, 256);
        let interleaved: Vec<MemOp> = a.into_iter().zip(b).flat_map(|(x, y)| [x, y]).collect();
        let dual = c2.run_trace(&mut d2, interleaved);
        assert_eq!(dual.stats.accesses, 512);
        assert!(
            dual.elapsed_ps * 5 < single.elapsed_ps * 4,
            "two threads must overlap: dual {} vs single {}",
            dual.elapsed_ps,
            single.elapsed_ps
        );
    }

    #[test]
    fn per_thread_gaps_do_not_serialize_other_threads() {
        let (mut ctrl, mut dram) = setup();
        // Thread 0 computes a lot; thread 1 streams. Total time should be
        // near thread 0's compute, not the sum.
        let mut ops = Vec::new();
        for i in 0..100u64 {
            ops.push(MemOp::read(i * 64).with_gap_ps(1_000_000).on_thread(0));
            ops.push(MemOp::read((1 << 20) + i * 64).on_thread(1));
        }
        let res = ctrl.run_trace(&mut dram, ops);
        assert!(res.elapsed_ps < 110 * 1_000_000);
        assert!(res.elapsed_ps >= 99 * 1_000_000);
    }

    #[test]
    fn closed_page_policy_kills_hits_but_also_conflicts() {
        // A single hot row hammered with 20 ns spacing: open page turns
        // everything after the first access into 17 ns hits; closed page
        // re-activates every time (31 ns > arrival spacing), so its queue
        // grows and both mean latency and elapsed time blow up.
        let hot_row: Vec<MemOp> = (0..512u64)
            .map(|_| MemOp::read(0).with_gap_ps(20_000))
            .collect();
        let (mut open_ctrl, mut d1) = setup();
        let open_res = open_ctrl.run_trace(&mut d1, hot_row.clone());

        let dec = mini_decoder();
        let mut d2 = DramSystem::new(*dec.geometry());
        let mut closed_ctrl = MemoryController::new(dec)
            .without_physics()
            .with_policy(PagePolicy::Closed);
        let closed_res = closed_ctrl.run_trace(&mut d2, hot_row);
        assert_eq!(closed_res.stats.row_hits, 0, "closed page never hits");
        assert_eq!(
            closed_res.stats.row_conflicts, 0,
            "closed page never conflicts"
        );
        assert!(
            open_res.stats.hit_rate() > 0.9,
            "hit rate {}",
            open_res.stats.hit_rate()
        );
        assert!(
            open_res.stats.mean_latency_ns() < closed_res.stats.mean_latency_ns(),
            "locality favors open page: open {} vs closed {}",
            open_res.stats.mean_latency_ns(),
            closed_res.stats.mean_latency_ns()
        );
        assert!(open_res.elapsed_ps < closed_res.elapsed_ps);
    }

    #[test]
    fn flat_controller_matches_hashed_baseline() {
        // The flattened controller must be semantically identical to the
        // retained hash-map implementation: same TraceResult on a mixed
        // trace (sequential, hot-row, random, dependent, multi-threaded)
        // long enough to cross refresh intervals, and same bank census.
        let dec = mini_decoder();
        let cap = dec.capacity();
        let rg = dec.geometry().row_group_bytes();
        let mut ops = Vec::new();
        let mut x = 0xdead_beefu64;
        for i in 0..20_000u64 {
            let op = match i % 5 {
                0 => MemOp::read(i * 64),
                1 => MemOp::read(0).with_gap_ps(1_000).on_thread(1),
                2 => {
                    x = dram::util::splitmix64(x);
                    MemOp::write((x % cap) & !63).on_thread(2)
                }
                3 => MemOp::read((i * rg) % cap).after_previous().on_thread(3),
                _ => MemOp::read(cap + i), // invalid: dropped by both
            };
            ops.push(op);
        }
        let (mut flat, mut d1) = setup();
        let flat_res = flat.run_trace(&mut d1, ops.clone());

        let mut d2 = DramSystem::new(mini_geometry());
        let mut hashed = crate::HashedController::new(mini_decoder());
        let hashed_res = hashed.run_trace(&mut d2, ops);

        assert_eq!(flat_res, hashed_res);
        assert_eq!(flat.banks_touched(), hashed.banks_touched());
        assert_eq!(d1.stats().acts, d2.stats().acts);

        // The implementations must agree on telemetry too — row hit/conflict
        // counters, queue-depth and latency distributions, per-bank
        // utilization — not only on TraceResult. The flat controller
        // additionally exports a `tlb` child (the hashed one decodes
        // uncached), so compare the shared top-level metrics.
        let flat_reg = telemetry::Registry::new();
        flat.export_telemetry(&flat_reg);
        let hashed_reg = telemetry::Registry::new();
        hashed.export_telemetry(&hashed_reg);
        assert_eq!(
            flat_reg.snapshot().metrics,
            hashed_reg.snapshot().metrics,
            "flat and hashed controllers must emit identical telemetry"
        );
    }

    #[test]
    fn coalesced_act_runs_match_per_act_issue_on_closed_page() {
        // Closed-page policy re-activates on every access, so a same-row
        // stream forms long ACT runs — exactly what the pending-run buffer
        // coalesces into device bursts. The hashed baseline still issues
        // per-ACT, so full device state (stats, ordered flip log) must
        // match bit for bit, including across the 512-ACT time syncs and
        // the hot-row flips this siege produces.
        let dec = mini_decoder();
        let rg = dec.geometry().row_group_bytes();
        let mut ops = Vec::new();
        for i in 0..100_000u64 {
            let phys = match i % 8 {
                0..=6 => 0,                        // the siege: one long run
                _ => ((i / 8) % 64) * rg + 2 * rg, // run break to varied rows
            };
            ops.push(MemOp::read(phys));
        }
        // TRR-less devices: a single-aggressor siege is exactly what
        // deployed TRR neutralizes, and the point here is the controller's
        // run buffer, not the tracker (burst-vs-TRR equivalence is pinned
        // by the dram crate's own battery).
        let mk_dram = || {
            dram::DramSystemBuilder::new(mini_geometry())
                .trr(0, 0)
                .build()
        };
        let mut d1 = mk_dram();
        let mut flat = MemoryController::new(mini_decoder()).with_policy(PagePolicy::Closed);
        let flat_res = flat.run_trace(&mut d1, ops.clone());

        let mut d2 = mk_dram();
        let mut hashed =
            crate::HashedController::new(mini_decoder()).with_policy(PagePolicy::Closed);
        let hashed_res = hashed.run_trace(&mut d2, ops);

        assert_eq!(flat_res, hashed_res);
        assert_eq!(d1.stats(), d2.stats());
        assert!(d1.stats().acts >= 100_000, "closed page re-activates");
        assert!(
            !d1.flip_log().all().is_empty(),
            "an 87k-ACT siege must flip bits on the default profile"
        );
        assert_eq!(
            d1.flip_log().all(),
            d2.flip_log().all(),
            "coalesced bursts must preserve per-ACT flip order"
        );
    }

    /// A mixed trace exercising every scheduling feature: sequential
    /// streams, a hot row with gaps, random writes, dependent chases,
    /// invalid (dropped) addresses, several threads.
    fn mixed_trace(n: u64) -> Vec<MemOp> {
        let dec = mini_decoder();
        let cap = dec.capacity();
        let rg = dec.geometry().row_group_bytes();
        let mut x = 0xdead_beefu64;
        (0..n)
            .map(|i| match i % 5 {
                0 => MemOp::read(i * 64),
                1 => MemOp::read(0).with_gap_ps(1_000).on_thread(1),
                2 => {
                    x = dram::util::splitmix64(x);
                    MemOp::write((x % cap) & !63).on_thread(2)
                }
                3 => MemOp::read((i * rg) % cap).after_previous().on_thread(3),
                _ => MemOp::read(cap + i), // invalid: dropped by both paths
            })
            .collect()
    }

    #[test]
    fn run_compiled_matches_run_trace_exactly() {
        // The pre-decoded replay must be indistinguishable from the direct
        // path: same TraceResult, same bank census, and identical exported
        // telemetry including the TLB child (compile-time counters are
        // credited at replay).
        let ops = mixed_trace(20_000);
        let (mut direct, mut d1) = setup();
        let direct_res = direct.run_trace(&mut d1, ops.clone());

        let prog = CompiledTrace::compile(mini_decoder(), ops);
        let (mut compiled, mut d2) = setup();
        let compiled_res = compiled.run_compiled(&mut d2, &prog);

        assert_eq!(direct_res, compiled_res);
        assert_eq!(direct.banks_touched(), compiled.banks_touched());
        let direct_reg = telemetry::Registry::new();
        direct.export_telemetry(&direct_reg);
        let compiled_reg = telemetry::Registry::new();
        compiled.export_telemetry(&compiled_reg);
        assert_eq!(
            direct_reg.snapshot(),
            compiled_reg.snapshot(),
            "compiled replay must emit identical telemetry, TLB included"
        );
    }

    #[test]
    fn run_compiled_matches_run_trace_with_physics_and_closed_page() {
        // With physics driven and a closed-page policy, every access
        // re-activates: the ACT-run coalescing, 512-ACT time syncs, and
        // flip-log ordering must all match the direct path bit for bit.
        let dec = mini_decoder();
        let rg = dec.geometry().row_group_bytes();
        let mut ops = Vec::new();
        for i in 0..60_000u64 {
            let phys = match i % 8 {
                0..=6 => 0,
                _ => ((i / 8) % 64) * rg + 2 * rg,
            };
            ops.push(MemOp::read(phys));
        }
        let mk_dram = || {
            dram::DramSystemBuilder::new(mini_geometry())
                .trr(0, 0)
                .build()
        };
        let mut d1 = mk_dram();
        let mut direct = MemoryController::new(mini_decoder()).with_policy(PagePolicy::Closed);
        let direct_res = direct.run_trace(&mut d1, ops.clone());

        let prog = CompiledTrace::compile(mini_decoder(), ops);
        let mut d2 = mk_dram();
        let mut compiled = MemoryController::new(mini_decoder()).with_policy(PagePolicy::Closed);
        let compiled_res = compiled.run_compiled(&mut d2, &prog);

        assert_eq!(direct_res, compiled_res);
        assert_eq!(d1.stats(), d2.stats());
        assert_eq!(
            d1.flip_log().all(),
            d2.flip_log().all(),
            "compiled replay must preserve per-ACT flip order"
        );
    }

    #[test]
    fn run_compiled_on_warm_controller_accumulates_like_run_trace() {
        // Back-to-back programs on one controller: clock carry-over, stats
        // deltas, and per-thread state resets must match running the same
        // two traces directly.
        let first = mixed_trace(4_000);
        let second: Vec<MemOp> = (0..2_000u64)
            .map(|i| MemOp::read((i % 512) * 64).on_thread((i % 3) as u16))
            .collect();
        let (mut direct, mut d1) = setup();
        let dr1 = direct.run_trace(&mut d1, first.clone());
        let dr2 = direct.run_trace(&mut d1, second.clone());

        let prog1 = CompiledTrace::compile(mini_decoder(), first);
        let prog2 = CompiledTrace::compile(mini_decoder(), second);
        let (mut compiled, mut d2) = setup();
        let cr1 = compiled.run_compiled(&mut d2, &prog1);
        let cr2 = compiled.run_compiled(&mut d2, &prog2);

        assert_eq!(dr1, cr1);
        assert_eq!(dr2, cr2);
        assert_eq!(direct.clock_ps(), compiled.clock_ps());
    }

    #[test]
    fn empty_compiled_trace_is_a_no_op() {
        let (mut ctrl, mut dram) = setup();
        let prog = CompiledTrace::compile(mini_decoder(), std::iter::empty());
        assert!(prog.is_empty());
        let res = ctrl.run_compiled(&mut dram, &prog);
        assert_eq!(res.stats.accesses, 0);
        assert_eq!(res.elapsed_ps, 0);
    }

    #[test]
    fn empty_trace_yields_zero_rates_not_nan() {
        let (mut ctrl, mut dram) = setup();
        let res = ctrl.run_trace(&mut dram, std::iter::empty());
        assert_eq!(res.stats.accesses, 0);
        assert_eq!(res.elapsed_ps, 0);
        assert_eq!(res.stats.hit_rate(), 0.0);
        assert_eq!(res.stats.mean_latency_ns(), 0.0);
        assert_eq!(res.stats.bandwidth_gib_s(), 0.0);
        assert_eq!(res.bandwidth_gib_s(), 0.0);
        assert_eq!(res.mean_latency_ns_of([0]), 0.0);
    }

    #[test]
    fn telemetry_export_matches_stats() {
        let (mut ctrl, mut dram) = setup();
        let ops: Vec<MemOp> = (0..2048u64).map(|i| MemOp::read(i * 64)).collect();
        let res = ctrl.run_trace(&mut dram, ops);
        let reg = telemetry::Registry::new();
        ctrl.export_telemetry(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.metrics["accesses"],
            telemetry::MetricValue::Counter {
                value: res.stats.accesses,
                volatile: false
            }
        );
        assert_eq!(
            snap.metrics["row_hits"],
            telemetry::MetricValue::Counter {
                value: res.stats.row_hits,
                volatile: false
            }
        );
        // One queue-depth observation per FR-FCFS pick, one latency sample
        // per served access.
        let telemetry::MetricValue::Histo { value: qd, .. } = &snap.metrics["queue_depth"] else {
            panic!("queue_depth must be a histogram");
        };
        assert_eq!(qd.count, 2048);
        let telemetry::MetricValue::Histo { value: lat, .. } = &snap.metrics["latency_ns"] else {
            panic!("latency_ns must be a histogram");
        };
        assert_eq!(lat.count, res.stats.accesses);
        // The decode cache reports through a child registry.
        let tlb = &snap.children["tlb"];
        let telemetry::MetricValue::Counter { value: hits, .. } = tlb.metrics["hits"] else {
            panic!("tlb hits must be a counter");
        };
        let telemetry::MetricValue::Counter { value: misses, .. } = tlb.metrics["misses"] else {
            panic!("tlb misses must be a counter");
        };
        assert_eq!(hits + misses, 2048);
    }

    #[test]
    fn invalid_addresses_are_dropped_not_fatal() {
        let (mut ctrl, mut dram) = setup();
        let cap = ctrl.decoder().capacity();
        let ops = vec![MemOp::read(0), MemOp::read(cap + 4096), MemOp::read(64)];
        let res = ctrl.run_trace(&mut dram, ops);
        assert_eq!(res.stats.accesses, 2);
    }

    /// A hammering trace: two rows of one bank, strictly alternating, and
    /// dependent so FR-FCFS cannot coalesce it into row-hit runs — every
    /// access is a row conflict and an ACT, like a real flush-based
    /// hammer loop.
    fn hammer_trace(n: u64, thread: u16) -> Vec<MemOp> {
        let dec = mini_decoder();
        let phys_of_row = |row: u32| {
            dec.encode(&dram_addr::MediaAddress {
                socket: 0,
                channel: 0,
                dimm: 0,
                rank: 0,
                bank_group: 0,
                bank: 0,
                row,
                col: 0,
            })
            .expect("row in range")
        };
        let rows = [phys_of_row(0), phys_of_row(2)];
        (0..n)
            .map(|i| {
                MemOp::read(rows[(i % 2) as usize])
                    .after_previous()
                    .on_thread(thread)
            })
            .collect()
    }

    #[test]
    fn installed_noop_backend_is_bit_identical_to_no_hook() {
        // A zero-delay hook takes the hooked branch on every ACT yet must
        // not perturb a single timestamp, stat, or device flip.
        let ops = mixed_trace(20_000);
        let (mut plain, mut d1) = setup();
        let plain_res = plain.run_trace(&mut d1, ops.clone());

        let dec = mini_decoder();
        let mut d2 = DramSystem::new(*dec.geometry());
        let mut hooked =
            MemoryController::new(dec).with_mitigation(Box::new(mitigation::NoMitigation::new()));
        let hooked_res = hooked.run_trace(&mut d2, ops);

        assert_eq!(plain_res, hooked_res);
        assert_eq!(d1.stats(), d2.stats());
        assert_eq!(d1.flip_log().all(), d2.flip_log().all());
        assert_eq!(plain.clock_ps(), hooked.clock_ps());
    }

    #[test]
    fn blockhammer_hook_throttles_a_hammering_trace() {
        let ops = hammer_trace(4_000, 0);
        let (mut plain, mut d1) = setup();
        let plain_res = plain.run_trace(&mut d1, ops.clone());

        let dec = mini_decoder();
        let mut d2 = DramSystem::new(*dec.geometry());
        let mut defended = MemoryController::new(dec)
            .with_mitigation(mitigation::Backend::BlockHammer.controller_hook().unwrap());
        let defended_res = defended.run_trace(&mut d2, ops);

        assert!(
            defended_res.elapsed_ps > plain_res.elapsed_ps * 2,
            "throttling must stretch the campaign: {} vs {}",
            defended_res.elapsed_ps,
            plain_res.elapsed_ps
        );
        let reg = telemetry::Registry::new();
        defended.export_telemetry(&reg);
        let snap = reg.snapshot();
        let child = &snap.children["mitigation"];
        let telemetry::MetricValue::Counter {
            value: throttled, ..
        } = child.metrics["acts_throttled"]
        else {
            panic!("acts_throttled must be a counter");
        };
        // Both rows blacklist after 512 estimated ACTs each.
        assert!(throttled > 2_000, "acts_throttled = {throttled}");
    }

    #[test]
    fn breakhammer_hook_throttles_the_offending_thread() {
        // Thread 9 activates at the tRC limit (~166 ACTs/tREFI), far over
        // the leak allowance, so its score blows the budget and later
        // ACTs pay.
        let ops = hammer_trace(12_000, 9);
        let dec = mini_decoder();
        let mut dram = DramSystem::new(*dec.geometry());
        let mut defended = MemoryController::new(dec)
            .with_mitigation(mitigation::Backend::BreakHammer.controller_hook().unwrap());
        let res = defended.run_trace(&mut dram, ops);
        assert_eq!(res.stats.accesses, 12_000);
        let reg = telemetry::Registry::new();
        defended.export_telemetry(&reg);
        let snap = reg.snapshot();
        let child = &snap.children["mitigation"];
        let telemetry::MetricValue::Counter { value: sources, .. } =
            child.metrics["sources_throttled"]
        else {
            panic!("sources_throttled must be a counter");
        };
        assert!(sources >= 1, "hammering source never throttled");
    }
}
