//! Memory controller simulation: scheduling, timing, bank-level parallelism.
//!
//! This crate models the controller half of the memory system (§2.4): it
//! translates physical addresses through the system address decoder, tracks
//! per-bank row-buffer state, schedules requests FR-FCFS (first-ready,
//! first-come-first-served), honors core DDR4 timing constraints
//! (tRCD/tRP/tCL/tRC/tFAW/tRRD/burst time), and drives the [`dram`] device
//! model's activation physics.
//!
//! The controller is an *event-level* model rather than a cycle-accurate
//! one: each request's completion time is computed from bank, rank, and
//! channel availability. That is exactly enough to expose the performance
//! property Siloz depends on — sequential access streams reach full
//! bank-level parallelism when (and only when) their pages interleave
//! across banks (§4.1) — while remaining fast enough to replay billions of
//! simulated bytes.

#![forbid(unsafe_code)]

pub mod bankfsm;
pub mod baseline;
pub mod compiled;
pub mod controller;
pub mod stats;
pub mod timing;

pub use bankfsm::{AccessKind, BankFsm, PagePolicy};
pub use baseline::HashedController;
pub use compiled::CompiledTrace;
pub use controller::{AccessResult, MemOp, MemoryController, TraceResult};
pub use stats::CtrlStats;
pub use timing::DdrTimings;
