//! DDR4 timing parameters, in picoseconds.

/// Core DDR4 timing constraints used by the controller.
///
/// All values are picoseconds. Defaults model DDR4-2933 (the evaluation
/// server's speed grade, Table 2): tCK ≈ 682 ps, CL/tRCD/tRP = 21 cycles,
/// tRAS = 47 cycles, 8-beat bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdrTimings {
    /// Activate → column command (tRCD).
    pub t_rcd_ps: u64,
    /// Precharge duration (tRP).
    pub t_rp_ps: u64,
    /// Column access latency (tCL / CAS).
    pub t_cl_ps: u64,
    /// Minimum activate-to-precharge time (tRAS).
    pub t_ras_ps: u64,
    /// Minimum activate-to-activate time, same bank (tRC = tRAS + tRP).
    pub t_rc_ps: u64,
    /// Data burst occupancy of the channel bus per access (tBL: 8 beats).
    pub t_burst_ps: u64,
    /// Four-activate window, per rank (tFAW).
    pub t_faw_ps: u64,
    /// Minimum activate-to-activate time across banks of a rank (tRRD).
    pub t_rrd_ps: u64,
    /// Refresh command duration (tRFC); banks are unavailable meanwhile.
    pub t_rfc_ps: u64,
    /// Average refresh interval (tREFI = tREFW / 8192).
    pub t_refi_ps: u64,
}

impl Default for DdrTimings {
    fn default() -> Self {
        Self::ddr4_2933()
    }
}

impl DdrTimings {
    /// DDR4-2933 speed grade (evaluation server).
    #[must_use]
    pub const fn ddr4_2933() -> Self {
        Self {
            t_rcd_ps: 14_320,
            t_rp_ps: 14_320,
            t_cl_ps: 14_320,
            t_ras_ps: 32_000,
            t_rc_ps: 46_320,
            t_burst_ps: 2_728, // 8 beats at 2933 MT/s
            t_faw_ps: 21_000,
            t_rrd_ps: 4_900, // tRRD_L
            t_rfc_ps: 350_000,
            t_refi_ps: 7_812_500,
        }
    }

    /// Latency of a row-buffer hit (column access + burst).
    #[must_use]
    pub const fn hit_latency_ps(&self) -> u64 {
        self.t_cl_ps + self.t_burst_ps
    }

    /// Latency of an access to a closed bank (activate + column + burst).
    #[must_use]
    pub const fn miss_latency_ps(&self) -> u64 {
        self.t_rcd_ps + self.t_cl_ps + self.t_burst_ps
    }

    /// Latency of a row-buffer conflict (precharge + activate + column +
    /// burst).
    #[must_use]
    pub const fn conflict_latency_ps(&self) -> u64 {
        self.t_rp_ps + self.t_rcd_ps + self.t_cl_ps + self.t_burst_ps
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc_ps < self.t_ras_ps + self.t_rp_ps {
            return Err(format!(
                "tRC ({}) must be >= tRAS ({}) + tRP ({})",
                self.t_rc_ps, self.t_ras_ps, self.t_rp_ps
            ));
        }
        if self.t_burst_ps == 0 {
            return Err("burst time must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timings_are_consistent() {
        let t = DdrTimings::default();
        t.validate().unwrap();
        assert!(t.hit_latency_ps() < t.miss_latency_ps());
        assert!(t.miss_latency_ps() < t.conflict_latency_ps());
    }

    #[test]
    fn validate_catches_bad_trc() {
        let t = DdrTimings {
            t_rc_ps: 1,
            ..DdrTimings::default()
        };
        assert!(t.validate().is_err());
        let t2 = DdrTimings {
            t_burst_ps: 0,
            ..DdrTimings::default()
        };
        assert!(t2.validate().is_err());
    }
}
