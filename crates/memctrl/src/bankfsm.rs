//! Per-bank row-buffer state machine.

use crate::timing::DdrTimings;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep the row open after an access (bets on locality; the default on
    /// servers and what the Skylake evaluation platform uses).
    #[default]
    Open,
    /// Auto-precharge after every access (bets against locality: conflicts
    /// become plain misses, hits disappear).
    Closed,
}

/// How an access interacted with the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Target row already open: column access only.
    RowHit,
    /// Bank closed: activate, then column access.
    RowMiss,
    /// Different row open: precharge, activate, column access.
    RowConflict,
}

/// Row-buffer and availability state of one bank (open-page policy).
#[derive(Debug, Clone, Copy, Default)]
pub struct BankFsm {
    /// The currently-open row, if any.
    pub open_row: Option<u32>,
    /// Earliest time the next column command may start.
    pub ready_ps: u64,
    /// Start time of the most recent activate (for tRC), if any.
    pub last_act_ps: Option<u64>,
}

impl BankFsm {
    /// Classifies an access to `row` without mutating state.
    #[must_use]
    pub fn classify(&self, row: u32) -> AccessKind {
        match self.open_row {
            Some(open) if open == row => AccessKind::RowHit,
            Some(_) => AccessKind::RowConflict,
            None => AccessKind::RowMiss,
        }
    }

    /// Performs an access to `row` arriving at `arrival_ps` under `policy`.
    ///
    /// Returns `(kind, act_start_ps, data_done_ps)`: whether an activate was
    /// needed, when it started (equal to command start when no ACT was
    /// issued), and when the data burst completes.
    pub fn access_with_policy(
        &mut self,
        row: u32,
        arrival_ps: u64,
        timings: &DdrTimings,
        policy: PagePolicy,
    ) -> (AccessKind, u64, u64) {
        let kind = self.classify(row);
        let (act, done) = self.access_classified(kind, row, arrival_ps, timings, policy);
        (kind, act, done)
    }

    /// [`Self::access_with_policy`] with the row-buffer interaction already
    /// classified — for callers that computed [`Self::classify`] on the
    /// current state anyway (the controller does, for rank ACT
    /// constraints). `kind` must be that classification, unmodified.
    pub fn access_classified(
        &mut self,
        kind: AccessKind,
        row: u32,
        arrival_ps: u64,
        timings: &DdrTimings,
        policy: PagePolicy,
    ) -> (u64, u64) {
        let (act, done) = self.serve(kind, row, arrival_ps, timings);
        if policy == PagePolicy::Closed {
            // Auto-precharge overlaps the burst; the bank is simply closed
            // and ready tRP after the access completes.
            self.open_row = None;
            self.ready_ps += timings.t_rp_ps;
        }
        (act, done)
    }

    /// Performs an access to `row` arriving at `arrival_ps` (open-page).
    ///
    /// Returns `(kind, act_start_ps, data_done_ps)`; leaves the row open.
    pub fn access(
        &mut self,
        row: u32,
        arrival_ps: u64,
        timings: &DdrTimings,
    ) -> (AccessKind, u64, u64) {
        let kind = self.classify(row);
        let (act, done) = self.serve(kind, row, arrival_ps, timings);
        (kind, act, done)
    }

    /// The timing core shared by every access form: `kind` is the
    /// classification of `row` against the current state.
    #[inline]
    fn serve(
        &mut self,
        kind: AccessKind,
        row: u32,
        arrival_ps: u64,
        timings: &DdrTimings,
    ) -> (u64, u64) {
        let start = arrival_ps.max(self.ready_ps);
        let (act_start, done) = match kind {
            AccessKind::RowHit => (start, start + timings.hit_latency_ps()),
            AccessKind::RowMiss => {
                // Activate may not start before tRC from the previous ACT.
                let floor = self.last_act_ps.map_or(0, |a| a + timings.t_rc_ps);
                let act = start.max(floor);
                self.last_act_ps = Some(act);
                (act, act + timings.miss_latency_ps())
            }
            AccessKind::RowConflict => {
                let pre_done = start + timings.t_rp_ps;
                let floor = self.last_act_ps.map_or(0, |a| a + timings.t_rc_ps);
                let act = pre_done.max(floor);
                self.last_act_ps = Some(act);
                (
                    act,
                    act + timings.t_rcd_ps + timings.t_cl_ps + timings.t_burst_ps,
                )
            }
        };
        self.open_row = Some(row);
        self.ready_ps = done;
        (act_start, done)
    }

    /// Closes the bank (e.g. on refresh).
    pub fn precharge(&mut self, now_ps: u64, timings: &DdrTimings) {
        self.open_row = None;
        self.ready_ps = self.ready_ps.max(now_ps) + timings.t_rp_ps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_hit_miss_conflict() {
        let mut b = BankFsm::default();
        assert_eq!(b.classify(5), AccessKind::RowMiss);
        let t = DdrTimings::default();
        b.access(5, 0, &t);
        assert_eq!(b.classify(5), AccessKind::RowHit);
        assert_eq!(b.classify(6), AccessKind::RowConflict);
    }

    #[test]
    fn latencies_order_hit_miss_conflict() {
        let t = DdrTimings::default();
        let mut hit = BankFsm::default();
        hit.access(5, 0, &t);
        let (_, _, hit_done) = hit.access(5, 1_000_000, &t);

        let mut miss = BankFsm::default();
        let (_, _, miss_done) = miss.access(5, 1_000_000, &t);

        let mut conflict = BankFsm::default();
        conflict.access(4, 0, &t);
        let (_, _, conflict_done) = conflict.access(5, 1_000_000, &t);

        let hit_lat = hit_done - 1_000_000;
        let miss_lat = miss_done - 1_000_000;
        let conflict_lat = conflict_done - 1_000_000;
        assert!(hit_lat < miss_lat, "{hit_lat} < {miss_lat}");
        assert!(miss_lat < conflict_lat, "{miss_lat} < {conflict_lat}");
    }

    #[test]
    fn trc_limits_back_to_back_activates() {
        let t = DdrTimings::default();
        let mut b = BankFsm::default();
        let (_, act1, _) = b.access(1, 0, &t);
        // Conflict immediately: second ACT must wait tRC from first.
        let (_, act2, _) = b.access(2, 0, &t);
        assert!(act2 >= act1 + t.t_rc_ps);
    }

    #[test]
    fn precharge_closes_row() {
        let t = DdrTimings::default();
        let mut b = BankFsm::default();
        b.access(1, 0, &t);
        b.precharge(100_000, &t);
        assert_eq!(b.classify(1), AccessKind::RowMiss);
        assert!(b.ready_ps >= 100_000 + t.t_rp_ps);
    }

    #[test]
    fn arrival_after_ready_starts_at_arrival() {
        let t = DdrTimings::default();
        let mut b = BankFsm::default();
        let (_, _, done) = b.access(1, 5_000_000, &t);
        assert_eq!(done, 5_000_000 + t.miss_latency_ps());
    }
}
