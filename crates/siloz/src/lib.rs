//! Siloz: a hypervisor using subarray groups as DRAM isolation domains.
//!
//! This crate is the paper's primary contribution, reimplemented over the
//! workspace's simulated substrate. It prevents *inter-VM Rowhammer* by
//! placing each VM's — and the host's — unmediated data into private
//! *subarray groups* (§4): collections of at least one subarray from every
//! bank of a socket, so VMs keep full bank-level parallelism while being
//! electrically isolated from one another's hammering.
//!
//! The pieces, mirroring §5 of the paper:
//!
//! - [`group`]: boot-time computation of which physical pages map to which
//!   subarray group (§5.3), via the system address decoder;
//! - [`artificial`]: artificial subarray groups and reserved-page accounting
//!   for DIMM-internal transformations and repairs (§6);
//! - [`provision`]: subarray groups abstracted as logical NUMA nodes, with
//!   host-reserved and guest-reserved nodes (§5.2);
//! - [`ept_guard`]: guard-row protection for extended page tables —
//!   `b = 32` consecutive row groups with the EPT row group at offset
//!   `o = 12` (§5.4) — reserving ≈0.024% of each bank;
//! - [`vm`]: VM lifecycle — QEMU-style memory-region mediation
//!   classification, the `UNMEDIATED` mmap flag, huge-page backing (§5.1,
//!   §5.3);
//! - [`hypervisor`]: the Siloz hypervisor and the unmodified-Linux/KVM-style
//!   baseline it is evaluated against (§7);
//! - [`defenses`]: the competing software defenses of §3/§8.3 (guard-row
//!   schemes, SoftTRR-style refresh, Copy-on-Flip-style migration), used by
//!   the comparison experiments.

#![forbid(unsafe_code)]

pub mod artificial;
pub mod audit;
pub mod boot_cache;
pub mod config;
pub mod defenses;
pub mod ept_guard;
pub mod group;
pub mod guest_paging;
pub mod hypervisor;
pub mod iommu;
pub mod provision;
pub mod snc;
pub mod virtio;
pub mod vm;

pub use audit::{audit, AuditReport, Violation};
pub use boot_cache::{from_cache, to_cache};
pub use config::{EptProtection, SilozConfig};
pub use ept_guard::EptGuardPlan;
pub use group::{GroupId, GroupInfo, GroupOccupancy, OccupancyReport, SubarrayGroupMap};
pub use guest_paging::GuestPageTables;
pub use hypervisor::{Hypervisor, HypervisorKind};
pub use iommu::IommuDomain;
pub use provision::ProvisionedTopology;
pub use snc::{apply_snc, SncMap};
pub use virtio::{DmaRateLimiter, VirtQueue, VirtioBlk};
pub use vm::{BackingBlock, MemoryRegionKind, VmHandle, VmSpec};

/// Errors produced by the hypervisor and its boot-time computations.
#[derive(Debug, Clone, PartialEq)]
pub enum SilozError {
    /// Address translation failed.
    Addr(dram_addr::AddrError),
    /// NUMA/buddy failure.
    Numa(numa::NumaError),
    /// EPT failure.
    Ept(ept::EptError),
    /// Configuration inconsistent with the geometry/decoder.
    BadConfig(String),
    /// Not enough free guest-reserved nodes/capacity for a VM.
    InsufficientCapacity {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Unknown VM handle.
    NoSuchVm(u32),
    /// The requesting process lacks the required privileges (§5.3: only
    /// KVM-privileged processes in the right control group may allocate
    /// from guest-reserved nodes).
    NotPermitted(String),
}

impl core::fmt::Display for SilozError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SilozError::Addr(e) => write!(f, "address translation: {e}"),
            SilozError::Numa(e) => write!(f, "numa: {e}"),
            SilozError::Ept(e) => write!(f, "ept: {e}"),
            SilozError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            SilozError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity: requested {requested}, available {available}"
            ),
            SilozError::NoSuchVm(id) => write!(f, "no such VM {id}"),
            SilozError::NotPermitted(what) => write!(f, "not permitted: {what}"),
        }
    }
}

impl std::error::Error for SilozError {}

impl From<dram_addr::AddrError> for SilozError {
    fn from(e: dram_addr::AddrError) -> Self {
        SilozError::Addr(e)
    }
}

impl From<numa::NumaError> for SilozError {
    fn from(e: numa::NumaError) -> Self {
        SilozError::Numa(e)
    }
}

impl From<ept::EptError> for SilozError {
    fn from(e: ept::EptError) -> Self {
        SilozError::Ept(e)
    }
}
