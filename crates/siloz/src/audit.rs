//! Whole-system invariant auditing.
//!
//! A booted hypervisor holds several safety-critical invariants that the
//! rest of the crate establishes piecewise; this module re-derives them
//! globally from live state, the way a production system self-checks:
//!
//! 1. **Node disjointness** — no page frame belongs to two logical nodes.
//! 2. **Coverage** — node frames partition exactly the machine's DRAM.
//! 3. **Group alignment** — every logical node's frames lie inside its
//!    subarray groups (Siloz only).
//! 4. **VM containment** — every VM's unmediated backing lies inside its
//!    own groups; no two VMs share a group (Siloz only).
//! 5. **EPT placement** — every VM's EPT table pages lie inside the
//!    guard-protected EPT row group (when guard rows are configured).
//! 6. **Claim consistency** — every guest node claimed by a control group
//!    belongs to exactly the VM naming that group.
//!
//! [`audit`] returns every violation found rather than failing fast, so
//! operators (and the `silozctl audit` command) see the full picture.

use crate::hypervisor::{Hypervisor, HypervisorKind};
use crate::SilozError;
use std::collections::HashMap;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A frame appears in two nodes.
    OverlappingNodes {
        /// Offending frame.
        frame: u64,
    },
    /// Node frames do not exactly cover DRAM.
    CoverageGap {
        /// Frames covered by nodes.
        covered: u64,
        /// Frames installed.
        installed: u64,
    },
    /// A node's frame lies outside its subarray groups.
    NodeOutsideGroups {
        /// Offending node.
        node: u32,
        /// Offending frame.
        frame: u64,
    },
    /// A VM backing block lies outside the VM's groups.
    BackingOutsideGroups {
        /// Offending VM.
        vm: u32,
        /// Offending host physical address.
        hpa: u64,
    },
    /// Two VMs share a subarray group.
    SharedGroup {
        /// First VM.
        a: u32,
        /// Second VM.
        b: u32,
        /// The shared group.
        group: u32,
    },
    /// An EPT table page sits outside the protected EPT row group.
    EptOutsideGuard {
        /// Offending VM.
        vm: u32,
        /// Offending table page HPA.
        hpa: u64,
    },
    /// A claimed guest node is not held by the claiming VM.
    StaleClaim {
        /// Offending node.
        node: u32,
    },
}

/// Result of a full audit.
#[derive(Debug, Default, Clone)]
pub struct AuditReport {
    /// All violations found (empty = healthy).
    pub violations: Vec<Violation>,
    /// Nodes inspected.
    pub nodes_checked: usize,
    /// VMs inspected.
    pub vms_checked: usize,
}

impl AuditReport {
    /// Whether the system passed.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full invariant audit.
pub fn audit(hv: &Hypervisor) -> Result<AuditReport, SilozError> {
    let mut report = AuditReport::default();
    let topo = hv.topology();
    let geometry = hv.config().geometry;

    // 1 + 2: disjointness and coverage, via sorted range sweep.
    let mut ranges: Vec<(u64, u64, u32)> = Vec::new();
    for info in topo.nodes() {
        report.nodes_checked += 1;
        for r in &info.frame_ranges {
            ranges.push((r.start, r.end, info.id.0));
        }
    }
    ranges.sort_unstable();
    let mut covered = 0u64;
    for w in ranges.windows(2) {
        if w[1].0 < w[0].1 {
            report
                .violations
                .push(Violation::OverlappingNodes { frame: w[1].0 });
        }
    }
    for &(start, end, _) in &ranges {
        covered += end - start;
    }
    let installed = geometry.total_bytes() / 4096;
    if covered != installed {
        report
            .violations
            .push(Violation::CoverageGap { covered, installed });
    }

    // 3: node frames inside their groups (Siloz logical nodes only).
    if hv.kind() == HypervisorKind::Siloz {
        for info in topo.nodes() {
            for r in &info.frame_ranges {
                for frame in [r.start, (r.start + r.end) / 2, r.end - 1] {
                    let group = hv.groups().group_of_frame(frame)?;
                    if hv.node_of_group(group) != Some(info.id) {
                        report.violations.push(Violation::NodeOutsideGroups {
                            node: info.id.0,
                            frame,
                        });
                    }
                }
            }
        }
    }

    // 4 + 5 + 6: per-VM checks.
    let mut group_owner: HashMap<u32, u32> = HashMap::new();
    for vm in hv.vm_handles() {
        report.vms_checked += 1;
        let groups = hv.vm_groups(vm)?;
        if hv.kind() == HypervisorKind::Siloz {
            for g in &groups {
                if let Some(&other) = group_owner.get(&g.0) {
                    report.violations.push(Violation::SharedGroup {
                        a: other,
                        b: vm.0,
                        group: g.0,
                    });
                }
                group_owner.insert(g.0, vm.0);
            }
            for block in hv.vm_unmediated_backing(vm)? {
                for probe in [block.hpa(), block.hpa() + block.bytes() - 1] {
                    let g = hv.groups().group_of_phys(probe)?;
                    if !groups.contains(&g) {
                        report.violations.push(Violation::BackingOutsideGroups {
                            vm: vm.0,
                            hpa: probe,
                        });
                    }
                }
            }
        }
        if let Some(plan) = hv.ept_plan() {
            for &hpa in hv.vm_ept_pages(vm)? {
                let (socket, row) = hv.decoder().row_group_of(hpa)?;
                let ok = plan.socket(socket).is_some_and(|sp| row == sp.ept_row);
                if !ok {
                    report
                        .violations
                        .push(Violation::EptOutsideGuard { vm: vm.0, hpa });
                }
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilozConfig;
    use crate::vm::VmSpec;

    #[test]
    fn healthy_system_audits_clean() {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let a = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let _b = hv.create_vm(VmSpec::new("b", 2, 200 << 20)).unwrap();
        hv.expand_vm(a, 64 << 20).unwrap();
        let report = audit(&hv).unwrap();
        assert!(report.is_healthy(), "violations: {:?}", report.violations);
        assert_eq!(report.vms_checked, 2);
        assert_eq!(report.nodes_checked, 8);
    }

    #[test]
    fn baseline_audits_clean_on_its_weaker_invariants() {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Baseline).unwrap();
        let _ = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let report = audit(&hv).unwrap();
        assert!(report.is_healthy());
    }

    #[test]
    fn evaluation_scale_audits_clean() {
        let mut hv = Hypervisor::boot(SilozConfig::evaluation(), HypervisorKind::Siloz).unwrap();
        let _ = hv.create_vm(VmSpec::new("a", 8, 6u64 << 30)).unwrap();
        let _ = hv
            .create_vm(VmSpec::new("b", 8, 3u64 << 30).on_socket(1))
            .unwrap();
        let report = audit(&hv).unwrap();
        assert!(report.is_healthy(), "violations: {:?}", report.violations);
        assert_eq!(report.nodes_checked, 256);
    }

    #[test]
    fn audit_survives_churn() {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        for round in 0..4 {
            let vm = hv
                .create_vm(VmSpec::new(&format!("r{round}"), 1, 200 << 20))
                .unwrap();
            assert!(audit(&hv).unwrap().is_healthy());
            hv.destroy_vm(vm).unwrap();
            assert!(audit(&hv).unwrap().is_healthy());
        }
    }
}
