//! Siloz boot configuration (Table 2 and §5.3 boot parameters).

use dram_addr::decoder::DecoderConfig;
use dram_addr::{Geometry, InternalMapConfig};

/// How EPT integrity is provided (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptProtection {
    /// Software guard rows: a block of `b` row groups per socket with the
    /// EPT row group at offset `o`; the rest are guard rows. The paper's
    /// implementation uses `b = 32`, `o = 12`.
    GuardRows {
        /// Total reserved row groups per socket.
        b: u32,
        /// Offset of the EPT row group within the block.
        o: u32,
    },
    /// Hardware secure EPT (TDX/SNP-style integrity checks on walks).
    SecureEpt,
    /// No protection (baseline hypervisor).
    None,
}

impl EptProtection {
    /// The paper's guard-row parameters.
    #[must_use]
    pub const fn paper_guard_rows() -> Self {
        EptProtection::GuardRows { b: 32, o: 12 }
    }
}

/// Full boot-time configuration of a hypervisor instance.
#[derive(Debug, Clone)]
pub struct SilozConfig {
    /// DRAM geometry (true subarray size included).
    pub geometry: Geometry,
    /// Physical-to-media decoder configuration (fixed by BIOS, §2.4).
    pub decoder: DecoderConfig,
    /// Rows per subarray as *presumed by Siloz* — the boot parameter of
    /// §5.3. May differ from the geometry's true size in sensitivity
    /// experiments (§7.4).
    pub presumed_subarray_rows: u32,
    /// DIMM-internal address transformations to account for (§6).
    pub internal_map: InternalMapConfig,
    /// EPT protection scheme.
    pub ept_protection: EptProtection,
    /// Logical cores per socket (Table 2: 40).
    pub cores_per_socket: u32,
    /// Number of host-reserved subarray groups per socket (§5.2: all but
    /// one logical node per socket is guest-reserved).
    pub host_groups_per_socket: u32,
}

impl SilozConfig {
    /// The evaluation server configuration (Table 2) with the paper's
    /// defaults: 1024-row subarrays presumed, guard-row EPT protection.
    #[must_use]
    pub fn evaluation() -> Self {
        Self {
            geometry: dram_addr::skylake_geometry(),
            decoder: DecoderConfig::default(),
            presumed_subarray_rows: 1024,
            internal_map: InternalMapConfig::default(),
            ept_protection: EptProtection::paper_guard_rows(),
            cores_per_socket: 40,
            host_groups_per_socket: 1,
        }
    }

    /// A scaled-down configuration for fast tests and examples, built on
    /// [`dram_addr::mini_geometry`] (1 socket, 1 GiB, 256-row subarrays).
    #[must_use]
    pub fn mini() -> Self {
        Self {
            geometry: dram_addr::mini_geometry(),
            decoder: DecoderConfig {
                row_groups_per_block: 4,
                jump_bytes: 64 << 20,
                bank_hash: dram_addr::BankHash::XorRow,
            },
            presumed_subarray_rows: 256,
            // 256-row subarrays sit below the commodity 512-2048 range:
            // odd-rank mirroring (swapping <b7,b8>) would split them across
            // internal subarrays (§6), so the mini machine models DIMMs
            // without mirroring (inversion alone is always block-wise).
            internal_map: InternalMapConfig {
                mirroring: false,
                inversion: true,
                scrambling: false,
            },
            ept_protection: EptProtection::GuardRows { b: 8, o: 3 },
            cores_per_socket: 8,
            host_groups_per_socket: 1,
        }
    }

    /// Returns a copy presuming a different subarray size (Siloz-512 /
    /// Siloz-1024 / Siloz-2048, §7.4).
    #[must_use]
    pub fn with_presumed_subarray_rows(mut self, rows: u32) -> Self {
        self.presumed_subarray_rows = rows;
        self
    }

    /// Size in bytes of one (presumed) subarray group (§4.1).
    #[must_use]
    pub fn subarray_group_bytes(&self) -> u64 {
        self.presumed_subarray_rows as u64 * self.geometry.row_group_bytes()
    }

    /// Number of whole (presumed) subarray groups per socket.
    #[must_use]
    pub fn groups_per_socket(&self) -> u32 {
        self.geometry.rows_per_bank / self.presumed_subarray_rows
    }

    /// Renders the Table 2-style configuration summary.
    #[must_use]
    pub fn render_table2(&self) -> String {
        let g = &self.geometry;
        format!(
            "Parameter      | Value\n\
             ---------------+------------------------------------------------------------\n\
             Host Machine   | {} sockets; per-socket: {} logical cores, {} GiB DDR4 DRAM\n\
             Memory geometry| {} ch x {} DIMM x {} ranks x {} banks = {} banks/socket,\n\
             Subarrays      | {} rows of {} KiB per subarray\n\
             Hypervisor     | Siloz (subarray groups as logical NUMA nodes)\n\
             Subarray rows  | {} presumed (boot parameter)\n\
             EPT protection | {:?}",
            g.sockets,
            self.cores_per_socket,
            g.socket_bytes() >> 30,
            g.channels_per_socket,
            g.dimms_per_channel,
            g.ranks_per_dimm,
            g.banks_per_rank(),
            g.banks_per_socket(),
            g.rows_per_subarray,
            g.row_bytes >> 10,
            self.presumed_subarray_rows,
            self.ept_protection,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_config_matches_paper() {
        let c = SilozConfig::evaluation();
        assert_eq!(c.subarray_group_bytes(), 3 << 29, "1.5 GiB groups");
        assert_eq!(c.groups_per_socket(), 128);
        assert_eq!(c.ept_protection, EptProtection::GuardRows { b: 32, o: 12 });
    }

    #[test]
    fn sensitivity_variants_scale_group_counts() {
        // §7.4: Siloz-512 needs twice the nodes of Siloz-1024; Siloz-2048
        // half.
        let c1024 = SilozConfig::evaluation();
        let c512 = c1024.clone().with_presumed_subarray_rows(512);
        let c2048 = c1024.clone().with_presumed_subarray_rows(2048);
        assert_eq!(c512.groups_per_socket(), 2 * c1024.groups_per_socket());
        assert_eq!(c2048.groups_per_socket(), c1024.groups_per_socket() / 2);
        assert_eq!(c512.subarray_group_bytes(), 3 << 28); // 0.75 GiB
        assert_eq!(c2048.subarray_group_bytes(), 3 << 30); // 3 GiB
    }

    #[test]
    fn mini_config_is_consistent() {
        let c = SilozConfig::mini();
        assert_eq!(c.groups_per_socket(), 8);
        c.geometry.validate().unwrap();
    }

    #[test]
    fn table2_renders() {
        let s = SilozConfig::evaluation().render_table2();
        assert!(s.contains("192 banks"));
        assert!(s.contains("1024 presumed"));
    }
}
