//! IOMMU support for secure passthrough I/O (§5.1).
//!
//! The Siloz prototype uses paravirtual (virtio) I/O, so the hypervisor
//! mediates all DMA. To instead support SR-IOV passthrough, §5.1 says Siloz
//! would need to (1) ensure the device's IOMMU restricts each guest's DMAs
//! to its subarray groups' address ranges, and (2) protect the IOMMU page
//! table pages akin to EPT pages. This module implements exactly that: a
//! per-VM DMA remap table whose mappings are validated against the VM's
//! provisioned groups and whose table pages are drawn from the
//! guard-protected EPT row group.

use crate::group::GroupId;
use crate::hypervisor::Hypervisor;
use crate::vm::VmHandle;
use crate::SilozError;
use std::collections::BTreeMap;

/// A passthrough device's DMA address space for one VM.
///
/// Maps I/O virtual addresses (IOVAs) to host physical addresses at 4 KiB
/// granularity. Every mapping is checked against the VM's subarray groups
/// at install time — a DMA can never reference another domain's rows.
#[derive(Debug)]
pub struct IommuDomain {
    vm: VmHandle,
    /// Groups the domain may address (snapshot at creation).
    groups: Vec<GroupId>,
    /// IOVA page -> HPA page.
    mappings: BTreeMap<u64, u64>,
    /// Table pages backing the remap structures (allocated from the
    /// protected EPT pool, §5.4-style).
    table_pages: Vec<u64>,
}

impl IommuDomain {
    /// Creates a DMA domain for `vm`, drawing its first table page from the
    /// protected pool.
    pub fn new(hv: &mut Hypervisor, vm: VmHandle) -> Result<Self, SilozError> {
        let groups = hv.vm_groups(vm)?;
        let table = hv.alloc_protected_table_page(vm)?;
        Ok(Self {
            vm,
            groups,
            mappings: BTreeMap::new(),
            table_pages: vec![table],
        })
    }

    /// The VM this domain belongs to.
    #[must_use]
    pub fn vm(&self) -> VmHandle {
        self.vm
    }

    /// HPAs of the domain's table pages.
    #[must_use]
    pub fn table_pages(&self) -> &[u64] {
        &self.table_pages
    }

    /// Number of live mappings.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.mappings.len()
    }

    /// Installs a mapping `iova -> hpa` (both 4 KiB aligned).
    ///
    /// Fails with [`SilozError::NotPermitted`] if `hpa` lies outside the
    /// VM's subarray groups — the §5.1 requirement for secure passthrough.
    pub fn map(&mut self, hv: &mut Hypervisor, iova: u64, hpa: u64) -> Result<(), SilozError> {
        if !iova.is_multiple_of(4096) || !hpa.is_multiple_of(4096) {
            return Err(SilozError::BadConfig(
                "IOMMU mappings are 4 KiB aligned".into(),
            ));
        }
        let group = hv.groups().group_of_phys(hpa)?;
        if !self.groups.contains(&group) {
            return Err(SilozError::NotPermitted(format!(
                "DMA target {hpa:#x} is in group {group:?}, outside the VM's domains"
            )));
        }
        // Grow the (modeled) table every 512 mappings, from the protected
        // pool, like last-level EPT pages.
        if self.mappings.len() % 512 == 511 {
            self.table_pages
                .push(hv.alloc_protected_table_page(self.vm)?);
        }
        self.mappings.insert(iova, hpa);
        Ok(())
    }

    /// Translates a DMA access.
    pub fn translate(&self, iova: u64) -> Result<u64, SilozError> {
        let page = iova & !4095;
        let hpa = self
            .mappings
            .get(&page)
            .ok_or(SilozError::Ept(ept::EptError::NotMapped { gpa: iova }))?;
        Ok(hpa + (iova & 4095))
    }

    /// Removes a mapping.
    pub fn unmap(&mut self, iova: u64) -> bool {
        self.mappings.remove(&(iova & !4095)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilozConfig;
    use crate::hypervisor::HypervisorKind;
    use crate::vm::VmSpec;

    fn setup() -> (Hypervisor, VmHandle, VmHandle) {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let a = hv.create_vm(VmSpec::new("a", 1, 96 << 20)).unwrap();
        let b = hv.create_vm(VmSpec::new("b", 1, 96 << 20)).unwrap();
        (hv, a, b)
    }

    #[test]
    fn dma_to_own_memory_is_allowed() {
        let (mut hv, a, _) = setup();
        let mut dom = IommuDomain::new(&mut hv, a).unwrap();
        let own = hv.vm_unmediated_backing(a).unwrap()[0].hpa();
        dom.map(&mut hv, 0x1000, own).unwrap();
        assert_eq!(dom.translate(0x1234).unwrap(), own + 0x234);
        assert_eq!(dom.mapped_pages(), 1);
        assert!(dom.unmap(0x1000));
        assert!(dom.translate(0x1000).is_err());
    }

    #[test]
    fn dma_to_another_vms_memory_is_rejected() {
        let (mut hv, a, b) = setup();
        let mut dom = IommuDomain::new(&mut hv, a).unwrap();
        let other = hv.vm_unmediated_backing(b).unwrap()[0].hpa();
        let err = dom.map(&mut hv, 0x1000, other).unwrap_err();
        assert!(matches!(err, SilozError::NotPermitted(_)));
        assert_eq!(dom.mapped_pages(), 0);
    }

    #[test]
    fn dma_to_host_memory_is_rejected() {
        let (mut hv, a, _) = setup();
        let mut dom = IommuDomain::new(&mut hv, a).unwrap();
        // Host-reserved group 0 starts at phys 0 on the mini machine.
        let err = dom.map(&mut hv, 0, 0x10_0000).unwrap_err();
        assert!(matches!(err, SilozError::NotPermitted(_)));
    }

    #[test]
    fn iommu_table_pages_live_in_the_protected_row_group() {
        let (mut hv, a, _) = setup();
        let dom = IommuDomain::new(&mut hv, a).unwrap();
        let plan = hv.ept_plan().unwrap();
        let sp = plan.socket(0).unwrap();
        for &hpa in dom.table_pages() {
            let (_, row) = hv.decoder().row_group_of(hpa).unwrap();
            assert_eq!(
                row, sp.ept_row,
                "IOMMU tables must be guard-protected (§5.1)"
            );
        }
    }

    #[test]
    fn misaligned_mappings_are_rejected() {
        let (mut hv, a, _) = setup();
        let mut dom = IommuDomain::new(&mut hv, a).unwrap();
        let own = hv.vm_unmediated_backing(a).unwrap()[0].hpa();
        assert!(dom.map(&mut hv, 0x1001, own).is_err());
        assert!(dom.map(&mut hv, 0x1000, own + 5).is_err());
    }
}
