//! Guard-row protection for extended page tables (§5.4).
//!
//! All of a socket's EPTs fit in a single row group under the paper's
//! deployment conditions (no page sharing, contiguous VM allocation, 2 MiB
//! guest backing): each 4 KiB EPT page maps ~1 GiB, and one 1.5 MiB row
//! group holds 384 EPT pages — enough to map 384 GiB. Siloz therefore
//! reserves a contiguous block of `b` row groups in a designated (host)
//! subarray group; the row group at offset `o` holds EPT pages and the other
//! `b - 1` serve as guard rows, split above and below.
//!
//! The paper's `b = 32`, `o = 12` reserve just ≈0.024% of each bank and keep
//! the EPT row far enough from the block edges that DIMM-internal half-row
//! remaps (mirroring/inversion/scrambling, which permute and relocate whole
//! 32-aligned blocks) can never bring an attacker-reachable row within the
//! Rowhammer blast radius of an EPT row. The security experiments verify
//! this empirically against the device model.

use crate::SilozError;
use dram_addr::{Geometry, SystemAddressDecoder};
use ept::{EptAllocator, EptError};
use numa::{frame_of_hpa, hpa_of_frame};
use std::ops::Range;

/// Per-socket EPT guard placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketEptPlan {
    /// Socket this plan covers.
    pub socket: u16,
    /// The `b` consecutive reserved row groups.
    pub block_rows: Range<u32>,
    /// The row group holding EPT pages (`block_rows.start + o`).
    pub ept_row: u32,
    /// Page frames of the EPT row group (contiguous under the Skylake
    /// mapping).
    pub ept_frames: Range<u64>,
    /// Page frames of the guard row groups (to be offlined).
    pub guard_frames: Vec<u64>,
}

/// The machine-wide EPT guard-row plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EptGuardPlan {
    /// Reserved row groups per socket.
    pub b: u32,
    /// Offset of the EPT row group within the block.
    pub o: u32,
    /// Per-socket placements.
    pub sockets: Vec<SocketEptPlan>,
}

impl EptGuardPlan {
    /// Computes the plan, placing each socket's block at `base_row(socket)`
    /// (typically the first rows of the socket's host-reserved group).
    ///
    /// `base_row` must be `b`-aligned so DIMM-internal transforms relocate
    /// the block wholesale (§6); the paper's placement at a subarray group
    /// start satisfies this.
    pub fn compute(
        decoder: &SystemAddressDecoder,
        b: u32,
        o: u32,
        base_row: impl Fn(u16) -> u32,
    ) -> Result<Self, SilozError> {
        let g = decoder.geometry();
        if b == 0 || o >= b {
            return Err(SilozError::BadConfig(format!(
                "EPT guard block b={b}, o={o} invalid: need 0 <= o < b"
            )));
        }
        let mut sockets = Vec::with_capacity(g.sockets as usize);
        for socket in 0..g.sockets {
            let base = base_row(socket);
            if !base.is_multiple_of(b) {
                return Err(SilozError::BadConfig(format!(
                    "EPT block base row {base} not {b}-aligned on socket {socket}"
                )));
            }
            if base + b > g.rows_per_bank {
                return Err(SilozError::BadConfig(format!(
                    "EPT block [{base}, {}) exceeds bank rows",
                    base + b
                )));
            }
            // The whole block must stay within one subarray: guard rows
            // outside the EPT row's subarray would protect nothing.
            if base / g.rows_per_subarray != (base + b - 1) / g.rows_per_subarray {
                return Err(SilozError::BadConfig(format!(
                    "EPT block [{base}, {}) straddles a subarray boundary",
                    base + b
                )));
            }
            let ept_row = base + o;
            let ept_phys = decoder.phys_range_of_row_group(socket, ept_row)?;
            let ept_frames = frame_of_hpa(ept_phys.start)..frame_of_hpa(ept_phys.end);
            let mut guard_frames = Vec::new();
            for row in base..base + b {
                if row == ept_row {
                    continue;
                }
                let phys = decoder.phys_range_of_row_group(socket, row)?;
                guard_frames.extend(frame_of_hpa(phys.start)..frame_of_hpa(phys.end));
            }
            guard_frames.sort_unstable();
            sockets.push(SocketEptPlan {
                socket,
                block_rows: base..base + b,
                ept_row,
                ept_frames,
                guard_frames,
            });
        }
        Ok(Self { b, o, sockets })
    }

    /// The plan for one socket.
    #[must_use]
    pub fn socket(&self, socket: u16) -> Option<&SocketEptPlan> {
        self.sockets.iter().find(|s| s.socket == socket)
    }

    /// Fraction of each bank reserved for EPTs + guards (§5.4: ≈0.024% for
    /// the paper's parameters on 1 GiB banks).
    #[must_use]
    pub fn reserved_fraction(&self, geometry: &Geometry) -> f64 {
        self.b as f64 / geometry.rows_per_bank as f64
    }

    /// Whether a media row of some bank falls inside a reserved block.
    #[must_use]
    pub fn row_is_reserved(&self, socket: u16, row: u32) -> bool {
        self.socket(socket)
            .is_some_and(|s| s.block_rows.contains(&row))
    }
}

/// Bump allocator over a socket's EPT row-group frames, implementing the
/// GFP_EPT allocation path (§5.4).
#[derive(Debug, Clone)]
pub struct EptFrameAlloc {
    frames: Range<u64>,
    next: u64,
    freed: Vec<u64>,
    allocs: u64,
    denials: u64,
}

impl EptFrameAlloc {
    /// Creates an allocator over a socket plan's EPT frames.
    #[must_use]
    pub fn new(plan: &SocketEptPlan) -> Self {
        Self {
            frames: plan.ept_frames.clone(),
            next: plan.ept_frames.start,
            freed: Vec::new(),
            allocs: 0,
            denials: 0,
        }
    }

    /// Table pages handed out so far (including recycled frames).
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Allocation requests refused because the EPT row group was full.
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Adds this pool's totals into `reg`: allocations, pool-exhaustion
    /// denials, and remaining capacity.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("frame_allocs").add(self.allocs);
        reg.counter("frame_denials").add(self.denials);
        reg.gauge("frames_remaining").add(self.remaining() as i64);
    }

    /// Remaining EPT table pages available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.frames.end - self.next + self.freed.len() as u64
    }

    /// Returns a table page to the pool (VM shutdown).
    pub fn release(&mut self, hpa: u64) {
        debug_assert!(self.contains_hpa(hpa));
        self.freed.push(frame_of_hpa(hpa));
    }

    /// Whether `hpa` lies within the EPT row group.
    #[must_use]
    pub fn contains_hpa(&self, hpa: u64) -> bool {
        let f = frame_of_hpa(hpa);
        f >= self.frames.start && f < self.frames.end
    }
}

impl EptAllocator for EptFrameAlloc {
    fn alloc_table_page(&mut self) -> Result<u64, EptError> {
        if let Some(frame) = self.freed.pop() {
            self.allocs += 1;
            return Ok(hpa_of_frame(frame));
        }
        if self.next >= self.frames.end {
            self.denials += 1;
            return Err(EptError::OutOfMemory);
        }
        let frame = self.next;
        self.next += 1;
        self.allocs += 1;
        Ok(hpa_of_frame(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::{mini_decoder, skylake_decoder};

    #[test]
    fn paper_parameters_reserve_0_024_percent() {
        let dec = skylake_decoder();
        let plan = EptGuardPlan::compute(&dec, 32, 12, |_| 0).unwrap();
        let frac = plan.reserved_fraction(dec.geometry());
        assert!((frac - 0.000244).abs() < 0.00001, "fraction {frac}");
        assert_eq!(plan.sockets.len(), 2);
        for s in &plan.sockets {
            assert_eq!(s.ept_row, 12);
            assert_eq!(s.block_rows, 0..32);
            // One 1.5 MiB row group of EPT frames = 384 table pages,
            // enough to map 384 GiB with 2 MiB-backed guests (§5.4).
            assert_eq!(s.ept_frames.end - s.ept_frames.start, 384);
            // 31 guard row groups.
            assert_eq!(s.guard_frames.len(), 31 * 384);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let dec = skylake_decoder();
        assert!(EptGuardPlan::compute(&dec, 0, 0, |_| 0).is_err());
        assert!(EptGuardPlan::compute(&dec, 32, 32, |_| 0).is_err());
        assert!(
            EptGuardPlan::compute(&dec, 32, 12, |_| 7).is_err(),
            "unaligned base"
        );
        assert!(
            EptGuardPlan::compute(&dec, 32, 12, |_| 1024 - 16).is_err(),
            "straddles subarray"
        );
        let g = dec.geometry();
        assert!(EptGuardPlan::compute(&dec, 32, 12, |_| g.rows_per_bank).is_err());
    }

    #[test]
    fn row_is_reserved_matches_block() {
        let dec = mini_decoder();
        let plan = EptGuardPlan::compute(&dec, 8, 3, |_| 0).unwrap();
        assert!(plan.row_is_reserved(0, 0));
        assert!(plan.row_is_reserved(0, 7));
        assert!(!plan.row_is_reserved(0, 8));
        assert!(!plan.row_is_reserved(1, 0), "no such socket");
    }

    #[test]
    fn guard_and_ept_frames_are_disjoint_and_in_block() {
        let dec = mini_decoder();
        let plan = EptGuardPlan::compute(&dec, 8, 3, |_| 0).unwrap();
        let s = &plan.sockets[0];
        for f in s.ept_frames.clone() {
            assert!(!s.guard_frames.contains(&f));
            let (_, row) = dec.row_group_of(f * 4096).unwrap();
            assert_eq!(row, s.ept_row);
        }
        for &f in &s.guard_frames {
            let (_, row) = dec.row_group_of(f * 4096).unwrap();
            assert!(s.block_rows.contains(&row));
            assert_ne!(row, s.ept_row);
        }
    }

    #[test]
    fn frame_alloc_bumps_and_exhausts() {
        let dec = mini_decoder();
        let plan = EptGuardPlan::compute(&dec, 8, 3, |_| 0).unwrap();
        let mut alloc = EptFrameAlloc::new(&plan.sockets[0]);
        let total = alloc.remaining();
        assert!(total > 0);
        let first = alloc.alloc_table_page().unwrap();
        assert!(alloc.contains_hpa(first));
        assert_eq!(alloc.remaining(), total - 1);
        for _ in 1..total {
            alloc.alloc_table_page().unwrap();
        }
        assert_eq!(alloc.alloc_table_page(), Err(EptError::OutOfMemory));
        assert_eq!(alloc.allocs(), total);
        assert_eq!(alloc.denials(), 1);
    }

    #[test]
    fn blocks_can_be_placed_in_any_aligned_subarray_offset() {
        let dec = skylake_decoder();
        // Place at the start of subarray group 5 on each socket.
        let plan = EptGuardPlan::compute(&dec, 32, 12, |_| 5 * 1024).unwrap();
        assert_eq!(plan.sockets[0].ept_row, 5 * 1024 + 12);
    }
}
