//! VM specifications, memory-region mediation, and VM state (§5.1).

use ept::PageSize;
use numa::NodeId;

/// QEMU-style memory-region classification (§5.1).
///
/// Siloz decides placement by whether a VM can access a page *unmediated*
/// (without a VM exit): unmediated pages go to the VM's private
/// guest-reserved subarray groups; everything else stays host-reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryRegionKind {
    /// Guest RAM: fully unmediated.
    Ram,
    /// Guest ROM: unmediated reads (writes discarded).
    Rom,
    /// ROM device: unmediated reads, mediated writes.
    RomDevice,
    /// Emulated MMIO: every access exits to the hypervisor.
    Mmio,
    /// Paravirtual (virtio) queue memory: DMAs are mediated by the
    /// hypervisor, but the queue pages themselves are guest-visible RAM.
    VirtioQueue,
}

impl MemoryRegionKind {
    /// Whether a VM can reach this region without a VM exit for some access
    /// type — the §5.1 placement criterion.
    #[must_use]
    pub fn is_unmediated(self) -> bool {
        match self {
            MemoryRegionKind::Ram
            | MemoryRegionKind::Rom
            | MemoryRegionKind::RomDevice
            | MemoryRegionKind::VirtioQueue => true,
            MemoryRegionKind::Mmio => false,
        }
    }
}

/// Specification of a VM to create.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// VM name (also its control-group name).
    pub name: String,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Guest RAM size in bytes.
    pub memory_bytes: u64,
    /// Preferred socket for NUMA locality (§5.2); falls back to any socket
    /// with capacity.
    pub preferred_socket: Option<u16>,
    /// Backing page size (the deployment default is 2 MiB huge pages).
    pub page_size: PageSize,
    /// Extra non-RAM regions: `(kind, bytes)` appended after RAM in GPA
    /// space.
    pub extra_regions: Vec<(MemoryRegionKind, u64)>,
    /// Whether the requesting process holds KVM privileges (§5.3: required
    /// to allocate from guest-reserved nodes).
    pub kvm_privileged: bool,
}

impl VmSpec {
    /// A standard VM: `memory_bytes` of RAM backed by 2 MiB pages.
    #[must_use]
    pub fn new(name: &str, vcpus: u32, memory_bytes: u64) -> Self {
        Self {
            name: name.to_string(),
            vcpus,
            memory_bytes,
            preferred_socket: None,
            page_size: PageSize::Size2M,
            extra_regions: Vec::new(),
            kvm_privileged: true,
        }
    }

    /// Pins the VM's memory to a socket.
    #[must_use]
    pub fn on_socket(mut self, socket: u16) -> Self {
        self.preferred_socket = Some(socket);
        self
    }

    /// Changes the backing page size.
    #[must_use]
    pub fn with_page_size(mut self, size: PageSize) -> Self {
        self.page_size = size;
        self
    }

    /// Adds an extra region.
    #[must_use]
    pub fn with_region(mut self, kind: MemoryRegionKind, bytes: u64) -> Self {
        self.extra_regions.push((kind, bytes));
        self
    }

    /// Drops KVM privileges (for §5.3 permission tests).
    #[must_use]
    pub fn unprivileged(mut self) -> Self {
        self.kvm_privileged = false;
        self
    }
}

/// Opaque handle to a created VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmHandle(pub u32);

/// One backing block of a VM region: `2^order` frames on `node`, mapped at
/// `gpa`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackingBlock {
    /// Guest physical address of the block.
    pub gpa: u64,
    /// First host frame.
    pub frame: u64,
    /// Buddy order (9 for 2 MiB, 18 for 1 GiB, 0 for 4 KiB).
    pub order: u8,
    /// Node the frames came from.
    pub node: NodeId,
}

impl BackingBlock {
    /// Host physical address of the block.
    #[must_use]
    pub fn hpa(&self) -> u64 {
        self.frame * 4096
    }

    /// Bytes covered.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        4096u64 << self.order
    }
}

/// A mapped region of a VM.
#[derive(Debug, Clone)]
pub struct VmRegion {
    /// Region classification.
    pub kind: MemoryRegionKind,
    /// Base guest physical address.
    pub gpa: u64,
    /// Region size in bytes.
    pub bytes: u64,
    /// Backing blocks, ascending by GPA.
    pub backing: Vec<BackingBlock>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mediation_classification_follows_section_5_1() {
        assert!(MemoryRegionKind::Ram.is_unmediated());
        assert!(MemoryRegionKind::Rom.is_unmediated());
        assert!(MemoryRegionKind::RomDevice.is_unmediated());
        assert!(MemoryRegionKind::VirtioQueue.is_unmediated());
        assert!(!MemoryRegionKind::Mmio.is_unmediated());
    }

    #[test]
    fn spec_builder_chains() {
        let spec = VmSpec::new("vm0", 4, 1 << 30)
            .on_socket(1)
            .with_page_size(PageSize::Size4K)
            .with_region(MemoryRegionKind::Mmio, 4096)
            .unprivileged();
        assert_eq!(spec.preferred_socket, Some(1));
        assert_eq!(spec.page_size, PageSize::Size4K);
        assert_eq!(spec.extra_regions.len(), 1);
        assert!(!spec.kvm_privileged);
    }

    #[test]
    fn backing_block_math() {
        let b = BackingBlock {
            gpa: 0,
            frame: 512,
            order: 9,
            node: NodeId(3),
        };
        assert_eq!(b.hpa(), 512 * 4096);
        assert_eq!(b.bytes(), 2 << 20);
    }
}
