//! Boot-time subarray group computation (§4, §5.3).
//!
//! During early boot, Siloz calculates which physical pages map to which
//! subarray groups using its port of the platform's address-translation
//! drivers. A *subarray group* is at least one subarray from every bank of a
//! socket (§4.1): with the evaluation geometry, rows `[s*1024, (s+1)*1024)`
//! of all 192 banks, which the Skylake mapping makes a contiguous 1.5 GiB
//! physical range. Because the physical-to-media mapping is fixed by BIOS
//! settings, the computed ranges can be cached across boots (§5.3).

use crate::SilozError;
use dram_addr::SystemAddressDecoder;
use numa::{frame_of_hpa, hpa_of_frame, is_frame_aligned, FRAME_BYTES};
use std::ops::Range;

/// Page frame size used throughout (4 KiB).
/// Identifier of a subarray group, dense across the machine:
/// `socket * groups_per_socket + index_within_socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// One subarray group's extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupInfo {
    /// Group id.
    pub id: GroupId,
    /// Socket whose banks the group spans.
    pub socket: u16,
    /// Media row range occupied in *every* bank of the socket.
    pub rows: Range<u32>,
    /// Physical page frames backing the group (merged, ascending).
    pub frames: Vec<Range<u64>>,
}

impl GroupInfo {
    /// Total bytes in the group.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.frames
            .iter()
            .map(|r| (r.end - r.start) * FRAME_BYTES)
            .sum()
    }

    /// Whether `frame` belongs to this group.
    #[must_use]
    pub fn contains_frame(&self, frame: u64) -> bool {
        self.frames
            .iter()
            .any(|r| frame >= r.start && frame < r.end)
    }
}

/// The machine-wide map from physical pages to subarray groups.
#[derive(Debug, Clone)]
pub struct SubarrayGroupMap {
    groups: Vec<GroupInfo>,
    groups_per_socket: u32,
    presumed_rows: u32,
    decoder: SystemAddressDecoder,
}

impl SubarrayGroupMap {
    /// Computes the full map for `presumed_rows`-row subarrays (§5.3's boot
    /// parameter).
    ///
    /// Fails if the presumed size does not align with the decoder's block
    /// structure (a block of `n` row groups must not straddle group
    /// boundaries, or pages would split across groups and 2 MiB isolation
    /// would be impossible, §4.2).
    pub fn compute(decoder: &SystemAddressDecoder, presumed_rows: u32) -> Result<Self, SilozError> {
        let g = decoder.geometry();
        if presumed_rows == 0 || presumed_rows > g.rows_per_bank {
            return Err(SilozError::BadConfig(format!(
                "presumed subarray rows {presumed_rows} out of range"
            )));
        }
        let n = decoder.config().row_groups_per_block;
        if !presumed_rows.is_multiple_of(n) {
            return Err(SilozError::BadConfig(format!(
                "presumed subarray rows {presumed_rows} not a multiple of the \
                 {n}-row-group mapping block; pages would straddle groups"
            )));
        }
        if !g.rows_per_bank.is_multiple_of(presumed_rows) {
            return Err(SilozError::BadConfig(format!(
                "rows per bank {} not divisible by presumed subarray rows {presumed_rows}",
                g.rows_per_bank
            )));
        }
        let groups_per_socket = g.rows_per_bank / presumed_rows;
        let mut groups = Vec::with_capacity((g.sockets as u32 * groups_per_socket) as usize);
        for socket in 0..g.sockets {
            for s in 0..groups_per_socket {
                let rows = s * presumed_rows..(s + 1) * presumed_rows;
                let mut frames: Vec<Range<u64>> = Vec::new();
                for row in rows.clone() {
                    let phys = decoder.phys_range_of_row_group(socket, row)?;
                    debug_assert!(is_frame_aligned(phys.start));
                    let fr = frame_of_hpa(phys.start)..frame_of_hpa(phys.end);
                    match frames.last_mut() {
                        Some(last) if last.end == fr.start => last.end = fr.end,
                        _ => frames.push(fr),
                    }
                }
                frames.sort_by_key(|r| r.start);
                // Merge again after sorting (rows are not phys-ascending
                // across A/B blocks).
                let mut merged: Vec<Range<u64>> = Vec::new();
                for fr in frames {
                    match merged.last_mut() {
                        Some(last) if last.end == fr.start => last.end = fr.end,
                        _ => merged.push(fr),
                    }
                }
                groups.push(GroupInfo {
                    id: GroupId(socket as u32 * groups_per_socket + s),
                    socket,
                    rows,
                    frames: merged,
                });
            }
        }
        Ok(Self {
            groups,
            groups_per_socket,
            presumed_rows,
            decoder: decoder.clone(),
        })
    }

    /// Reassembles a map from cached parts (§5.3's cross-boot cache path),
    /// re-validating the invariants the cache cannot be trusted for: dense
    /// ascending ids, exact row partitioning per socket, and exact frame
    /// coverage of the machine.
    pub fn from_parts(
        decoder: SystemAddressDecoder,
        presumed_rows: u32,
        groups: Vec<GroupInfo>,
    ) -> Result<Self, SilozError> {
        let g = decoder.geometry();
        if presumed_rows == 0 || !g.rows_per_bank.is_multiple_of(presumed_rows) {
            return Err(SilozError::BadConfig(
                "cached presumed size inconsistent".into(),
            ));
        }
        let groups_per_socket = g.rows_per_bank / presumed_rows;
        let expected = (g.sockets as u32 * groups_per_socket) as usize;
        if groups.len() != expected {
            return Err(SilozError::BadConfig(format!(
                "cached map has {} groups, expected {expected}",
                groups.len()
            )));
        }
        let mut total_bytes = 0u64;
        for (i, info) in groups.iter().enumerate() {
            if info.id.0 as usize != i {
                return Err(SilozError::BadConfig("cached group ids not dense".into()));
            }
            let expected_rows = (info.id.0 % groups_per_socket) * presumed_rows;
            if info.rows.start != expected_rows
                || info.rows.end != expected_rows + presumed_rows
                || info.socket as u32 != info.id.0 / groups_per_socket
            {
                return Err(SilozError::BadConfig(format!(
                    "cached group {} extents inconsistent",
                    info.id.0
                )));
            }
            total_bytes += info.bytes();
        }
        if total_bytes != decoder.capacity() {
            return Err(SilozError::BadConfig(
                "cached frames do not cover the machine exactly".into(),
            ));
        }
        Ok(Self {
            groups,
            groups_per_socket,
            presumed_rows,
            decoder,
        })
    }

    /// All groups, ascending by id.
    #[must_use]
    pub fn groups(&self) -> &[GroupInfo] {
        &self.groups
    }

    /// Looks up one group.
    #[must_use]
    pub fn group(&self, id: GroupId) -> Option<&GroupInfo> {
        self.groups.get(id.0 as usize)
    }

    /// Groups per socket.
    #[must_use]
    pub fn groups_per_socket(&self) -> u32 {
        self.groups_per_socket
    }

    /// Presumed rows per subarray.
    #[must_use]
    pub fn presumed_rows(&self) -> u32 {
        self.presumed_rows
    }

    /// Groups on one socket, ascending.
    pub fn groups_on_socket(&self, socket: u16) -> impl Iterator<Item = &GroupInfo> {
        self.groups.iter().filter(move |g| g.socket == socket)
    }

    /// The group a physical address belongs to.
    pub fn group_of_phys(&self, phys: u64) -> Result<GroupId, SilozError> {
        let (socket, row) = self.decoder.row_group_of(phys)?;
        Ok(GroupId(
            socket as u32 * self.groups_per_socket + row / self.presumed_rows,
        ))
    }

    /// The group a page frame belongs to.
    pub fn group_of_frame(&self, frame: u64) -> Result<GroupId, SilozError> {
        self.group_of_phys(hpa_of_frame(frame))
    }

    /// The 3 GiB *set* of consecutive groups a group belongs to (§4.2):
    /// 1 GiB pages are only isolated within whole sets.
    #[must_use]
    pub fn gig_set_of(&self, id: GroupId) -> u32 {
        let set_bytes: u64 = 3 << 30;
        let group_bytes = self.presumed_rows as u64 * self.decoder.geometry().row_group_bytes();
        let groups_per_set = (set_bytes / group_bytes).max(1) as u32;
        id.0 / groups_per_set
    }

    /// The decoder used for the computation.
    #[must_use]
    pub fn decoder(&self) -> &SystemAddressDecoder {
        &self.decoder
    }

    /// Builds a fleet-facing occupancy report by probing each group.
    ///
    /// `probe` receives every group in id order and returns `None` for
    /// groups outside the caller's scope (host-reserved, EPT guard) or
    /// `Some((owner, free_frames))` for guest-visible groups, where `owner`
    /// is the claiming control group (if any) and `free_frames` the group's
    /// node-level free count. The map contributes each group's total frame
    /// capacity; the report aggregates claim/fragmentation statistics.
    pub fn occupancy<F>(&self, mut probe: F) -> OccupancyReport
    where
        F: FnMut(&GroupInfo) -> Option<(Option<String>, u64)>,
    {
        let mut out = Vec::new();
        for info in &self.groups {
            if let Some((owner, free_frames)) = probe(info) {
                out.push(GroupOccupancy {
                    group: info.id,
                    socket: info.socket,
                    owner,
                    free_frames,
                    total_frames: info.bytes() / FRAME_BYTES,
                });
            }
        }
        OccupancyReport { groups: out }
    }
}

/// Occupancy of one guest-visible subarray group (one logical NUMA node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupOccupancy {
    /// The group.
    pub group: GroupId,
    /// Socket the group lives on.
    pub socket: u16,
    /// Name of the control group holding the node's exclusive claim, if any.
    pub owner: Option<String>,
    /// Free frames on the group's node right now.
    pub free_frames: u64,
    /// Total frames the group spans (offlined pages included).
    pub total_frames: u64,
}

impl GroupOccupancy {
    /// Whether a VM currently holds this group.
    #[must_use]
    pub fn is_claimed(&self) -> bool {
        self.owner.is_some()
    }

    /// Whether the group is unclaimed with its full capacity free (no
    /// offlined pages, no leaked allocations).
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        self.owner.is_none() && self.free_frames == self.total_frames
    }
}

/// Fleet-wide occupancy and fragmentation statistics over the guest group
/// pool — the introspection admission-control policies steer by (§8's group
/// exhaustion discussion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyReport {
    /// Per-group occupancy in group-id order.
    pub groups: Vec<GroupOccupancy>,
}

impl OccupancyReport {
    /// Number of groups covered by the report.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.groups.len() as u64
    }

    /// Groups currently claimed by a VM.
    #[must_use]
    pub fn claimed(&self) -> u64 {
        self.groups.iter().filter(|g| g.is_claimed()).count() as u64
    }

    /// Unclaimed groups whose full capacity is free.
    #[must_use]
    pub fn pristine(&self) -> u64 {
        self.groups.iter().filter(|g| g.is_pristine()).count() as u64
    }

    /// Unclaimed groups with *less* than their full capacity free
    /// (degraded by offlining or leaked pages) — the leftovers best-fit
    /// placement tries to burn first.
    #[must_use]
    pub fn partial(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| !g.is_claimed() && g.free_frames < g.total_frames)
            .count() as u64
    }

    /// Total free bytes across unclaimed groups (claimable capacity).
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.unclaimed_free_frames() * FRAME_BYTES
    }

    /// Free frames per socket across unclaimed groups, socket-ascending.
    #[must_use]
    pub fn socket_free_frames(&self) -> Vec<(u16, u64)> {
        let mut out: Vec<(u16, u64)> = Vec::new();
        for g in &self.groups {
            if g.is_claimed() {
                continue;
            }
            match out.iter_mut().find(|(s, _)| *s == g.socket) {
                Some((_, free)) => *free += g.free_frames,
                None => out.push((g.socket, g.free_frames)),
            }
        }
        out.sort_unstable_by_key(|&(s, _)| s);
        out
    }

    /// Admission-relevant external fragmentation, in whole percent.
    ///
    /// VMs are placed on a single socket when possible, so the claimable
    /// capacity that matters for a large request is the *best single
    /// socket's*, not the machine total. This returns
    /// `100 * (1 - best_socket_free / total_free)`, i.e. the share of free
    /// capacity stranded outside the best socket — `0` when everything
    /// claimable sits on one socket (or nothing is free at all).
    #[must_use]
    pub fn fragmentation_pct(&self) -> u64 {
        let total = self.unclaimed_free_frames();
        if total == 0 {
            return 0;
        }
        let best = self
            .socket_free_frames()
            .into_iter()
            .map(|(_, free)| free)
            .max()
            .unwrap_or(0);
        (total - best) * 100 / total
    }

    fn unclaimed_free_frames(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| !g.is_claimed())
            .map(|g| g.free_frames)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::{mini_decoder, skylake_decoder};

    #[test]
    fn evaluation_groups_are_contiguous_1_5_gib() {
        let map = SubarrayGroupMap::compute(&skylake_decoder(), 1024).unwrap();
        assert_eq!(map.groups().len(), 256, "128 groups x 2 sockets");
        for g in map.groups() {
            assert_eq!(g.bytes(), 3 << 29, "1.5 GiB per group");
            assert_eq!(
                g.frames.len(),
                1,
                "the Skylake mapping keeps each group physically contiguous \
                 (exploited for EPT minimization, §5.4)"
            );
        }
        // Group 0 on socket 0 starts at phys 0.
        assert_eq!(map.groups()[0].frames[0].start, 0);
    }

    #[test]
    fn group_of_phys_is_consistent_with_extents() {
        let map = SubarrayGroupMap::compute(&skylake_decoder(), 1024).unwrap();
        for g in map.groups().iter().step_by(37) {
            for r in &g.frames {
                for frame in [r.start, (r.start + r.end) / 2, r.end - 1] {
                    assert_eq!(map.group_of_frame(frame).unwrap(), g.id);
                    assert!(g.contains_frame(frame));
                }
            }
        }
    }

    #[test]
    fn sensitivity_sizes_scale_group_counts() {
        let dec = skylake_decoder();
        let m512 = SubarrayGroupMap::compute(&dec, 512).unwrap();
        let m2048 = SubarrayGroupMap::compute(&dec, 2048).unwrap();
        assert_eq!(m512.groups().len(), 512);
        assert_eq!(m2048.groups().len(), 128);
        assert_eq!(m512.groups()[0].bytes(), 3 << 28);
        assert_eq!(m2048.groups()[0].bytes(), 3 << 30);
    }

    #[test]
    fn misaligned_presumed_size_rejected() {
        let dec = skylake_decoder();
        // Not a multiple of the 16-row-group block.
        assert!(matches!(
            SubarrayGroupMap::compute(&dec, 1000),
            Err(SilozError::BadConfig(_))
        ));
        assert!(SubarrayGroupMap::compute(&dec, 0).is_err());
        assert!(SubarrayGroupMap::compute(&dec, 1 << 30).is_err());
    }

    #[test]
    fn rows_partition_exactly() {
        let map = SubarrayGroupMap::compute(&mini_decoder(), 256).unwrap();
        let g = map.decoder().geometry();
        let mut covered = vec![false; g.rows_per_bank as usize];
        for info in map.groups_on_socket(0) {
            for r in info.rows.clone() {
                assert!(!covered[r as usize], "row {r} in two groups");
                covered[r as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every row is in some group");
    }

    #[test]
    fn frames_partition_exactly() {
        let map = SubarrayGroupMap::compute(&mini_decoder(), 256).unwrap();
        let total: u64 = map.groups().iter().map(GroupInfo::bytes).sum();
        assert_eq!(total, map.decoder().capacity());
    }

    #[test]
    fn gig_sets_group_consecutive_groups() {
        let map = SubarrayGroupMap::compute(&skylake_decoder(), 1024).unwrap();
        // 1.5 GiB groups: 2 per 3 GiB set.
        assert_eq!(map.gig_set_of(GroupId(0)), 0);
        assert_eq!(map.gig_set_of(GroupId(1)), 0);
        assert_eq!(map.gig_set_of(GroupId(2)), 1);
        let m2048 = SubarrayGroupMap::compute(&skylake_decoder(), 2048).unwrap();
        // 3 GiB groups: one per set.
        assert_eq!(m2048.gig_set_of(GroupId(0)), 0);
        assert_eq!(m2048.gig_set_of(GroupId(1)), 1);
    }

    #[test]
    fn occupancy_report_aggregates_claims_and_fragmentation() {
        let map = SubarrayGroupMap::compute(&skylake_decoder(), 1024).unwrap();
        // Pretend: group 0 claimed, group 1 degraded, group 2 pristine on
        // socket 0; one pristine group on socket 1; everything else skipped.
        let report = map.occupancy(|info| match info.id.0 {
            0 => Some((Some("vm0".to_string()), 1000)),
            1 => Some((None, 100)),
            2 => Some((None, info.bytes() / 4096)),
            n if info.socket == 1 && n == map.groups_per_socket() => {
                Some((None, info.bytes() / 4096))
            }
            _ => None,
        });
        assert_eq!(report.total(), 4);
        assert_eq!(report.claimed(), 1);
        assert_eq!(report.pristine(), 2);
        assert_eq!(report.partial(), 1);
        let per_socket = report.socket_free_frames();
        assert_eq!(per_socket.len(), 2);
        assert!(per_socket[0].1 > per_socket[1].1);
        // Socket 1's pristine group strands a minority of free capacity.
        let pct = report.fragmentation_pct();
        assert!(pct > 0 && pct < 50, "pct = {pct}");
        // Claimed-only pool: no free capacity → 0% by convention.
        let empty = map.occupancy(|info| (info.id.0 == 0).then(|| (Some("vm0".to_string()), 0)));
        assert_eq!(empty.fragmentation_pct(), 0);
        assert_eq!(empty.free_bytes(), 0);
    }

    #[test]
    fn every_2m_page_is_within_one_group() {
        // The core §4.2 guarantee, checked end-to-end against the map.
        let map = SubarrayGroupMap::compute(&skylake_decoder(), 1024).unwrap();
        let two_m = 2u64 << 20;
        for page in (0..(6u64 << 30) / two_m).step_by(5) {
            let start = page * two_m;
            let a = map.group_of_phys(start).unwrap();
            let b = map.group_of_phys(start + two_m - 1).unwrap();
            assert_eq!(a, b, "2 MiB page at {start:#x} straddles groups");
        }
    }
}
