//! Guest OS page tables: GVA → GPA (§2.1).
//!
//! The paper's address taxonomy has three layers: guest virtual addresses
//! map to guest physical addresses through the *guest OS's* page tables,
//! and GPAs map to host physical addresses through the hypervisor's EPTs.
//! This module implements the guest half — x86-64-style 4-level tables that
//! live **in guest RAM** (so their pages are themselves unmediated guest
//! memory inside the VM's subarray groups) and are walked through the
//! hypervisor's `guest_read`, i.e. through the EPT and the simulated DRAM.
//!
//! Together with [`crate::hypervisor::Hypervisor::translate`], this gives
//! the full chain the paper describes: `GVA --guest PT--> GPA --EPT--> HPA`.

// The guest page-table words *are* masked GPAs by definition (this module
// is the guest-side analogue of `ept::entry`'s packing boundary), so the
// address-domain gate's raw-arith rule is waived file-wide.
// lint:allow-file(addr-raw-arith)

use crate::hypervisor::Hypervisor;
use crate::vm::VmHandle;
use crate::SilozError;
use ept::PageSize;

const PRESENT: u64 = 1;
const WRITABLE: u64 = 1 << 1;
const HUGE: u64 = 1 << 7;
const ADDR_MASK: u64 = ((1u64 << 40) - 1) << 12;

/// A guest's page-table hierarchy, with a bump allocator over a reserved
/// guest-physical region for table pages.
#[derive(Debug)]
pub struct GuestPageTables {
    root_gpa: u64,
    next_free: u64,
    region_end: u64,
}

impl GuestPageTables {
    /// Creates empty tables, reserving `[region_gpa, region_gpa + len)` of
    /// guest memory for table pages (the root is the first page).
    pub fn new(
        hv: &mut Hypervisor,
        vm: VmHandle,
        region_gpa: u64,
        region_len: u64,
    ) -> Result<Self, SilozError> {
        if !region_gpa.is_multiple_of(4096) || region_len < 4096 {
            return Err(SilozError::BadConfig("bad guest table region".into()));
        }
        let mut this = Self {
            root_gpa: region_gpa,
            next_free: region_gpa + 4096,
            region_end: region_gpa + region_len,
        };
        this.zero_table(hv, vm, region_gpa)?;
        Ok(this)
    }

    /// GPA of the root table (guest CR3).
    #[must_use]
    pub fn root_gpa(&self) -> u64 {
        self.root_gpa
    }

    /// Guest-physical pages currently used for tables.
    #[must_use]
    pub fn table_pages(&self) -> Vec<u64> {
        (self.root_gpa..self.next_free).step_by(4096).collect()
    }

    fn zero_table(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        gpa: u64,
    ) -> Result<(), SilozError> {
        hv.guest_write(vm, gpa, &[0u8; 4096])
    }

    fn alloc_table(&mut self, hv: &mut Hypervisor, vm: VmHandle) -> Result<u64, SilozError> {
        if self.next_free >= self.region_end {
            return Err(SilozError::InsufficientCapacity {
                requested: 4096,
                available: 0,
            });
        }
        let gpa = self.next_free;
        self.next_free += 4096;
        self.zero_table(hv, vm, gpa)?;
        Ok(gpa)
    }

    fn read_entry(
        hv: &mut Hypervisor,
        vm: VmHandle,
        table: u64,
        index: u64,
    ) -> Result<u64, SilozError> {
        let (b, _) = hv.guest_read(vm, table + index * 8, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn write_entry(
        hv: &mut Hypervisor,
        vm: VmHandle,
        table: u64,
        index: u64,
        value: u64,
    ) -> Result<(), SilozError> {
        hv.guest_write(vm, table + index * 8, &value.to_le_bytes())
    }

    fn index(gva: u64, level: u32) -> u64 {
        (gva >> (12 + (level - 1) * 9)) & 511
    }

    /// Maps `gva -> gpa` at `size` granularity with the given writability.
    pub fn map(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        gva: u64,
        gpa: u64,
        size: PageSize,
        writable: bool,
    ) -> Result<(), SilozError> {
        if !gva.is_multiple_of(size.bytes()) || !gpa.is_multiple_of(size.bytes()) {
            return Err(SilozError::BadConfig("misaligned guest mapping".into()));
        }
        let leaf_level = size.leaf_level();
        let mut table = self.root_gpa;
        let mut level = 4u32;
        while level > leaf_level {
            let idx = Self::index(gva, level);
            let entry = Self::read_entry(hv, vm, table, idx)?;
            if entry & PRESENT == 0 {
                let new_table = self.alloc_table(hv, vm)?;
                Self::write_entry(
                    hv,
                    vm,
                    table,
                    idx,
                    (new_table & ADDR_MASK) | PRESENT | WRITABLE,
                )?;
                table = new_table;
            } else {
                table = entry & ADDR_MASK;
            }
            level -= 1;
        }
        let mut leaf = (gpa & ADDR_MASK) | PRESENT;
        if writable {
            leaf |= WRITABLE;
        }
        if leaf_level > 1 {
            leaf |= HUGE;
        }
        Self::write_entry(hv, vm, table, Self::index(gva, leaf_level), leaf)?;
        Ok(())
    }

    /// Walks the tables: GVA → GPA.
    pub fn translate(
        &self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        gva: u64,
    ) -> Result<(u64, bool), SilozError> {
        let mut table = self.root_gpa;
        let mut level = 4u32;
        loop {
            let entry = Self::read_entry(hv, vm, table, Self::index(gva, level))?;
            if entry & PRESENT == 0 {
                return Err(SilozError::Ept(ept::EptError::NotMapped { gpa: gva }));
            }
            let is_leaf = level == 1 || entry & HUGE != 0;
            if is_leaf {
                let size = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    _ => PageSize::Size1G,
                };
                let offset = gva & (size.bytes() - 1);
                return Ok(((entry & ADDR_MASK) + offset, entry & WRITABLE != 0));
            }
            table = entry & ADDR_MASK;
            level -= 1;
        }
    }

    /// The full §2.1 chain: GVA → GPA (guest tables) → HPA (EPT).
    pub fn resolve(&self, hv: &mut Hypervisor, vm: VmHandle, gva: u64) -> Result<u64, SilozError> {
        let (gpa, _) = self.translate(hv, vm, gva)?;
        Ok(hv.translate(vm, gpa)?.hpa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilozConfig;
    use crate::hypervisor::HypervisorKind;
    use crate::vm::VmSpec;

    fn setup() -> (Hypervisor, VmHandle, GuestPageTables) {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let vm = hv.create_vm(VmSpec::new("guest", 1, 96 << 20)).unwrap();
        let pt = GuestPageTables::new(&mut hv, vm, 0x100_000, 64 << 10).unwrap();
        (hv, vm, pt)
    }

    #[test]
    fn map_and_translate_4k_and_2m() {
        let (mut hv, vm, mut pt) = setup();
        pt.map(
            &mut hv,
            vm,
            0x7fff_0000_1000,
            0x50_0000,
            PageSize::Size4K,
            true,
        )
        .unwrap();
        pt.map(&mut hv, vm, 0x20_0000, 0x40_0000, PageSize::Size2M, false)
            .unwrap();
        let (gpa, w) = pt.translate(&mut hv, vm, 0x7fff_0000_1abc).unwrap();
        assert_eq!(gpa, 0x50_0abc);
        assert!(w);
        let (gpa, w) = pt.translate(&mut hv, vm, 0x20_0000 + 777).unwrap();
        assert_eq!(gpa, 0x40_0000 + 777);
        assert!(!w);
        assert!(pt.translate(&mut hv, vm, 0x9999_0000).is_err());
    }

    #[test]
    fn full_three_address_chain_resolves() {
        // §2.1: GVA -> GPA -> HPA, every table access through simulated DRAM.
        let (mut hv, vm, mut pt) = setup();
        pt.map(&mut hv, vm, 0x1234_5000, 0x60_0000, PageSize::Size4K, true)
            .unwrap();
        let hpa = pt.resolve(&mut hv, vm, 0x1234_5678).unwrap();
        let direct = hv.translate(vm, 0x60_0678).unwrap().hpa;
        assert_eq!(hpa, direct);
        // And the data path agrees: write via GPA, read back via GPA (the
        // GVA chain resolved to the same HPA, checked above).
        hv.guest_write(vm, 0x60_0678, b"three-level").unwrap();
        let (data, intact) = hv.guest_read(vm, 0x60_0678, 11).unwrap();
        assert!(intact);
        assert_eq!(&data, b"three-level");
    }

    #[test]
    fn guest_tables_live_in_the_vms_subarray_groups() {
        // Guest page tables are guest RAM: unmediated, inside the VM's own
        // groups — intra-VM hammering of its own tables remains the VM's
        // problem (§9), not a cross-domain one.
        let (mut hv, vm, mut pt) = setup();
        for i in 0..32u64 {
            pt.map(
                &mut hv,
                vm,
                0x4000_0000 + (i << 30),
                0x10_0000 * i,
                PageSize::Size4K,
                true,
            )
            .unwrap_or(()); // Some may exhaust the table region; fine.
        }
        let groups = hv.vm_groups(vm).unwrap();
        for gpa in pt.table_pages() {
            let t = hv.translate(vm, gpa).unwrap();
            let g = hv.groups().group_of_phys(t.hpa).unwrap();
            assert!(groups.contains(&g));
        }
    }

    #[test]
    fn table_region_exhaustion_is_clean() {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let vm = hv.create_vm(VmSpec::new("g", 1, 64 << 20)).unwrap();
        // Room for the root and exactly one extra table.
        let mut pt = GuestPageTables::new(&mut hv, vm, 0x100_000, 8 << 10).unwrap();
        // First 4K map needs 3 new tables -> must fail cleanly.
        let err = pt
            .map(&mut hv, vm, 0x1000, 0x50_0000, PageSize::Size4K, true)
            .unwrap_err();
        assert!(matches!(err, SilozError::InsufficientCapacity { .. }));
        // A 1 GiB map needs only 2 levels below the root... still too many.
        // But a fresh region with more room succeeds.
        let mut pt2 = GuestPageTables::new(&mut hv, vm, 0x200_000, 64 << 10).unwrap();
        pt2.map(&mut hv, vm, 0, 0, PageSize::Size1G, true).unwrap();
        assert_eq!(pt2.translate(&mut hv, vm, 0x123).unwrap().0, 0x123);
    }

    #[test]
    fn misaligned_guest_maps_rejected() {
        let (mut hv, vm, mut pt) = setup();
        assert!(pt
            .map(&mut hv, vm, 0x1001, 0x2000, PageSize::Size4K, true)
            .is_err());
        assert!(pt
            .map(&mut hv, vm, 0x20_0000, 0x1000, PageSize::Size2M, true)
            .is_err());
    }
}
