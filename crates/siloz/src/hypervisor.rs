//! The Siloz hypervisor and its Linux/KVM-style baseline (§5, §7).
//!
//! Both hypervisors share the same substrate (decoder, DRAM device model,
//! NUMA machinery) and differ exactly where the paper says they do:
//!
//! - **Baseline**: one conventional NUMA node per socket; VM memory is
//!   allocated wherever the buddy allocator finds room, so different VMs'
//!   rows freely co-locate within subarrays; EPT pages are ordinary host
//!   allocations.
//! - **Siloz**: one logical node per subarray group; each VM gets exclusive
//!   guest-reserved nodes via a control group; unmediated pages are placed
//!   only there (the `UNMEDIATED` mmap flag, §5.3); mediated and host pages
//!   stay in host-reserved groups; EPT pages are placed by the GFP_EPT path
//!   into the guard-protected EPT row group (§5.4).
//!
//! EPT table pages live in the *simulated DRAM*: translations walk actual
//! simulated rows, so Rowhammer flips in EPT pages corrupt translations
//! end-to-end, exactly the §5.4 threat.

use crate::config::{EptProtection, SilozConfig};
use crate::ept_guard::EptFrameAlloc;
use crate::group::{GroupId, SubarrayGroupMap};
use crate::provision::ProvisionedTopology;
use crate::vm::{BackingBlock, MemoryRegionKind, VmHandle, VmRegion, VmSpec};
use crate::SilozError;
use dram::flip::BitFlip;
use dram::{DramSystem, DramSystemBuilder};
use dram_addr::{RepairMap, SystemAddressDecoder};
use ept::{Ept, EptAllocator, EptError, EptPerms, IntegrityMode, PageSize, PhysMem, Translation};
use numa::{
    frame_of_hpa, hpa_of_frame, CgroupRegistry, MemPolicy, NodeId, NodeInfo, PlacementStrategy,
    PolicyAlloc, Topology, FRAME_BYTES,
};
use std::collections::HashMap;

/// Which hypervisor variant is booted (§7's comparison axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HypervisorKind {
    /// Unmodified Linux/KVM-style allocation (no subarray awareness).
    Baseline,
    /// Siloz: subarray groups as logical NUMA nodes.
    Siloz,
}

/// Lifecycle event totals, exported via [`Hypervisor::export_telemetry`].
///
/// EPT counters of destroyed VMs are folded into the `*_retired` fields so
/// the exported `ept` child reflects all work ever done, not just live VMs.
#[derive(Debug, Default, Clone, Copy)]
struct HvEvents {
    vms_created: u64,
    create_denials: u64,
    vms_destroyed: u64,
    expansions: u64,
    migrations: u64,
    ept_walks_retired: u64,
    ept_denials_retired: u64,
    ept_table_pages_retired: u64,
    ept_leaves_retired: u64,
    /// Capacity rejections per [`PlacementStrategy`] (indexed by
    /// [`PlacementStrategy::index`]) — the admission-control accounting the
    /// fleet simulator compares policies by.
    policy_rejections: [u64; 3],
}

/// A created VM's state.
struct Vm {
    spec: VmSpec,
    socket: u16,
    nodes: Vec<NodeId>,
    regions: Vec<VmRegion>,
    ept: Ept,
    ept_from_guard_pool: bool,
}

/// [`PhysMem`] adapter storing EPT tables in the simulated DRAM.
struct DramPhysMem<'a> {
    dram: &'a mut DramSystem,
    decoder: &'a SystemAddressDecoder,
}

impl PhysMem for DramPhysMem<'_> {
    fn read_u64(&mut self, phys: u64) -> u64 {
        let media = self.decoder.decode(phys).expect("EPT page in DRAM");
        let bank = media.global_bank(self.decoder.geometry());
        let (bytes, _integrity) = self.dram.read_row(bank, media.row, media.col, 8);
        u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }

    fn write_u64(&mut self, phys: u64, value: u64) {
        let media = self.decoder.decode(phys).expect("EPT page in DRAM");
        let bank = media.global_bank(self.decoder.geometry());
        self.dram
            .write_row(bank, media.row, media.col, &value.to_le_bytes());
    }
}

/// [`EptAllocator`] over a host node's ordinary 4 KiB pages (the baseline's
/// EPT path and Siloz's fallback when guard rows are disabled).
struct NodeEptAlloc<'a> {
    topo: &'a Topology,
    node: NodeId,
    got: Vec<u64>,
}

impl EptAllocator for NodeEptAlloc<'_> {
    fn alloc_table_page(&mut self) -> Result<u64, EptError> {
        match self.topo.alloc(self.node, 0) {
            Ok(frame) => {
                self.got.push(frame);
                Ok(hpa_of_frame(frame))
            }
            Err(_) => Err(EptError::OutOfMemory),
        }
    }
}

/// The hypervisor.
///
/// # Examples
///
/// ```
/// use siloz::{Hypervisor, HypervisorKind, SilozConfig, VmSpec};
///
/// let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
/// let vm = hv.create_vm(VmSpec::new("tenant0", 2, 192 << 20)).unwrap();
/// // The VM's memory lives in exclusive subarray groups:
/// assert!(!hv.vm_groups(vm).unwrap().is_empty());
/// hv.destroy_vm(vm).unwrap();
/// ```
pub struct Hypervisor {
    kind: HypervisorKind,
    config: SilozConfig,
    decoder: SystemAddressDecoder,
    /// Decode memoization for the line-by-line `copy_phys` loop: a clone of
    /// `decoder` behind a row-group-granular cache, so migrating a block
    /// decodes each row-group stripe once instead of every 64 B. Decode is
    /// pure address-map config, so the two decoders always agree.
    copy_tlb: dram_addr::DecodeTlb,
    /// Reused line buffer for `copy_phys` (allocation-free copy loop).
    copy_scratch: Vec<u8>,
    dram: DramSystem,
    topo: Topology,
    groups: SubarrayGroupMap,
    host_nodes: Vec<NodeId>,
    guest_nodes: Vec<NodeId>,
    node_of_group: HashMap<GroupId, NodeId>,
    groups_of_node: HashMap<NodeId, Vec<GroupId>>,
    ept_plan: Option<crate::ept_guard::EptGuardPlan>,
    ept_allocs: HashMap<u16, EptFrameAlloc>,
    cgroups: CgroupRegistry,
    vms: HashMap<u32, Vm>,
    next_vm: u32,
    ept_salt: u64,
    events: HvEvents,
    strategy: PlacementStrategy,
}

impl Hypervisor {
    /// Boots a hypervisor with a default (defect-free) DRAM system whose
    /// internal transforms match the configuration.
    pub fn boot(config: SilozConfig, kind: HypervisorKind) -> Result<Self, SilozError> {
        let dram = DramSystemBuilder::new(config.geometry)
            .internal_map(config.internal_map)
            .build();
        Self::boot_with(config, kind, dram, RepairMap::new())
    }

    /// Boots with an explicit DRAM system (custom DIMM profiles, TRR, ECC)
    /// and repair table.
    ///
    /// The repair table must match the one installed in `dram` for the §6
    /// offlining to be meaningful.
    pub fn boot_with(
        config: SilozConfig,
        kind: HypervisorKind,
        dram: DramSystem,
        repairs: RepairMap,
    ) -> Result<Self, SilozError> {
        config.geometry.validate().map_err(SilozError::BadConfig)?;
        let decoder = SystemAddressDecoder::new(config.geometry, config.decoder)?;
        match kind {
            HypervisorKind::Siloz => {
                let prov = ProvisionedTopology::provision(&config, &decoder, &repairs)?;
                let mut ept_allocs = HashMap::new();
                if let Some(plan) = &prov.ept_plan {
                    for sp in &plan.sockets {
                        ept_allocs.insert(sp.socket, EptFrameAlloc::new(sp));
                    }
                }
                Ok(Self {
                    kind,
                    config,
                    copy_tlb: dram_addr::DecodeTlb::new(decoder.clone()),
                    copy_scratch: Vec::new(),
                    decoder,
                    dram,
                    topo: prov.topo,
                    groups: prov.groups,
                    host_nodes: prov.host_nodes,
                    guest_nodes: prov.guest_nodes,
                    node_of_group: prov.node_of_group,
                    groups_of_node: prov.groups_of_node,
                    ept_plan: prov.ept_plan,
                    ept_allocs,
                    cgroups: CgroupRegistry::new(),
                    vms: HashMap::new(),
                    next_vm: 0,
                    ept_salt: 0x5110_2bad_c0de,
                    events: HvEvents::default(),
                    strategy: PlacementStrategy::default(),
                })
            }
            HypervisorKind::Baseline => {
                // One conventional node per socket; groups are still
                // computed for *measurement* (the baseline kernel has no
                // idea they exist).
                let groups = SubarrayGroupMap::compute(&decoder, config.presumed_subarray_rows)?;
                let mut topo = Topology::new();
                let mut host_nodes = Vec::new();
                let g = decoder.geometry();
                for socket in 0..g.sockets {
                    let base = frame_of_hpa(decoder.socket_base(socket));
                    let frames = base..base + decoder.socket_bytes() / FRAME_BYTES;
                    let cpus: Vec<u32> = (0..config.cores_per_socket)
                        .map(|c| socket as u32 * config.cores_per_socket + c)
                        .collect();
                    let id = topo.add_node(
                        NodeInfo {
                            id: NodeId(0),
                            socket,
                            is_logical: false,
                            cpus,
                            frame_ranges: vec![frames],
                        },
                        &[],
                    );
                    host_nodes.push(id);
                }
                Ok(Self {
                    kind,
                    config,
                    copy_tlb: dram_addr::DecodeTlb::new(decoder.clone()),
                    copy_scratch: Vec::new(),
                    decoder,
                    dram,
                    topo,
                    groups,
                    host_nodes,
                    guest_nodes: Vec::new(),
                    node_of_group: HashMap::new(),
                    groups_of_node: HashMap::new(),
                    ept_plan: None,
                    ept_allocs: HashMap::new(),
                    cgroups: CgroupRegistry::new(),
                    vms: HashMap::new(),
                    next_vm: 0,
                    ept_salt: 0x5110_2bad_c0de,
                    events: HvEvents::default(),
                    strategy: PlacementStrategy::default(),
                })
            }
        }
    }

    /// The placement strategy admission control currently runs under.
    #[must_use]
    pub fn placement_strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Switches the placement strategy used by [`Self::create_vm`] for all
    /// subsequent admissions. Existing placements are untouched: strategies
    /// only reorder candidate nodes and sockets, never what is claimable,
    /// so the exclusivity invariant is strategy-independent.
    pub fn set_placement_strategy(&mut self, strategy: PlacementStrategy) {
        self.strategy = strategy;
    }

    /// The hypervisor variant.
    #[must_use]
    pub fn kind(&self) -> HypervisorKind {
        self.kind
    }

    /// The boot configuration.
    #[must_use]
    pub fn config(&self) -> &SilozConfig {
        &self.config
    }

    /// The address decoder.
    #[must_use]
    pub fn decoder(&self) -> &SystemAddressDecoder {
        &self.decoder
    }

    /// The subarray group map (ground truth for containment measurements).
    #[must_use]
    pub fn groups(&self) -> &SubarrayGroupMap {
        &self.groups
    }

    /// The NUMA topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Host-reserved nodes (one per socket).
    #[must_use]
    pub fn host_nodes(&self) -> &[NodeId] {
        &self.host_nodes
    }

    /// Guest-reserved nodes (Siloz only; empty on the baseline).
    #[must_use]
    pub fn guest_nodes(&self) -> &[NodeId] {
        &self.guest_nodes
    }

    /// The logical node backing a subarray group (Siloz only).
    #[must_use]
    pub fn node_of_group(&self, group: GroupId) -> Option<NodeId> {
        self.node_of_group.get(&group).copied()
    }

    /// The EPT guard plan, when guard-row protection is active.
    #[must_use]
    pub fn ept_plan(&self) -> Option<&crate::ept_guard::EptGuardPlan> {
        self.ept_plan.as_ref()
    }

    /// Mutable access to the DRAM device model (attack harnesses drive it).
    pub fn dram_mut(&mut self) -> &mut DramSystem {
        &mut self.dram
    }

    /// Shared access to the DRAM device model.
    #[must_use]
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// Live VM handles, ascending.
    #[must_use]
    pub fn vm_handles(&self) -> Vec<VmHandle> {
        let mut v: Vec<VmHandle> = self.vms.keys().map(|&k| VmHandle(k)).collect();
        v.sort_unstable();
        v
    }

    fn vm(&self, handle: VmHandle) -> Result<&Vm, SilozError> {
        self.vms
            .get(&handle.0)
            .ok_or(SilozError::NoSuchVm(handle.0))
    }

    /// Creates a VM per `spec` (§5.3's lifecycle: control group, UNMEDIATED
    /// allocations from guest-reserved nodes, EPT construction).
    pub fn create_vm(&mut self, spec: VmSpec) -> Result<VmHandle, SilozError> {
        let result = self.create_vm_inner(spec);
        match &result {
            Ok(_) => self.events.vms_created += 1,
            Err(e) => {
                self.events.create_denials += 1;
                if matches!(e, SilozError::InsufficientCapacity { .. }) {
                    self.events.policy_rejections[self.strategy.index()] += 1;
                }
            }
        }
        result
    }

    fn create_vm_inner(&mut self, spec: VmSpec) -> Result<VmHandle, SilozError> {
        if !spec.kvm_privileged {
            return Err(SilozError::NotPermitted(format!(
                "process for '{}' lacks KVM privileges (§5.3)",
                spec.name
            )));
        }
        let unmediated_bytes: u64 = spec.memory_bytes
            + spec
                .extra_regions
                .iter()
                .filter(|(k, _)| k.is_unmediated())
                .map(|(_, b)| *b)
                .sum::<u64>();

        let (socket, nodes) = self.pick_nodes(&spec, unmediated_bytes)?;
        let cpus: Vec<u32> = (0..spec.vcpus)
            .map(|c| {
                socket as u32 * self.config.cores_per_socket + c % self.config.cores_per_socket
            })
            .collect();
        match self.kind {
            // Siloz: exclusive node reservations enforce one-VM-per-group.
            HypervisorKind::Siloz => {
                self.cgroups
                    .create_exclusive(&spec.name, nodes.iter().copied(), cpus)?;
            }
            // Baseline: conventional shared cpuset over the socket node.
            HypervisorKind::Baseline => {
                self.cgroups
                    .create_shared(&spec.name, nodes.iter().copied(), cpus);
            }
        }

        let result = self.build_vm(&spec, socket, &nodes);
        match result {
            Ok(vm) => {
                let handle = VmHandle(self.next_vm);
                self.next_vm += 1;
                self.vms.insert(handle.0, vm);
                Ok(handle)
            }
            Err(e) => {
                self.cgroups.destroy(&spec.name);
                Err(e)
            }
        }
    }

    /// Selects the socket and guest nodes for a VM.
    fn pick_nodes(
        &self,
        spec: &VmSpec,
        unmediated_bytes: u64,
    ) -> Result<(u16, Vec<NodeId>), SilozError> {
        match self.kind {
            HypervisorKind::Baseline => {
                // The baseline just picks a socket; its single node serves
                // everything.
                let socket = spec.preferred_socket.unwrap_or(0);
                let node = *self
                    .host_nodes
                    .get(socket as usize)
                    .ok_or_else(|| SilozError::BadConfig(format!("no socket {socket}")))?;
                Ok((socket, vec![node]))
            }
            HypervisorKind::Siloz => {
                // Candidate sockets in the strategy's preference order; an
                // explicit preference always goes first regardless.
                let mut ranked: Vec<(u16, u32)> = (0..self.config.geometry.sockets)
                    .map(|socket| {
                        let claimed = self
                            .guest_nodes
                            .iter()
                            .filter(|&&n| {
                                self.topo.node(n).map(|i| i.socket) == Ok(socket)
                                    && self.cgroups.owner_of(n).is_some()
                            })
                            .count() as u32;
                        (socket, claimed)
                    })
                    .collect();
                self.strategy.order_sockets(&mut ranked);
                let mut sockets: Vec<u16> = Vec::with_capacity(ranked.len());
                if let Some(s) = spec.preferred_socket {
                    sockets.push(s);
                }
                sockets.extend(
                    ranked
                        .iter()
                        .map(|&(s, _)| s)
                        .filter(|&s| Some(s) != spec.preferred_socket),
                );
                // Prefer a single socket for physical NUMA locality (§5.2);
                // accumulate unclaimed nodes — in the strategy's node
                // order — until their actual free capacity (offlined pages
                // excluded) covers the request.
                for &socket in &sockets {
                    let mut candidates: Vec<(NodeId, u64)> = Vec::new();
                    for &n in &self.guest_nodes {
                        if self.topo.node(n).map(|i| i.socket) != Ok(socket)
                            || self.cgroups.owner_of(n).is_some()
                        {
                            continue;
                        }
                        candidates.push((n, self.topo.free_frames(n)?));
                    }
                    self.strategy.order_nodes(&mut candidates);
                    let mut chosen = Vec::new();
                    let mut bytes = 0u64;
                    for (n, free) in candidates {
                        chosen.push(n);
                        bytes += free * FRAME_BYTES;
                        if bytes >= unmediated_bytes {
                            return Ok((socket, chosen));
                        }
                    }
                }
                let available: u64 = self
                    .guest_nodes
                    .iter()
                    .filter(|&&n| self.cgroups.owner_of(n).is_none())
                    .map(|&n| self.topo.free_frames(n).unwrap_or(0) * FRAME_BYTES)
                    .sum();
                Err(SilozError::InsufficientCapacity {
                    requested: unmediated_bytes,
                    available,
                })
            }
        }
    }

    /// Allocates and maps all regions and the EPT for a VM.
    ///
    /// Backing memory is allocated before any EPT table page — as with
    /// boot-time hugepage reservation, guest RAM occupies the front of its
    /// pool, row-group aligned, under both hypervisors.
    fn build_vm(&mut self, spec: &VmSpec, socket: u16, nodes: &[NodeId]) -> Result<Vm, SilozError> {
        let cgroup = self
            .cgroups
            .get(&spec.name)
            .expect("cgroup created")
            .clone();
        let host_node = self.host_nodes[socket as usize];
        let integrity = match (self.kind, self.config.ept_protection) {
            (_, EptProtection::SecureEpt) => IntegrityMode::Checked,
            _ => IntegrityMode::None,
        };
        let use_guard_pool =
            self.kind == HypervisorKind::Siloz && self.ept_allocs.contains_key(&socket);

        // Phase 1: lay out GPA space and allocate all backing memory.
        let mut layout = Vec::new();
        let ram_bytes = round_up(spec.memory_bytes, spec.page_size.bytes());
        layout.push((MemoryRegionKind::Ram, ram_bytes));
        for &(kind, bytes) in &spec.extra_regions {
            layout.push((kind, round_up(bytes.max(1), FRAME_BYTES)));
        }
        let mut built_regions: Vec<VmRegion> = Vec::new();
        let mut guest_policy = PolicyAlloc::new(MemPolicy::Bind(nodes.to_vec()));
        let mut host_policy = PolicyAlloc::new(MemPolicy::Bind(vec![host_node]));
        let mut gpa_cursor = 0u64;
        for (kind, bytes) in layout {
            gpa_cursor = round_up(gpa_cursor, spec.page_size.bytes());
            let base_gpa = gpa_cursor;
            let mut backing = Vec::new();
            // Unmediated pages use the backing page size; mediated pages are
            // plain 4 KiB host pages.
            let (order, page_bytes) = if kind.is_unmediated() {
                (page_order(spec.page_size), spec.page_size.bytes())
            } else {
                (0u8, FRAME_BYTES)
            };
            let mut off = 0u64;
            while off < bytes {
                let gpa = base_gpa + off;
                let alloc_result = if kind.is_unmediated() {
                    match self.kind {
                        HypervisorKind::Siloz => {
                            // The UNMEDIATED mmap flag: allocation must come
                            // from the VM's guest-reserved nodes, checked
                            // against its control group (§5.3).
                            guest_policy.alloc(&self.topo, order, Some(&cgroup))
                        }
                        HypervisorKind::Baseline => host_policy.alloc(&self.topo, order, None),
                    }
                } else {
                    // Mediated pages always come from host-reserved memory.
                    host_policy.alloc(&self.topo, order, None)
                };
                let (node, frame) = match alloc_result {
                    Ok(x) => x,
                    Err(e) => {
                        for r in &built_regions {
                            self.free_region(r);
                        }
                        for b in &backing {
                            let b: &BackingBlock = b;
                            let _ = self.topo.free(b.node, b.frame, b.order);
                        }
                        return Err(e.into());
                    }
                };
                backing.push(BackingBlock {
                    gpa,
                    frame,
                    order,
                    node,
                });
                off += page_bytes;
            }
            built_regions.push(VmRegion {
                kind,
                gpa: base_gpa,
                bytes,
                backing,
            });
            gpa_cursor = base_gpa + bytes;
        }

        // Phase 2: build the EPT and map every block. Emulated MMIO is never
        // mapped; that is what makes it mediated.
        let rollback = |this: &mut Self, ept: Option<&Ept>| {
            for r in &built_regions {
                this.free_region(r);
            }
            if let Some(e) = ept {
                this.free_ept_pages(e, socket);
            }
        };
        let mut ept = {
            let mut mem = DramPhysMem {
                dram: &mut self.dram,
                decoder: &self.decoder,
            };
            let created = if use_guard_pool {
                let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
                Ept::new(&mut mem, alloc, integrity, self.ept_salt)
            } else {
                let mut alloc = NodeEptAlloc {
                    topo: &self.topo,
                    node: host_node,
                    got: Vec::new(),
                };
                Ept::new(&mut mem, &mut alloc, integrity, self.ept_salt)
            };
            match created {
                Ok(e) => e,
                Err(e) => {
                    rollback(self, None);
                    return Err(e.into());
                }
            }
        };
        for region in &built_regions {
            if region.kind == MemoryRegionKind::Mmio {
                continue;
            }
            let perms = match region.kind {
                MemoryRegionKind::Rom | MemoryRegionKind::RomDevice => EptPerms::RO,
                _ => EptPerms::RWX,
            };
            let size = if region.kind.is_unmediated() {
                spec.page_size
            } else {
                PageSize::Size4K
            };
            for block in &region.backing {
                let mut mem = DramPhysMem {
                    dram: &mut self.dram,
                    decoder: &self.decoder,
                };
                let map_result = if use_guard_pool {
                    let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
                    ept.map(&mut mem, alloc, block.gpa, block.hpa(), size, perms)
                } else {
                    let mut alloc = NodeEptAlloc {
                        topo: &self.topo,
                        node: host_node,
                        got: Vec::new(),
                    };
                    ept.map(&mut mem, &mut alloc, block.gpa, block.hpa(), size, perms)
                };
                if let Err(e) = map_result {
                    rollback(self, Some(&ept));
                    return Err(e.into());
                }
            }
        }

        // 1 GiB backing must respect 3 GiB sets (4.2).
        if spec.page_size == PageSize::Size1G && self.kind == HypervisorKind::Siloz {
            for region in &built_regions {
                if !region.kind.is_unmediated() {
                    continue;
                }
                for b in &region.backing {
                    let first = self.groups.group_of_phys(b.hpa())?;
                    let last = self.groups.group_of_phys(b.hpa() + b.bytes() - 1)?;
                    debug_assert_eq!(
                        self.groups.gig_set_of(first),
                        self.groups.gig_set_of(last),
                        "1 GiB page crosses a 3 GiB set"
                    );
                }
            }
        }

        Ok(Vm {
            spec: spec.clone(),
            socket,
            nodes: nodes.to_vec(),
            regions: built_regions,
            ept,
            ept_from_guard_pool: use_guard_pool,
        })
    }

    fn free_region(&self, region: &VmRegion) {
        for b in &region.backing {
            let _ = self.topo.free(b.node, b.frame, b.order);
        }
    }

    fn free_ept_pages(&mut self, ept: &Ept, socket: u16) {
        let use_guard_pool =
            self.kind == HypervisorKind::Siloz && self.ept_allocs.contains_key(&socket);
        if use_guard_pool {
            let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
            for &hpa in ept.table_pages() {
                alloc.release(hpa);
            }
        } else {
            let host_node = self.host_nodes[socket as usize];
            for &hpa in ept.table_pages() {
                let _ = self.topo.free(host_node, frame_of_hpa(hpa), 0);
            }
        }
    }

    /// Grows a VM by `extra_bytes` of unmediated RAM: claims additional
    /// guest-reserved nodes on the VM's socket when needed, allocates
    /// backing, and maps it at the top of the existing GPA space (memory
    /// hotplug under subarray-group isolation).
    pub fn expand_vm(&mut self, handle: VmHandle, extra_bytes: u64) -> Result<(), SilozError> {
        let (socket, page_size, mut nodes, name, next_gpa) = {
            let vm = self.vm(handle)?;
            let end = vm
                .regions
                .iter()
                .map(|r| r.gpa + r.bytes)
                .max()
                .unwrap_or(0);
            (
                vm.socket,
                vm.spec.page_size,
                vm.nodes.clone(),
                vm.spec.name.clone(),
                round_up(end, vm.spec.page_size.bytes()),
            )
        };
        let extra = round_up(extra_bytes.max(1), page_size.bytes());
        if self.kind == HypervisorKind::Siloz {
            // Claim more nodes if the current ones cannot hold the growth.
            let free_now: u64 = nodes
                .iter()
                .map(|&n| self.topo.free_frames(n).unwrap_or(0) * FRAME_BYTES)
                .sum();
            let mut need = extra.saturating_sub(free_now);
            if need > 0 {
                let candidates: Vec<NodeId> = self
                    .guest_nodes
                    .iter()
                    .copied()
                    .filter(|&n| {
                        self.topo.node(n).map(|i| i.socket) == Ok(socket)
                            && self.cgroups.owner_of(n).is_none()
                    })
                    .collect();
                for n in candidates {
                    if need == 0 {
                        break;
                    }
                    nodes.push(n);
                    need = need.saturating_sub(self.topo.free_frames(n)? * FRAME_BYTES);
                }
                if need > 0 {
                    return Err(SilozError::InsufficientCapacity {
                        requested: extra,
                        available: free_now,
                    });
                }
                let cpus = self
                    .cgroups
                    .get(&name)
                    .map(|g| g.cpus_allowed.iter().copied().collect::<Vec<_>>())
                    .unwrap_or_default();
                self.cgroups
                    .create_exclusive(&name, nodes.iter().copied(), cpus)?;
            }
        }
        // Allocate and map the growth as a fresh RAM region.
        let cgroup = self.cgroups.get(&name).expect("cgroup exists").clone();
        let order = page_order(page_size);
        let host_node = self.host_nodes[socket as usize];
        let mut policy = PolicyAlloc::new(MemPolicy::Bind(match self.kind {
            HypervisorKind::Siloz => nodes.clone(),
            HypervisorKind::Baseline => vec![host_node],
        }));
        let use_guard_pool =
            self.kind == HypervisorKind::Siloz && self.ept_allocs.contains_key(&socket);
        let mut backing = Vec::new();
        let mut off = 0u64;
        while off < extra {
            let cg = if self.kind == HypervisorKind::Siloz {
                Some(&cgroup)
            } else {
                None
            };
            let (node, frame) = match policy.alloc(&self.topo, order, cg) {
                Ok(x) => x,
                Err(e) => {
                    for b in &backing {
                        let b: &BackingBlock = b;
                        let _ = self.topo.free(b.node, b.frame, b.order);
                    }
                    return Err(e.into());
                }
            };
            backing.push(BackingBlock {
                gpa: next_gpa + off,
                frame,
                order,
                node,
            });
            off += page_size.bytes();
        }
        for block in &backing {
            let mut mem = DramPhysMem {
                dram: &mut self.dram,
                decoder: &self.decoder,
            };
            let vm = self.vms.get_mut(&handle.0).expect("vm exists");
            let map_result = if use_guard_pool {
                let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
                vm.ept.map(
                    &mut mem,
                    alloc,
                    block.gpa,
                    block.hpa(),
                    page_size,
                    EptPerms::RWX,
                )
            } else {
                let mut alloc = NodeEptAlloc {
                    topo: &self.topo,
                    node: host_node,
                    got: Vec::new(),
                };
                vm.ept.map(
                    &mut mem,
                    &mut alloc,
                    block.gpa,
                    block.hpa(),
                    page_size,
                    EptPerms::RWX,
                )
            };
            map_result?;
        }
        let vm = self.vms.get_mut(&handle.0).expect("vm exists");
        vm.nodes = nodes;
        vm.regions.push(VmRegion {
            kind: MemoryRegionKind::Ram,
            gpa: next_gpa,
            bytes: extra,
            backing,
        });
        self.events.expansions += 1;
        Ok(())
    }

    /// Host shutdown (§5.3): the privileged shutdown routine kills every VM
    /// and its resources, ignoring active subarray-group constraints.
    pub fn shutdown(&mut self) -> usize {
        let handles = self.vm_handles();
        let n = handles.len();
        for h in handles {
            let _ = self.destroy_vm(h);
        }
        n
    }

    /// Shuts a VM down: backing memory returns to its logical nodes' free
    /// pools; the node reservation persists until the control group is
    /// destroyed (§5.3) — which this convenience method also does.
    pub fn destroy_vm(&mut self, handle: VmHandle) -> Result<(), SilozError> {
        let vm = self
            .vms
            .remove(&handle.0)
            .ok_or(SilozError::NoSuchVm(handle.0))?;
        for region in &vm.regions {
            self.free_region(region);
        }
        let socket = vm.socket;
        let guard = vm.ept_from_guard_pool;
        if guard {
            let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
            for &hpa in vm.ept.table_pages() {
                alloc.release(hpa);
            }
        } else {
            let host_node = self.host_nodes[socket as usize];
            for &hpa in vm.ept.table_pages() {
                let _ = self.topo.free(host_node, frame_of_hpa(hpa), 0);
            }
        }
        self.cgroups.destroy(&vm.spec.name);
        self.events.vms_destroyed += 1;
        self.events.ept_walks_retired += vm.ept.walks();
        self.events.ept_denials_retired += vm.ept.integrity_denials();
        self.events.ept_table_pages_retired += vm.ept.table_pages().len() as u64;
        self.events.ept_leaves_retired += vm.ept.mapped_leaves();
        Ok(())
    }

    /// The logical nodes provisioned to a VM.
    pub fn vm_nodes(&self, handle: VmHandle) -> Result<&[NodeId], SilozError> {
        Ok(&self.vm(handle)?.nodes)
    }

    /// The subarray groups provisioned to a VM (Siloz; empty on baseline).
    pub fn vm_groups(&self, handle: VmHandle) -> Result<Vec<GroupId>, SilozError> {
        let vm = self.vm(handle)?;
        let mut out = Vec::new();
        for n in &vm.nodes {
            if let Some(gs) = self.groups_of_node.get(n) {
                out.extend(gs.iter().copied());
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// A VM's mapped regions.
    pub fn vm_regions(&self, handle: VmHandle) -> Result<&[VmRegion], SilozError> {
        Ok(&self.vm(handle)?.regions)
    }

    /// All of a VM's unmediated backing blocks (the memory it can hammer).
    pub fn vm_unmediated_backing(&self, handle: VmHandle) -> Result<Vec<BackingBlock>, SilozError> {
        let vm = self.vm(handle)?;
        Ok(vm
            .regions
            .iter()
            .filter(|r| r.kind.is_unmediated())
            .flat_map(|r| r.backing.iter().copied())
            .collect())
    }

    /// HPAs of a VM's EPT table pages.
    pub fn vm_ept_pages(&self, handle: VmHandle) -> Result<&[u64], SilozError> {
        Ok(self.vm(handle)?.ept.table_pages())
    }

    /// Occupancy and fragmentation of the guest-reserved group pool: one
    /// entry per guest group with its claiming VM's control group (if any)
    /// and current node-level free frames. Empty on the baseline, which
    /// provisions no guest groups. This is the introspection surface
    /// admission-control policies and the fleet simulator steer by (§8).
    #[must_use]
    pub fn occupancy(&self) -> crate::group::OccupancyReport {
        self.groups.occupancy(|info| {
            let node = *self.node_of_group.get(&info.id)?;
            if !self.guest_nodes.contains(&node) {
                return None;
            }
            let owner = self.cgroups.owner_of(node).map(str::to_string);
            Some((owner, self.topo.free_frames(node).unwrap_or(0)))
        })
    }

    /// Adds this hypervisor's lifecycle totals into `reg`, with two child
    /// registries: `ept` (walks, integrity denials, table-page footprint,
    /// leaves — summed over live VMs plus everything already destroyed) and
    /// `ept_guard` (GFP_EPT pool allocations/denials/occupancy, summed over
    /// sockets). The DRAM device is exported separately by callers holding
    /// the experiment's registry, to keep device and hypervisor totals in
    /// distinct subtrees.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        reg.counter("vms_created").add(self.events.vms_created);
        reg.counter("vm_create_denials")
            .add(self.events.create_denials);
        reg.counter("vms_destroyed").add(self.events.vms_destroyed);
        reg.counter("vm_expansions").add(self.events.expansions);
        reg.counter("block_migrations").add(self.events.migrations);
        reg.gauge("vms_live").add(self.vms.len() as i64);

        let mut walks = self.events.ept_walks_retired;
        let mut denials = self.events.ept_denials_retired;
        let mut table_pages = self.events.ept_table_pages_retired;
        let mut leaves = self.events.ept_leaves_retired;
        for vm in self.vms.values() {
            walks += vm.ept.walks();
            denials += vm.ept.integrity_denials();
            table_pages += vm.ept.table_pages().len() as u64;
            leaves += vm.ept.mapped_leaves();
        }
        let ept_reg = reg.child("ept");
        ept_reg.counter("walks").add(walks);
        ept_reg.counter("integrity_denials").add(denials);
        ept_reg.counter("table_pages").add(table_pages);
        ept_reg.counter("mapped_leaves").add(leaves);

        let guard = reg.child("ept_guard");
        for alloc in self.ept_allocs.values() {
            alloc.export_telemetry(&guard);
        }

        // Admission control: capacity rejections per placement strategy
        // plus a point-in-time view of group-pool fragmentation.
        let admission = reg.child("admission");
        admission
            .counter("rejections_first_fit")
            .add(self.events.policy_rejections[0]);
        admission
            .counter("rejections_best_fit")
            .add(self.events.policy_rejections[1]);
        admission
            .counter("rejections_socket_affine")
            .add(self.events.policy_rejections[2]);
        let occ = self.occupancy();
        admission.gauge("groups_total").add(occ.total() as i64);
        admission.gauge("groups_claimed").add(occ.claimed() as i64);
        admission
            .gauge("groups_pristine")
            .add(occ.pristine() as i64);
        admission.gauge("groups_partial").add(occ.partial() as i64);
        admission
            .gauge("fragmentation_pct")
            .add(occ.fragmentation_pct() as i64);
    }

    /// Translates a guest physical address through the VM's EPT, walking the
    /// tables in simulated DRAM (bit flips in EPT rows corrupt this walk).
    pub fn translate(&mut self, handle: VmHandle, gpa: u64) -> Result<Translation, SilozError> {
        let vm = self
            .vms
            .get(&handle.0)
            .ok_or(SilozError::NoSuchVm(handle.0))?;
        let mut mem = DramPhysMem {
            dram: &mut self.dram,
            decoder: &self.decoder,
        };
        vm.ept.translate(&mut mem, gpa).map_err(Into::into)
    }

    /// Writes guest memory through the EPT.
    ///
    /// Chunks at cache-line granularity: only bytes within one 64 B line
    /// are physically contiguous in a row (§2.4's interleaving).
    pub fn guest_write(
        &mut self,
        handle: VmHandle,
        gpa: u64,
        bytes: &[u8],
    ) -> Result<(), SilozError> {
        let line = dram_addr::CACHE_LINE_BYTES;
        let mut off = 0usize;
        while off < bytes.len() {
            let t = self.translate(handle, gpa + off as u64)?;
            if !t.perms.write {
                // Guest writes to read-only mappings (ROM) fault; from the
                // device-model side they are simply discarded after the
                // permission error is surfaced.
                return Err(SilozError::NotPermitted(format!(
                    "write to read-only GPA {gpa:#x}"
                )));
            }
            let media = self.decoder.decode(t.hpa)?;
            let bank = media.global_bank(self.decoder.geometry());
            let chunk = ((line - dram_addr::line_offset(t.hpa)) as usize).min(bytes.len() - off);
            self.dram
                .write_row(bank, media.row, media.col, &bytes[off..off + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Reads guest memory through the EPT; returns the bytes and whether all
    /// chunks read back clean/corrected.
    ///
    /// Chunks at cache-line granularity, like [`Self::guest_write`].
    pub fn guest_read(
        &mut self,
        handle: VmHandle,
        gpa: u64,
        len: usize,
    ) -> Result<(Vec<u8>, bool), SilozError> {
        let line = dram_addr::CACHE_LINE_BYTES;
        let mut out = Vec::with_capacity(len);
        let mut intact = true;
        while out.len() < len {
            let off = out.len() as u64;
            let t = self.translate(handle, gpa + off)?;
            let media = self.decoder.decode(t.hpa)?;
            let bank = media.global_bank(self.decoder.geometry());
            let chunk = ((line - dram_addr::line_offset(t.hpa)) as usize).min(len - out.len());
            let (bytes, integrity) = self.dram.read_row(bank, media.row, media.col, chunk as u32);
            intact &= integrity.data_is_correct();
            out.extend(bytes);
        }
        Ok((out, intact))
    }

    /// Flips recorded so far that fall *outside* a VM's provisioned subarray
    /// groups — inter-VM escapes if that VM was the hammering domain (§7.1).
    ///
    /// On the baseline (no provisioned groups), every flip outside the VM's
    /// actually-backing rows counts as an escape.
    pub fn flips_outside_vm(&self, handle: VmHandle) -> Result<Vec<BitFlip>, SilozError> {
        self.flips_outside_vm_since(handle, 0)
    }

    /// [`Self::flips_outside_vm`] restricted to flips recorded at or after
    /// flip-log index `skip`.
    ///
    /// Long-running scenarios with several attack campaigns need this
    /// window: a previous aggressor's (contained) flips live in *its*
    /// groups, which are outside every other VM's groups, so an unwindowed
    /// scan would misattribute them as fresh escapes.
    pub fn flips_outside_vm_since(
        &self,
        handle: VmHandle,
        skip: usize,
    ) -> Result<Vec<BitFlip>, SilozError> {
        let vm = self.vm(handle)?;
        let g = self.decoder.geometry();
        let mut escaped = Vec::new();
        match self.kind {
            HypervisorKind::Siloz => {
                let groups = self.vm_groups(handle)?;
                let spans: Vec<(u16, std::ops::Range<u32>)> = groups
                    .iter()
                    .filter_map(|gid| self.groups.group(*gid))
                    .map(|info| (info.socket, info.rows.clone()))
                    .collect();
                for flip in self.dram.flip_log().all().iter().skip(skip) {
                    let socket = flip.bank.socket(g);
                    let inside = spans
                        .iter()
                        .any(|(s, rows)| *s == socket && rows.contains(&flip.media_row));
                    if !inside {
                        escaped.push(*flip);
                    }
                }
            }
            HypervisorKind::Baseline => {
                // Rows actually backing the VM.
                let mut vm_rows: std::collections::HashSet<(u16, u32)> =
                    std::collections::HashSet::new();
                for b in vm.regions.iter().flat_map(|r| r.backing.iter()) {
                    let mut p = b.hpa();
                    let end = b.hpa() + b.bytes();
                    while p < end {
                        let (socket, row) = self.decoder.row_group_of(p)?;
                        vm_rows.insert((socket, row));
                        p += g.row_group_bytes() - p % g.row_group_bytes();
                    }
                }
                for flip in self.dram.flip_log().all().iter().skip(skip) {
                    let socket = flip.bank.socket(g);
                    if !vm_rows.contains(&(socket, flip.media_row)) {
                        escaped.push(*flip);
                    }
                }
            }
        }
        Ok(escaped)
    }

    /// Periodic free-memory statistics refresh, with the §5.3 optimization:
    /// guest-reserved nodes' free counts cannot change while their VM runs,
    /// so Siloz skips them entirely; the baseline iterates every node.
    /// Returns the snapshot and how many nodes were iterated.
    pub fn refresh_node_stats(&self) -> Result<(Vec<(NodeId, u64)>, usize), SilozError> {
        let nodes: Vec<NodeId> = match self.kind {
            // Host-reserved nodes only: everything guest-reserved is
            // either idle (stats frozen at group capacity) or reserved by a
            // running VM (stats frozen after VM boot, §5.3).
            HypervisorKind::Siloz => self.host_nodes.clone(),
            HypervisorKind::Baseline => self.topo.nodes().map(|i| i.id).collect(),
        };
        let iterated = nodes.len();
        let snapshot = self.topo.snapshot_stats(nodes)?;
        Ok((snapshot, iterated))
    }

    /// Allocates one 4 KiB table page from the guard-protected pool of the
    /// VM's socket (GFP_EPT path), falling back to host-reserved memory
    /// when guard rows are disabled. Used for EPT-adjacent metadata that
    /// needs the same integrity protection (e.g. IOMMU tables, §5.1).
    pub fn alloc_protected_table_page(&mut self, handle: VmHandle) -> Result<u64, SilozError> {
        let socket = self.vm(handle)?.socket;
        if self.kind == HypervisorKind::Siloz {
            if let Some(alloc) = self.ept_allocs.get_mut(&socket) {
                return alloc.alloc_table_page().map_err(Into::into);
            }
        }
        let frame = self.host_alloc(socket, 0)?;
        Ok(hpa_of_frame(frame))
    }

    /// Copies `len` bytes between physical ranges, line by line (used by
    /// migration-based defenses).
    ///
    /// Decodes go through the hypervisor's copy TLB (one real decode per
    /// row-group stripe rather than per 64 B line) and reads land in a
    /// reused scratch buffer, so the per-line loop is allocation-free.
    pub fn copy_phys(&mut self, src: u64, dst: u64, len: u64) -> Result<(), SilozError> {
        let g = *self.decoder.geometry();
        let mut off = 0u64;
        while off < len {
            let sm = self.copy_tlb.decode(src + off)?;
            let chunk = (dram_addr::CACHE_LINE_BYTES - (src + off) % dram_addr::CACHE_LINE_BYTES)
                .min(len - off);
            let sbank = sm.global_bank(&g);
            let _ = self.dram.read_row_into(
                sbank,
                sm.row,
                sm.col,
                chunk as u32,
                &mut self.copy_scratch,
            );
            let dm = self.copy_tlb.decode(dst + off)?;
            let dbank = dm.global_bank(&g);
            self.dram
                .write_row(dbank, dm.row, dm.col, &self.copy_scratch);
            off += chunk;
        }
        Ok(())
    }

    /// Migrates the backing block containing `gpa` to a fresh block on the
    /// same node, updating the EPT (the Copy-on-Flip response to corrected
    /// errors, §3). Fails for unmapped GPAs or when the node is full.
    pub fn migrate_block(&mut self, handle: VmHandle, gpa: u64) -> Result<(), SilozError> {
        let (region_idx, block_idx, old) = {
            let vm = self.vm(handle)?;
            let mut found = None;
            for (ri, r) in vm.regions.iter().enumerate() {
                for (bi, b) in r.backing.iter().enumerate() {
                    if gpa >= b.gpa && gpa < b.gpa + b.bytes() {
                        found = Some((ri, bi, *b));
                    }
                }
            }
            found.ok_or(SilozError::Ept(EptError::NotMapped { gpa }))?
        };
        let new_frame = self.topo.alloc(old.node, old.order)?;
        let new = BackingBlock {
            frame: new_frame,
            ..old
        };
        self.copy_phys(old.hpa(), new.hpa(), old.bytes())?;
        // Swap the EPT mapping.
        let socket = self.vm(handle)?.socket;
        let use_guard_pool =
            self.kind == HypervisorKind::Siloz && self.ept_allocs.contains_key(&socket);
        let host_node = self.host_nodes[socket as usize];
        {
            let vm = self.vms.get_mut(&handle.0).expect("vm exists");
            let region = &vm.regions[region_idx];
            let size = match old.order {
                0 => PageSize::Size4K,
                9 => PageSize::Size2M,
                _ => PageSize::Size1G,
            };
            let perms = match region.kind {
                MemoryRegionKind::Rom | MemoryRegionKind::RomDevice => EptPerms::RO,
                _ => EptPerms::RWX,
            };
            let mut mem = DramPhysMem {
                dram: &mut self.dram,
                decoder: &self.decoder,
            };
            vm.ept.unmap(&mut mem, old.gpa)?;
            if use_guard_pool {
                let alloc = self.ept_allocs.get_mut(&socket).expect("guard pool");
                vm.ept
                    .map(&mut mem, alloc, old.gpa, new.hpa(), size, perms)?;
            } else {
                let mut alloc = NodeEptAlloc {
                    topo: &self.topo,
                    node: host_node,
                    got: Vec::new(),
                };
                vm.ept
                    .map(&mut mem, &mut alloc, old.gpa, new.hpa(), size, perms)?;
            }
            vm.regions[region_idx].backing[block_idx] = new;
        }
        self.topo.free(old.node, old.frame, old.order)?;
        self.events.migrations += 1;
        Ok(())
    }

    /// Allocates host memory (order-`order` block) from a socket's
    /// host-reserved node.
    pub fn host_alloc(&mut self, socket: u16, order: u8) -> Result<u64, SilozError> {
        let node = *self
            .host_nodes
            .get(socket as usize)
            .ok_or_else(|| SilozError::BadConfig(format!("no socket {socket}")))?;
        Ok(self.topo.alloc(node, order)?)
    }

    /// Frees host memory.
    pub fn host_free(&mut self, socket: u16, frame: u64, order: u8) -> Result<(), SilozError> {
        let node = self.host_nodes[socket as usize];
        self.topo.free(node, frame, order)?;
        Ok(())
    }
}

fn round_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

fn page_order(size: PageSize) -> u8 {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 9,
        PageSize::Size1G => 18,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmSpec;

    fn mini_siloz() -> Hypervisor {
        Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap()
    }

    fn mini_baseline() -> Hypervisor {
        Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Baseline).unwrap()
    }

    #[test]
    fn siloz_vm_gets_exclusive_groups() {
        let mut hv = mini_siloz();
        let a = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let b = hv.create_vm(VmSpec::new("b", 2, 96 << 20)).unwrap();
        let ga = hv.vm_groups(a).unwrap();
        let gb = hv.vm_groups(b).unwrap();
        assert!(!ga.is_empty() && !gb.is_empty());
        assert!(
            ga.iter().all(|g| !gb.contains(g)),
            "groups must be disjoint"
        );
    }

    #[test]
    fn vm_backing_lands_only_in_its_groups() {
        let mut hv = mini_siloz();
        let vm = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let groups = hv.vm_groups(vm).unwrap();
        for block in hv.vm_unmediated_backing(vm).unwrap() {
            for off in (0..block.bytes()).step_by(1 << 20) {
                let gid = hv.groups().group_of_phys(block.hpa() + off).unwrap();
                assert!(groups.contains(&gid), "backing outside provisioned groups");
            }
        }
    }

    #[test]
    fn mediated_regions_go_to_host_reserved_memory() {
        let mut hv = mini_siloz();
        let vm = hv
            .create_vm(VmSpec::new("a", 2, 96 << 20).with_region(MemoryRegionKind::Mmio, 16 << 10))
            .unwrap();
        let host_node = hv.host_nodes()[0];
        let regions = hv.vm_regions(vm).unwrap();
        let mmio = regions
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Mmio)
            .unwrap();
        for b in &mmio.backing {
            assert_eq!(b.node, host_node, "mediated pages must be host-reserved");
        }
        let ram = regions
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Ram)
            .unwrap();
        for b in &ram.backing {
            assert_ne!(
                b.node, host_node,
                "unmediated pages must not be host-reserved"
            );
        }
    }

    #[test]
    fn translation_works_end_to_end_through_dram() {
        let mut hv = mini_siloz();
        let vm = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let t = hv.translate(vm, 0x123456).unwrap();
        // GPA-contiguous RAM from block 0.
        let backing = hv.vm_unmediated_backing(vm).unwrap();
        assert_eq!(t.hpa, backing[0].hpa() + 0x123456 % backing[0].bytes());
        assert!(t.perms.write);
    }

    #[test]
    fn guest_read_write_roundtrip() {
        let mut hv = mini_siloz();
        let vm = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        hv.guest_write(vm, 0x1000, &data).unwrap();
        let (back, intact) = hv.guest_read(vm, 0x1000, data.len()).unwrap();
        assert!(intact);
        assert_eq!(back, data);
    }

    #[test]
    fn siloz_ept_pages_live_in_the_guard_protected_row_group() {
        let mut hv = mini_siloz();
        let vm = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        let plan = hv.ept_plan().unwrap().clone();
        let sp = plan.socket(0).unwrap();
        let pages = hv.vm_ept_pages(vm).unwrap().to_vec();
        assert!(!pages.is_empty());
        for hpa in pages {
            let (_, row) = hv.decoder().row_group_of(hpa).unwrap();
            assert_eq!(row, sp.ept_row, "EPT page outside the EPT row group");
        }
    }

    #[test]
    fn baseline_ept_pages_are_ordinary_allocations() {
        let mut hv = mini_baseline();
        let vm = hv.create_vm(VmSpec::new("a", 2, 96 << 20)).unwrap();
        assert!(hv.ept_plan().is_none());
        assert!(!hv.vm_ept_pages(vm).unwrap().is_empty());
    }

    #[test]
    fn unprivileged_processes_cannot_create_vms() {
        let mut hv = mini_siloz();
        let err = hv
            .create_vm(VmSpec::new("evil", 1, 1 << 20).unprivileged())
            .unwrap_err();
        assert!(matches!(err, SilozError::NotPermitted(_)));
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut hv = mini_siloz();
        // Mini has 7 guest groups of 128 MiB each.
        let _a = hv.create_vm(VmSpec::new("a", 1, 512 << 20)).unwrap();
        let err = hv.create_vm(VmSpec::new("b", 1, 512 << 20)).unwrap_err();
        assert!(matches!(err, SilozError::InsufficientCapacity { .. }));
    }

    #[test]
    fn destroy_vm_releases_groups_for_reuse() {
        let mut hv = mini_siloz();
        let a = hv.create_vm(VmSpec::new("a", 1, 512 << 20)).unwrap();
        hv.destroy_vm(a).unwrap();
        assert!(hv.create_vm(VmSpec::new("b", 1, 512 << 20)).is_ok());
        assert!(matches!(hv.destroy_vm(a), Err(SilozError::NoSuchVm(_))));
    }

    #[test]
    fn destroy_restores_free_frames() {
        let mut hv = mini_siloz();
        let free_before: u64 = hv
            .guest_nodes()
            .to_vec()
            .iter()
            .map(|&n| hv.topology().free_frames(n).unwrap())
            .sum();
        let a = hv.create_vm(VmSpec::new("a", 1, 256 << 20)).unwrap();
        hv.destroy_vm(a).unwrap();
        let free_after: u64 = hv
            .guest_nodes()
            .to_vec()
            .iter()
            .map(|&n| hv.topology().free_frames(n).unwrap())
            .sum();
        assert_eq!(free_before, free_after);
    }

    #[test]
    fn baseline_vms_share_subarray_groups() {
        // The vulnerability Siloz closes: on the baseline, two VMs' pages
        // co-locate in the same subarray groups.
        let mut hv = mini_baseline();
        let a = hv.create_vm(VmSpec::new("a", 1, 96 << 20)).unwrap();
        let b = hv.create_vm(VmSpec::new("b", 1, 96 << 20)).unwrap();
        let group_of = |hv: &Hypervisor, h| -> std::collections::BTreeSet<u32> {
            hv.vm_unmediated_backing(h)
                .unwrap()
                .iter()
                .map(|blk| hv.groups().group_of_phys(blk.hpa()).unwrap().0)
                .collect()
        };
        let ga = group_of(&hv, a);
        let gb = group_of(&hv, b);
        assert!(
            ga.intersection(&gb).next().is_some(),
            "baseline VMs should share groups: {ga:?} vs {gb:?}"
        );
    }

    #[test]
    fn preferred_socket_is_honored_with_fallback() {
        let config = SilozConfig::evaluation();
        let mut hv = Hypervisor::boot(config, HypervisorKind::Siloz).unwrap();
        let vm = hv
            .create_vm(VmSpec::new("a", 4, 3 << 30).on_socket(1))
            .unwrap();
        for n in hv.vm_nodes(vm).unwrap() {
            assert_eq!(hv.topology().node(*n).unwrap().socket, 1);
        }
    }

    #[test]
    fn ept_integrity_mode_follows_protection_config() {
        let mut config = SilozConfig::mini();
        config.ept_protection = EptProtection::SecureEpt;
        let mut hv = Hypervisor::boot(config, HypervisorKind::Siloz).unwrap();
        let vm = hv.create_vm(VmSpec::new("a", 1, 64 << 20)).unwrap();
        // Secure EPT still translates fine when uncorrupted.
        assert!(hv.translate(vm, 0).is_ok());
    }

    #[test]
    fn rom_regions_are_read_only_in_the_ept() {
        let mut hv = mini_siloz();
        let vm = hv
            .create_vm(VmSpec::new("a", 1, 64 << 20).with_region(MemoryRegionKind::Rom, 2 << 20))
            .unwrap();
        let regions = hv.vm_regions(vm).unwrap();
        let rom_gpa = regions
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Rom)
            .unwrap()
            .gpa;
        let t = hv.translate(vm, rom_gpa).unwrap();
        assert!(t.perms.read && !t.perms.write);
    }

    #[test]
    fn stat_refresh_skips_guest_nodes_under_siloz() {
        // §5.3: guest-reserved node statistics need no periodic updates;
        // Siloz iterates only host nodes regardless of how many logical
        // nodes exist — the mechanism behind the §7.4 "node count does not
        // matter" result.
        let mut hv = mini_siloz();
        let _ = hv.create_vm(VmSpec::new("a", 1, 96 << 20)).unwrap();
        let (snap, iterated) = hv.refresh_node_stats().unwrap();
        assert_eq!(iterated, 1, "one host node per socket");
        assert_eq!(snap.len(), 1);

        let mut base = mini_baseline();
        let _ = base.create_vm(VmSpec::new("a", 1, 96 << 20)).unwrap();
        let (_, iterated) = base.refresh_node_stats().unwrap();
        assert_eq!(iterated, 1, "baseline has one node per socket anyway");

        // At evaluation scale the asymmetry is 2 vs 256.
        let hv = Hypervisor::boot(SilozConfig::evaluation(), HypervisorKind::Siloz).unwrap();
        let (_, iterated) = hv.refresh_node_stats().unwrap();
        assert_eq!(iterated, 2);
    }

    #[test]
    fn guest_writes_to_rom_are_rejected() {
        let mut hv = mini_siloz();
        let vm = hv
            .create_vm(VmSpec::new("a", 1, 64 << 20).with_region(MemoryRegionKind::Rom, 2 << 20))
            .unwrap();
        let rom_gpa = hv
            .vm_regions(vm)
            .unwrap()
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Rom)
            .unwrap()
            .gpa;
        assert!(matches!(
            hv.guest_write(vm, rom_gpa, b"overwrite"),
            Err(SilozError::NotPermitted(_))
        ));
        // Reads still work.
        assert!(hv.guest_read(vm, rom_gpa, 8).is_ok());
    }

    #[test]
    fn gfp_ept_pool_exhaustion_is_a_clean_error() {
        // §5.4 sizes one row group of EPT pages per socket; 4 KiB-backed
        // VMs are page-table hungry and eventually drain the pool.
        use ept::PageSize;
        let mut hv = mini_siloz();
        let mut created = 0;
        let err = loop {
            let r = hv.create_vm(
                VmSpec::new(&format!("tiny{created}"), 1, 16 << 20)
                    .with_page_size(PageSize::Size4K),
            );
            match r {
                Ok(_) => created += 1,
                Err(e) => break e,
            }
            assert!(created < 64, "pool never exhausted?");
        };
        assert!(created > 0, "some VMs fit");
        assert!(
            matches!(err, SilozError::Ept(EptError::OutOfMemory))
                || matches!(err, SilozError::InsufficientCapacity { .. }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn mmio_regions_are_not_mapped() {
        let mut hv = mini_siloz();
        let vm = hv
            .create_vm(VmSpec::new("a", 1, 64 << 20).with_region(MemoryRegionKind::Mmio, 4096))
            .unwrap();
        let regions = hv.vm_regions(vm).unwrap();
        let mmio_gpa = regions
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Mmio)
            .unwrap()
            .gpa;
        assert!(matches!(
            hv.translate(vm, mmio_gpa),
            Err(SilozError::Ept(EptError::NotMapped { .. }))
        ));
    }
}
