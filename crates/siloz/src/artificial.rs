//! Handling media-to-internal mapping hazards (§6).
//!
//! Three hazards can make a DIMM's *internal* row layout disagree with the
//! media-address layout Siloz computes groups from: vendor row scrambling,
//! DDR4 mirroring/inversion with non-power-of-2 subarray sizes, and
//! inter-subarray row repairs. For each, Siloz removes the small set of
//! pages that could violate isolation from allocatable memory — the same
//! mechanism Linux uses for failing pages — or forms *artificial* subarray
//! groups padded with guard rows.

use crate::SilozError;
use dram_addr::transform::media_row_from_internal;
use dram_addr::{BankId, InternalMapConfig, RankSide, RepairMap, SystemAddressDecoder};
use numa::frame_of_hpa;

/// Rows reserved at each subarray boundary when vendor scrambling is active
/// and the subarray size is not a multiple of 8 (§6).
///
/// Scrambling permutes rows within aligned 8-row blocks; when a subarray
/// boundary falls inside such a block, the whole block is reserved.
#[must_use]
pub fn scrambling_reserved_rows(subarray_rows: u32, rows_per_bank: u32) -> Vec<u32> {
    if subarray_rows == 0 || subarray_rows.is_multiple_of(8) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut boundary = subarray_rows;
    while boundary < rows_per_bank {
        let block = boundary & !7;
        for r in block..(block + 8).min(rows_per_bank) {
            out.push(r);
        }
        boundary += subarray_rows;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A plan for *artificial* subarray groups: non-power-of-2 subarray sizes
/// rounded up to the next power of two, with `guard_rows` reserved at each
/// artificial boundary across all rank/side mapping variants (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtificialGroupPlan {
    /// The DIMM's true subarray size.
    pub true_rows: u32,
    /// The artificial (power-of-2) subarray size Siloz manages.
    pub artificial_rows: u32,
    /// Guard rows inserted after each artificial boundary (n = 4 protects
    /// against the blast radius observed on modern server DIMMs).
    pub guard_rows: u32,
    /// Media rows reserved per bank (union over rank parities and sides).
    pub reserved_rows: Vec<u32>,
    /// Total rows per bank, for fraction accounting.
    pub rows_per_bank: u32,
}

impl ArtificialGroupPlan {
    /// Builds the plan for a DIMM with `true_rows`-row subarrays under the
    /// given internal transformations.
    ///
    /// For power-of-2 sizes no reservation is needed and
    /// `reserved_rows` is empty (the artificial size equals the true size).
    #[must_use]
    pub fn new(
        true_rows: u32,
        guard_rows: u32,
        cfg: InternalMapConfig,
        rows_per_bank: u32,
    ) -> Self {
        let artificial_rows = true_rows.next_power_of_two();
        let mut reserved = Vec::new();
        if !true_rows.is_power_of_two() {
            // Reserve `guard_rows` internal rows at each artificial
            // boundary; a hazard on any rank/side variant reserves the
            // media rows mapping there under that variant.
            let mut boundary = 0u32;
            while boundary < rows_per_bank {
                for g in 0..guard_rows {
                    let internal = boundary + g;
                    if internal >= rows_per_bank {
                        break;
                    }
                    for rank in 0..2u16 {
                        for side in RankSide::BOTH {
                            let media = media_row_from_internal(internal, rank, side, cfg);
                            if media < rows_per_bank {
                                reserved.push(media);
                            }
                        }
                    }
                }
                boundary += artificial_rows;
            }
            reserved.sort_unstable();
            reserved.dedup();
        }
        Self {
            true_rows,
            artificial_rows,
            guard_rows,
            reserved_rows: reserved,
            rows_per_bank,
        }
    }

    /// Fraction of DRAM reserved by the plan.
    #[must_use]
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_rows.len() as f64 / self.rows_per_bank as f64
    }

    /// Whether any reservation is needed at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.reserved_rows.is_empty() && self.artificial_rows == self.true_rows
    }
}

/// Page frames whose data has any cache line in `(bank, row)` — the pages
/// that must be offlined if that row is repaired into another subarray (§6).
pub fn frames_touching_bank_row(
    decoder: &SystemAddressDecoder,
    bank: BankId,
    row: u32,
) -> Result<Vec<u64>, SilozError> {
    let g = decoder.geometry();
    let mut media = bank.to_media(g);
    media.row = row;
    let mut frames = Vec::new();
    for line in 0..g.lines_per_row() {
        media.col = (line * dram_addr::CACHE_LINE_BYTES) as u32;
        let phys = decoder.encode(&media)?;
        let frame = frame_of_hpa(phys);
        if frames.last() != Some(&frame) {
            frames.push(frame);
        }
    }
    frames.sort_unstable();
    frames.dedup();
    Ok(frames)
}

/// All frames to offline because of inter-subarray repairs in `repairs`.
pub fn inter_subarray_repair_frames(
    decoder: &SystemAddressDecoder,
    repairs: &RepairMap,
) -> Result<Vec<u64>, SilozError> {
    let g = decoder.geometry();
    let mut out = Vec::new();
    for (bank, row) in repairs.inter_subarray_repairs(g) {
        out.extend(frames_touching_bank_row(decoder, bank, row)?);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::{skylake_decoder, RepairKind};
    use rand::SeedableRng;

    #[test]
    fn multiple_of_8_sizes_need_no_scrambling_reservation() {
        for rows in [512u32, 1024, 2048, 520, 768] {
            assert!(
                scrambling_reserved_rows(rows, 131_072).is_empty(),
                "{rows} is a multiple of 8"
            );
        }
    }

    #[test]
    fn non_multiple_of_8_sizes_reserve_8_row_blocks() {
        // A 1021-row subarray: boundaries at 1021, 2042, ... each inside an
        // 8-row block that must be reserved.
        let reserved = scrambling_reserved_rows(1021, 8168);
        assert!(!reserved.is_empty());
        assert_eq!(reserved.len() % 8, 0);
        // Fraction is small: ~8 rows per subarray.
        let frac = reserved.len() as f64 / 8168.0;
        assert!(frac < 0.01, "fraction {frac}");
    }

    #[test]
    fn artificial_plan_is_noop_for_power_of_two() {
        let plan = ArtificialGroupPlan::new(1024, 4, InternalMapConfig::default(), 131_072);
        assert!(plan.is_noop());
        assert_eq!(plan.artificial_rows, 1024);
        assert_eq!(plan.reserved_fraction(), 0.0);
    }

    #[test]
    fn artificial_plan_fraction_matches_paper_envelope() {
        // §6: reservations between ~1.56% (512-ish sizes) and ~0.39%
        // (2048-ish sizes), linearly decreasing with subarray size.
        let cfg = InternalMapConfig::default();
        let rows_per_bank = 131_072;
        let small = ArtificialGroupPlan::new(513, 4, cfg, rows_per_bank);
        // Artificial size 1024; 4 guard rows x up to 4 variants per
        // boundary = at most 16 rows per 1024 = 1.56%.
        assert!(
            small.reserved_fraction() <= 0.0157,
            "{}",
            small.reserved_fraction()
        );
        assert!(
            small.reserved_fraction() >= 0.0039,
            "{}",
            small.reserved_fraction()
        );
        let large = ArtificialGroupPlan::new(1025, 4, cfg, rows_per_bank);
        // Artificial size 2048: fraction halves.
        assert!(large.reserved_fraction() <= small.reserved_fraction());
        assert!(large.reserved_fraction() >= 0.0019);
    }

    #[test]
    fn artificial_plan_covers_all_rank_side_variants() {
        let cfg = InternalMapConfig::default();
        let plan = ArtificialGroupPlan::new(513, 4, cfg, 8192);
        // Every internal guard row's media image under every variant must be
        // reserved.
        for boundary in (0..8192u32).step_by(1024) {
            for g in 0..4 {
                for rank in 0..2u16 {
                    for side in RankSide::BOTH {
                        let media = media_row_from_internal(boundary + g, rank, side, cfg);
                        if media < 8192 {
                            assert!(
                                plan.reserved_rows.contains(&media),
                                "variant (rank {rank}, {side:?}) row {media} missing"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn frames_touching_bank_row_is_one_third_of_row_group() {
        // A 4 KiB page holds 64 lines that cycle 64 of 192 banks; so a
        // given (bank, row) appears in 1/3 of the row group's 384 pages.
        let dec = skylake_decoder();
        let frames = frames_touching_bank_row(&dec, BankId(0), 0).unwrap();
        assert_eq!(frames.len(), 128);
        // All inside the row group's 1.5 MiB extent.
        let rg = dec.phys_range_of_row_group(0, 0).unwrap();
        for f in &frames {
            let p = f * 4096;
            assert!(p >= rg.start && p < rg.end);
        }
    }

    #[test]
    fn repair_frames_cover_only_crossing_repairs() {
        let dec = skylake_decoder();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let intra = RepairMap::generate(
            dec.geometry(),
            0.000001,
            RepairKind::IntraSubarray,
            &mut rng,
        );
        assert!(inter_subarray_repair_frames(&dec, &intra)
            .unwrap()
            .is_empty());
        let inter = RepairMap::generate(
            dec.geometry(),
            0.000001,
            RepairKind::InterSubarray,
            &mut rng,
        );
        let frames = inter_subarray_repair_frames(&dec, &inter).unwrap();
        assert_eq!(frames.len(), inter.len() * 128);
    }
}
