//! Paravirtual (virtio) I/O: the mediated DMA path (§5.1).
//!
//! The Siloz prototype uses virtio for guest I/O, so *the hypervisor*
//! performs all DMA on the guest's behalf — guests cannot issue unmediated
//! DMAs to hammer, and the host can rate-limit exit-induced memory traffic
//! (the §5.1 answer to hypothetical confused-deputy hammering).
//!
//! This module implements a real split-virtqueue (descriptor table + avail
//! ring + used ring laid out in guest memory, walked through the EPT and
//! the simulated DRAM) and a virtio-blk-style device backend, plus the
//! [`DmaRateLimiter`] governing the host-side copy rate.

use crate::hypervisor::Hypervisor;
use crate::vm::VmHandle;
use crate::SilozError;

/// Bytes per descriptor table entry.
const DESC_BYTES: u64 = 16;
/// virtio-blk request type: read a sector range.
pub const VIRTIO_BLK_T_IN: u32 = 0;
/// virtio-blk request type: write a sector range.
pub const VIRTIO_BLK_T_OUT: u32 = 1;
/// Status written by the device on success.
pub const VIRTIO_BLK_S_OK: u8 = 0;
/// Status written by the device on I/O error.
pub const VIRTIO_BLK_S_IOERR: u8 = 1;
/// Descriptor flag: buffer continues in `next`.
pub const VIRTQ_DESC_F_NEXT: u16 = 1;
/// Descriptor flag: device writes to this buffer.
pub const VIRTQ_DESC_F_WRITE: u16 = 2;
/// Disk sector size.
pub const SECTOR_BYTES: u64 = 512;

/// A guest-visible split virtqueue at fixed guest physical addresses.
///
/// Layout (all in guest RAM, so fully unmediated for the *guest*; the
/// device side below accesses it only through the hypervisor):
/// - descriptor table at `desc_gpa`: `queue_size` 16-byte descriptors
/// - avail ring at `avail_gpa`: `flags u16, idx u16, ring[queue_size] u16`
/// - used ring at `used_gpa`: `flags u16, idx u16, {id u32, len u32}[qs]`
#[derive(Debug, Clone, Copy)]
pub struct VirtQueue {
    /// Queue depth (power of two).
    pub queue_size: u16,
    /// GPA of the descriptor table.
    pub desc_gpa: u64,
    /// GPA of the available ring.
    pub avail_gpa: u64,
    /// GPA of the used ring.
    pub used_gpa: u64,
}

impl VirtQueue {
    /// Lays out a queue of `queue_size` entries contiguously at `base_gpa`.
    #[must_use]
    pub fn at(base_gpa: u64, queue_size: u16) -> Self {
        let desc_gpa = base_gpa;
        let avail_gpa = desc_gpa + queue_size as u64 * DESC_BYTES;
        let used_gpa = avail_gpa + 4 + queue_size as u64 * 2;
        Self {
            queue_size,
            desc_gpa,
            avail_gpa,
            used_gpa,
        }
    }
}

/// One descriptor, as stored in guest memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest physical address of the buffer.
    pub addr: u64,
    /// Buffer length.
    pub len: u32,
    /// VIRTQ_DESC_F_* flags.
    pub flags: u16,
    /// Next descriptor index (when F_NEXT).
    pub next: u16,
}

/// Host-side token-bucket limiting mediated DMA bytes per simulated second
/// (§5.1: the host can rate-limit exit-induced memory accesses).
#[derive(Debug, Clone)]
pub struct DmaRateLimiter {
    bytes_per_sec: u64,
    tokens: f64,
    last_ns: u64,
    /// Total bytes refused so far (diagnostics).
    pub throttled_bytes: u64,
}

impl DmaRateLimiter {
    /// A limiter allowing `bytes_per_sec` of mediated DMA.
    #[must_use]
    pub fn new(bytes_per_sec: u64) -> Self {
        Self {
            bytes_per_sec,
            tokens: bytes_per_sec as f64 / 100.0, // small initial burst
            last_ns: 0,
            throttled_bytes: 0,
        }
    }

    /// An effectively-unlimited limiter.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::new(u64::MAX / 2)
    }

    /// Asks to transfer `bytes` at simulated time `now_ns`; returns whether
    /// the transfer may proceed now.
    pub fn admit(&mut self, bytes: u64, now_ns: u64) -> bool {
        let dt = now_ns.saturating_sub(self.last_ns) as f64 / 1e9;
        self.last_ns = now_ns;
        self.tokens = (self.tokens + dt * self.bytes_per_sec as f64).min(self.bytes_per_sec as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            self.throttled_bytes += bytes;
            false
        }
    }
}

/// Statistics of a device's processing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VirtioStats {
    /// Requests completed OK.
    pub ok: u64,
    /// Requests failed (bad sector/descriptor).
    pub errors: u64,
    /// Requests deferred by the rate limiter.
    pub throttled: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// A virtio-blk-style device: a disk image served over a [`VirtQueue`].
///
/// The device side only ever touches guest memory through the hypervisor
/// (EPT walk + simulated DRAM) — every byte of DMA is host-mediated.
#[derive(Debug)]
pub struct VirtioBlk {
    queue: VirtQueue,
    disk: Vec<u8>,
    last_avail_idx: u16,
    limiter: DmaRateLimiter,
    /// Running statistics.
    pub stats: VirtioStats,
}

impl VirtioBlk {
    /// A device over `queue` with a zeroed disk of `sectors` sectors.
    #[must_use]
    pub fn new(queue: VirtQueue, sectors: u64) -> Self {
        Self {
            queue,
            disk: vec![0u8; (sectors * SECTOR_BYTES) as usize],
            last_avail_idx: 0,
            limiter: DmaRateLimiter::unlimited(),
            stats: VirtioStats::default(),
        }
    }

    /// Installs a DMA rate limiter.
    #[must_use]
    pub fn with_limiter(mut self, limiter: DmaRateLimiter) -> Self {
        self.limiter = limiter;
        self
    }

    /// Direct (host-side) disk access for test setup.
    pub fn disk_mut(&mut self) -> &mut [u8] {
        &mut self.disk
    }

    fn read_u16(hv: &mut Hypervisor, vm: VmHandle, gpa: u64) -> Result<u16, SilozError> {
        let (b, _) = hv.guest_read(vm, gpa, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn read_u32(hv: &mut Hypervisor, vm: VmHandle, gpa: u64) -> Result<u32, SilozError> {
        let (b, _) = hv.guest_read(vm, gpa, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_u64(hv: &mut Hypervisor, vm: VmHandle, gpa: u64) -> Result<u64, SilozError> {
        let (b, _) = hv.guest_read(vm, gpa, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads descriptor `idx` from the table.
    fn read_desc(
        &self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        idx: u16,
    ) -> Result<Descriptor, SilozError> {
        if idx >= self.queue.queue_size {
            return Err(SilozError::BadConfig(format!(
                "descriptor index {idx} out of range"
            )));
        }
        let base = self.queue.desc_gpa + idx as u64 * DESC_BYTES;
        Ok(Descriptor {
            addr: Self::read_u64(hv, vm, base)?,
            len: Self::read_u32(hv, vm, base + 8)?,
            flags: Self::read_u16(hv, vm, base + 12)?,
            next: Self::read_u16(hv, vm, base + 14)?,
        })
    }

    /// Processes all newly-available requests; returns how many completed.
    ///
    /// Each request is the standard virtio-blk 3-descriptor chain:
    /// header (type u32, reserved u32, sector u64) → data → status byte.
    pub fn process_queue(&mut self, hv: &mut Hypervisor, vm: VmHandle) -> Result<u32, SilozError> {
        let avail_idx = Self::read_u16(hv, vm, self.queue.avail_gpa + 2)?;
        let mut completed = 0u32;
        while self.last_avail_idx != avail_idx {
            let slot = self.last_avail_idx % self.queue.queue_size;
            let head = Self::read_u16(hv, vm, self.queue.avail_gpa + 4 + slot as u64 * 2)?;
            match self.process_one(hv, vm, head)? {
                None => {
                    // Throttled: retry this request on the next pass.
                    self.stats.throttled += 1;
                    break;
                }
                Some(len) => {
                    self.push_used(hv, vm, head, len)?;
                    self.last_avail_idx = self.last_avail_idx.wrapping_add(1);
                    completed += 1;
                }
            }
        }
        Ok(completed)
    }

    /// Handles one descriptor chain; `Ok(None)` means rate-limited.
    fn process_one(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        head: u16,
    ) -> Result<Option<u32>, SilozError> {
        let hdr_desc = self.read_desc(hv, vm, head)?;
        let (hdr, _) = hv.guest_read(vm, hdr_desc.addr, 16)?;
        let req_type = u32::from_le_bytes(hdr[0..4].try_into().expect("4"));
        let sector = u64::from_le_bytes(hdr[8..16].try_into().expect("8"));
        if hdr_desc.flags & VIRTQ_DESC_F_NEXT == 0 {
            return Err(SilozError::BadConfig(
                "header without data descriptor".into(),
            ));
        }
        let data_desc = self.read_desc(hv, vm, hdr_desc.next)?;
        if data_desc.flags & VIRTQ_DESC_F_NEXT == 0 {
            return Err(SilozError::BadConfig(
                "data without status descriptor".into(),
            ));
        }
        let status_desc = self.read_desc(hv, vm, data_desc.next)?;

        // Host-mediated DMA: subject to the rate limiter.
        let now = hv.dram().now_ns();
        if !self.limiter.admit(data_desc.len as u64, now) {
            return Ok(None);
        }

        let start = (sector * SECTOR_BYTES) as usize;
        let end = start + data_desc.len as usize;
        let mut status = VIRTIO_BLK_S_OK;
        let mut used_len = 1u32; // status byte
        if end > self.disk.len() {
            status = VIRTIO_BLK_S_IOERR;
            self.stats.errors += 1;
        } else {
            match req_type {
                VIRTIO_BLK_T_IN => {
                    // Disk -> guest buffer (device writes guest memory).
                    if data_desc.flags & VIRTQ_DESC_F_WRITE == 0 {
                        status = VIRTIO_BLK_S_IOERR;
                        self.stats.errors += 1;
                    } else {
                        let payload = self.disk[start..end].to_vec();
                        hv.guest_write(vm, data_desc.addr, &payload)?;
                        used_len += data_desc.len;
                        self.stats.bytes += data_desc.len as u64;
                        self.stats.ok += 1;
                    }
                }
                VIRTIO_BLK_T_OUT => {
                    // Guest buffer -> disk (device reads guest memory).
                    let (payload, _) = hv.guest_read(vm, data_desc.addr, data_desc.len as usize)?;
                    self.disk[start..end].copy_from_slice(&payload);
                    self.stats.bytes += data_desc.len as u64;
                    self.stats.ok += 1;
                }
                _ => {
                    status = VIRTIO_BLK_S_IOERR;
                    self.stats.errors += 1;
                }
            }
        }
        hv.guest_write(vm, status_desc.addr, &[status])?;
        Ok(Some(used_len))
    }

    /// Appends a used-ring entry and bumps the used index.
    fn push_used(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmHandle,
        id: u16,
        len: u32,
    ) -> Result<(), SilozError> {
        let used_idx = Self::read_u16(hv, vm, self.queue.used_gpa + 2)?;
        let slot = used_idx % self.queue.queue_size;
        let entry_gpa = self.queue.used_gpa + 4 + slot as u64 * 8;
        hv.guest_write(vm, entry_gpa, &(id as u32).to_le_bytes())?;
        hv.guest_write(vm, entry_gpa + 4, &len.to_le_bytes())?;
        hv.guest_write(
            vm,
            self.queue.used_gpa + 2,
            &used_idx.wrapping_add(1).to_le_bytes(),
        )?;
        Ok(())
    }
}

/// Guest-driver helpers: build requests in guest memory (used by tests and
/// examples playing the guest role).
pub mod driver {
    use super::{Descriptor, VirtQueue, DESC_BYTES, VIRTQ_DESC_F_NEXT, VIRTQ_DESC_F_WRITE};
    use crate::hypervisor::Hypervisor;
    use crate::vm::VmHandle;
    use crate::SilozError;

    /// Writes descriptor `idx` into the table.
    pub fn write_desc(
        hv: &mut Hypervisor,
        vm: VmHandle,
        q: &VirtQueue,
        idx: u16,
        d: Descriptor,
    ) -> Result<(), SilozError> {
        let base = q.desc_gpa + idx as u64 * DESC_BYTES;
        hv.guest_write(vm, base, &d.addr.to_le_bytes())?;
        hv.guest_write(vm, base + 8, &d.len.to_le_bytes())?;
        hv.guest_write(vm, base + 12, &d.flags.to_le_bytes())?;
        hv.guest_write(vm, base + 14, &d.next.to_le_bytes())?;
        Ok(())
    }

    /// One guest block request: where its descriptor chain starts and which
    /// guest pages hold the header, payload, and status byte.
    ///
    /// The guest lays these out itself before ringing the device, so the
    /// driver helper takes them as one value rather than seven loose
    /// positional arguments.
    #[derive(Debug, Clone, Copy)]
    pub struct BlkRequest {
        /// First descriptor index of the 3-descriptor chain.
        pub head: u16,
        /// `VIRTIO_BLK_T_IN` (read) or `VIRTIO_BLK_T_OUT` (write).
        pub req_type: u32,
        /// Starting disk sector.
        pub sector: u64,
        /// Guest address of the 16-byte request header.
        pub hdr_gpa: u64,
        /// Guest address of the data payload.
        pub data_gpa: u64,
        /// Payload length in bytes.
        pub data_len: u32,
        /// Guest address of the 1-byte status field.
        pub status_gpa: u64,
    }

    /// Builds the standard 3-descriptor virtio-blk chain described by `req`
    /// and publishes it on the avail ring.
    pub fn submit_request(
        hv: &mut Hypervisor,
        vm: VmHandle,
        q: &VirtQueue,
        req: &BlkRequest,
    ) -> Result<(), SilozError> {
        // Header contents.
        let mut hdr = [0u8; 16];
        hdr[0..4].copy_from_slice(&req.req_type.to_le_bytes());
        hdr[8..16].copy_from_slice(&req.sector.to_le_bytes());
        hv.guest_write(vm, req.hdr_gpa, &hdr)?;
        // Chain: head -> head+1 -> head+2.
        write_desc(
            hv,
            vm,
            q,
            req.head,
            Descriptor {
                addr: req.hdr_gpa,
                len: 16,
                flags: VIRTQ_DESC_F_NEXT,
                next: req.head + 1,
            },
        )?;
        let data_flags = if req.req_type == super::VIRTIO_BLK_T_IN {
            VIRTQ_DESC_F_NEXT | VIRTQ_DESC_F_WRITE
        } else {
            VIRTQ_DESC_F_NEXT
        };
        write_desc(
            hv,
            vm,
            q,
            req.head + 1,
            Descriptor {
                addr: req.data_gpa,
                len: req.data_len,
                flags: data_flags,
                next: req.head + 2,
            },
        )?;
        write_desc(
            hv,
            vm,
            q,
            req.head + 2,
            Descriptor {
                addr: req.status_gpa,
                len: 1,
                flags: VIRTQ_DESC_F_WRITE,
                next: 0,
            },
        )?;
        // Publish on the avail ring.
        let avail_idx_gpa = q.avail_gpa + 2;
        let (b, _) = hv.guest_read(vm, avail_idx_gpa, 2)?;
        let avail_idx = u16::from_le_bytes([b[0], b[1]]);
        let slot = avail_idx % q.queue_size;
        hv.guest_write(
            vm,
            q.avail_gpa + 4 + slot as u64 * 2,
            &req.head.to_le_bytes(),
        )?;
        hv.guest_write(vm, avail_idx_gpa, &avail_idx.wrapping_add(1).to_le_bytes())?;
        Ok(())
    }

    /// Reads the used-ring index (how many requests the device completed).
    pub fn used_idx(hv: &mut Hypervisor, vm: VmHandle, q: &VirtQueue) -> Result<u16, SilozError> {
        let (b, _) = hv.guest_read(vm, q.used_gpa + 2, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilozConfig;
    use crate::hypervisor::HypervisorKind;
    use crate::vm::VmSpec;

    fn setup() -> (Hypervisor, VmHandle, VirtQueue) {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let vm = hv.create_vm(VmSpec::new("guest", 1, 96 << 20)).unwrap();
        let q = VirtQueue::at(0x10_0000, 8);
        // Zero the rings.
        hv.guest_write(vm, q.avail_gpa, &[0u8; 4]).unwrap();
        hv.guest_write(vm, q.used_gpa, &[0u8; 4]).unwrap();
        (hv, vm, q)
    }

    #[test]
    fn write_then_read_roundtrips_through_the_disk() {
        let (mut hv, vm, q) = setup();
        let mut blk = VirtioBlk::new(q, 128);
        // Guest writes a sector.
        hv.guest_write(vm, 0x20_0000, b"sector payload 42!")
            .unwrap();
        driver::submit_request(
            &mut hv,
            vm,
            &q,
            &driver::BlkRequest {
                head: 0,
                req_type: VIRTIO_BLK_T_OUT,
                sector: 7,
                hdr_gpa: 0x21_0000,
                data_gpa: 0x20_0000,
                data_len: 18,
                status_gpa: 0x22_0000,
            },
        )
        .unwrap();
        assert_eq!(blk.process_queue(&mut hv, vm).unwrap(), 1);
        assert_eq!(driver::used_idx(&mut hv, vm, &q).unwrap(), 1);
        let (status, _) = hv.guest_read(vm, 0x22_0000, 1).unwrap();
        assert_eq!(status[0], VIRTIO_BLK_S_OK);

        // Guest reads it back into a different buffer.
        driver::submit_request(
            &mut hv,
            vm,
            &q,
            &driver::BlkRequest {
                head: 3,
                req_type: VIRTIO_BLK_T_IN,
                sector: 7,
                hdr_gpa: 0x21_0000,
                data_gpa: 0x30_0000,
                data_len: 18,
                status_gpa: 0x22_0000,
            },
        )
        .unwrap();
        assert_eq!(blk.process_queue(&mut hv, vm).unwrap(), 1);
        let (data, intact) = hv.guest_read(vm, 0x30_0000, 18).unwrap();
        assert!(intact);
        assert_eq!(&data, b"sector payload 42!");
        assert_eq!(blk.stats.ok, 2);
        assert_eq!(blk.stats.bytes, 36);
    }

    #[test]
    fn out_of_range_sector_fails_with_ioerr() {
        let (mut hv, vm, q) = setup();
        let mut blk = VirtioBlk::new(q, 4);
        driver::submit_request(
            &mut hv,
            vm,
            &q,
            &driver::BlkRequest {
                head: 0,
                req_type: VIRTIO_BLK_T_OUT,
                sector: 100,
                hdr_gpa: 0x21_0000,
                data_gpa: 0x20_0000,
                data_len: 512,
                status_gpa: 0x22_0000,
            },
        )
        .unwrap();
        blk.process_queue(&mut hv, vm).unwrap();
        let (status, _) = hv.guest_read(vm, 0x22_0000, 1).unwrap();
        assert_eq!(status[0], VIRTIO_BLK_S_IOERR);
        assert_eq!(blk.stats.errors, 1);
    }

    #[test]
    fn rate_limiter_defers_and_recovers() {
        let (mut hv, vm, q) = setup();
        // 1 KiB/s: the second 512 B request must be throttled until time
        // passes.
        let mut blk = VirtioBlk::new(q, 128).with_limiter(DmaRateLimiter::new(1024));
        hv.guest_write(vm, 0x20_0000, &[7u8; 512]).unwrap();
        for i in 0..2u16 {
            driver::submit_request(
                &mut hv,
                vm,
                &q,
                &driver::BlkRequest {
                    head: i * 3,
                    req_type: VIRTIO_BLK_T_OUT,
                    sector: i as u64,
                    hdr_gpa: 0x21_0000 + i as u64 * 32,
                    data_gpa: 0x20_0000,
                    data_len: 512,
                    status_gpa: 0x22_0000 + i as u64,
                },
            )
            .unwrap();
        }
        // Initial burst admits ~10 B/s... the first 512 B only once tokens
        // accumulate; advance simulated time to fill the bucket.
        hv.dram_mut().advance_ns(600_000_000); // 0.6 s -> ~614 tokens
        assert_eq!(blk.process_queue(&mut hv, vm).unwrap(), 1);
        assert_eq!(blk.stats.throttled, 1, "second request deferred");
        // After another simulated second, the deferred request completes.
        hv.dram_mut().advance_ns(1_000_000_000);
        assert_eq!(blk.process_queue(&mut hv, vm).unwrap(), 1);
        assert_eq!(blk.stats.ok, 2);
    }

    #[test]
    fn queue_memory_is_guest_ram_inside_the_vm_groups() {
        // §5.1: virtio queue pages are guest-visible RAM — unmediated for
        // the guest, so they live in the VM's subarray groups.
        let (mut hv, vm, q) = setup();
        let groups = hv.vm_groups(vm).unwrap();
        for gpa in [q.desc_gpa, q.avail_gpa, q.used_gpa] {
            let t = hv.translate(vm, gpa).unwrap();
            let g = hv.groups().group_of_phys(t.hpa).unwrap();
            assert!(groups.contains(&g));
        }
    }

    #[test]
    fn malformed_chains_are_rejected() {
        let (mut hv, vm, q) = setup();
        let mut blk = VirtioBlk::new(q, 16);
        // Header descriptor without NEXT.
        driver::write_desc(
            &mut hv,
            vm,
            &q,
            0,
            Descriptor {
                addr: 0x21_0000,
                len: 16,
                flags: 0,
                next: 0,
            },
        )
        .unwrap();
        let (b, _) = hv.guest_read(vm, q.avail_gpa + 2, 2).unwrap();
        let idx = u16::from_le_bytes([b[0], b[1]]);
        hv.guest_write(vm, q.avail_gpa + 4, &0u16.to_le_bytes())
            .unwrap();
        hv.guest_write(vm, q.avail_gpa + 2, &idx.wrapping_add(1).to_le_bytes())
            .unwrap();
        assert!(blk.process_queue(&mut hv, vm).is_err());
    }
}
