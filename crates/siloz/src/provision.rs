//! Provisioning subarray groups as logical NUMA nodes (§5.2, §5.3).
//!
//! After computing subarray group address ranges, Siloz augments NUMA
//! topology parsing to (a) provision a logical node for each subarray group
//! and (b) record each logical node's physical node (socket), preserving
//! physical NUMA semantics. Host-reserved nodes keep the socket's cores;
//! guest-reserved nodes are memory-only. Guard rows and
//! isolation-violating pages are offlined here, extending the kernel's
//! faulty-page offlining.

use crate::artificial::inter_subarray_repair_frames;
use crate::config::{EptProtection, SilozConfig};
use crate::ept_guard::EptGuardPlan;
use crate::group::{GroupId, SubarrayGroupMap};
use crate::SilozError;
use dram_addr::{RepairMap, SystemAddressDecoder};
use numa::{NodeId, NodeInfo, Topology};
use std::collections::HashMap;

/// The boot-time product: a topology with one logical node per subarray
/// group, plus all the maps Siloz needs at runtime.
pub struct ProvisionedTopology {
    /// The NUMA topology (host-reserved + guest-reserved logical nodes).
    pub topo: Topology,
    /// The subarray group map the nodes were derived from.
    pub groups: SubarrayGroupMap,
    /// Host-reserved node per socket (indexed by socket).
    pub host_nodes: Vec<NodeId>,
    /// All guest-reserved (memory-only) nodes.
    pub guest_nodes: Vec<NodeId>,
    /// Logical node backing each subarray group.
    pub node_of_group: HashMap<GroupId, NodeId>,
    /// Subarray groups backing each node (host nodes own several).
    pub groups_of_node: HashMap<NodeId, Vec<GroupId>>,
    /// EPT guard placement, when guard-row protection is configured.
    pub ept_plan: Option<EptGuardPlan>,
    /// Frames offlined at boot (guard rows + isolation hazards).
    pub offlined_frames: u64,
}

impl ProvisionedTopology {
    /// Runs the full boot-time provisioning (§5.3).
    pub fn provision(
        config: &SilozConfig,
        decoder: &SystemAddressDecoder,
        repairs: &RepairMap,
    ) -> Result<Self, SilozError> {
        let geometry = decoder.geometry();
        if config.host_groups_per_socket == 0
            || config.host_groups_per_socket >= config.groups_per_socket()
        {
            return Err(SilozError::BadConfig(format!(
                "host groups per socket {} must be in [1, {})",
                config.host_groups_per_socket,
                config.groups_per_socket()
            )));
        }
        let groups = SubarrayGroupMap::compute(decoder, config.presumed_subarray_rows)?;

        // EPT guard placement: at the start of each socket's first
        // (host-reserved) subarray group.
        let ept_plan = match config.ept_protection {
            EptProtection::GuardRows { b, o } => {
                Some(EptGuardPlan::compute(decoder, b, o, |_socket| 0)?)
            }
            _ => None,
        };

        // Pages violating isolation due to inter-subarray repairs (§6).
        let repair_holes = inter_subarray_repair_frames(decoder, repairs)?;

        let mut topo = Topology::new();
        let mut host_nodes = Vec::new();
        let mut guest_nodes = Vec::new();
        let mut node_of_group = HashMap::new();
        let mut groups_of_node: HashMap<NodeId, Vec<GroupId>> = HashMap::new();
        let mut offlined = 0u64;

        for socket in 0..geometry.sockets {
            let cpus: Vec<u32> = (0..config.cores_per_socket)
                .map(|c| socket as u32 * config.cores_per_socket + c)
                .collect();
            let socket_groups: Vec<GroupId> =
                groups.groups_on_socket(socket).map(|g| g.id).collect();
            let (host_groups, guest_groups) =
                socket_groups.split_at(config.host_groups_per_socket as usize);

            // Host-reserved node: the socket's cores + the host groups'
            // frames, minus EPT frames (reserved for GFP_EPT) and guard
            // frames (offlined).
            let mut host_ranges = Vec::new();
            for gid in host_groups {
                host_ranges.extend(groups.group(*gid).expect("group exists").frames.clone());
            }
            let mut holes: Vec<u64> = Vec::new();
            if let Some(plan) = &ept_plan {
                let sp = plan.socket(socket).expect("plan covers socket");
                holes.extend(sp.guard_frames.iter().copied());
                holes.extend(sp.ept_frames.clone());
            }
            holes.extend(
                repair_holes
                    .iter()
                    .copied()
                    .filter(|f| host_ranges.iter().any(|r| f >= &r.start && f < &r.end)),
            );
            holes.sort_unstable();
            holes.dedup();
            offlined += holes.len() as u64;
            let host_id = topo.add_node(
                NodeInfo {
                    id: NodeId(0),
                    socket,
                    is_logical: true,
                    cpus,
                    frame_ranges: host_ranges,
                },
                &holes,
            );
            host_nodes.push(host_id);
            for gid in host_groups {
                node_of_group.insert(*gid, host_id);
                groups_of_node.entry(host_id).or_default().push(*gid);
            }

            // Guest-reserved nodes: one memory-only node per group.
            for gid in guest_groups {
                let info = groups.group(*gid).expect("group exists");
                let holes: Vec<u64> = repair_holes
                    .iter()
                    .copied()
                    .filter(|f| info.contains_frame(*f))
                    .collect();
                offlined += holes.len() as u64;
                let node_id = topo.add_node(
                    NodeInfo {
                        id: NodeId(0),
                        socket,
                        is_logical: true,
                        cpus: Vec::new(),
                        frame_ranges: info.frames.clone(),
                    },
                    &holes,
                );
                guest_nodes.push(node_id);
                node_of_group.insert(*gid, node_id);
                groups_of_node.entry(node_id).or_default().push(*gid);
            }
        }

        Ok(Self {
            topo,
            groups,
            host_nodes,
            guest_nodes,
            node_of_group,
            groups_of_node,
            ept_plan,
            offlined_frames: offlined,
        })
    }

    /// Guest-reserved nodes on `socket`, ascending.
    pub fn guest_nodes_on_socket(&self, socket: u16) -> Vec<NodeId> {
        self.guest_nodes
            .iter()
            .copied()
            .filter(|&n| self.topo.node(n).map(|i| i.socket) == Ok(socket))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilozConfig;
    use dram_addr::decoder::SystemAddressDecoder;

    fn provision_mini() -> ProvisionedTopology {
        let config = SilozConfig::mini();
        let decoder = SystemAddressDecoder::new(config.geometry, config.decoder).unwrap();
        ProvisionedTopology::provision(&config, &decoder, &RepairMap::new()).unwrap()
    }

    #[test]
    fn one_logical_node_per_group() {
        let p = provision_mini();
        // Mini: 8 groups -> 1 host node + 7 guest nodes.
        assert_eq!(p.topo.len(), 8);
        assert_eq!(p.host_nodes.len(), 1);
        assert_eq!(p.guest_nodes.len(), 7);
        assert_eq!(p.node_of_group.len(), 8);
    }

    #[test]
    fn guest_nodes_are_memory_only_host_has_cpus() {
        // §5.2: guest-reserved nodes are memory-only; host-reserved nodes
        // keep the socket's cores.
        let p = provision_mini();
        for &n in &p.guest_nodes {
            assert!(p.topo.node(n).unwrap().is_memory_only());
            assert!(p.topo.node(n).unwrap().is_logical);
        }
        for &n in &p.host_nodes {
            assert!(!p.topo.node(n).unwrap().is_memory_only());
        }
    }

    #[test]
    fn logical_nodes_record_their_physical_node() {
        let config = SilozConfig::evaluation();
        let decoder = SystemAddressDecoder::new(config.geometry, config.decoder).unwrap();
        let p = ProvisionedTopology::provision(&config, &decoder, &RepairMap::new()).unwrap();
        assert_eq!(p.topo.len(), 256, "128 groups x 2 sockets");
        assert_eq!(p.guest_nodes_on_socket(0).len(), 127);
        assert_eq!(p.guest_nodes_on_socket(1).len(), 127);
        for info in p.topo.nodes() {
            // Every frame of the node must physically live on its socket.
            let f = info.frame_ranges[0].start;
            let (socket, _) = decoder.row_group_of(f * 4096).unwrap();
            assert_eq!(socket, info.socket);
        }
    }

    #[test]
    fn guard_and_ept_frames_are_excluded_from_host_node() {
        let p = provision_mini();
        let plan = p.ept_plan.as_ref().unwrap();
        let sp = plan.socket(0).unwrap();
        let host = p.host_nodes[0];
        // Guard frames are offlined; EPT frames reserved: free count drops
        // by both.
        let info = p.topo.node(host).unwrap();
        let total = info.total_frames();
        let reserved = sp.guard_frames.len() as u64 + (sp.ept_frames.end - sp.ept_frames.start);
        assert_eq!(p.topo.free_frames(host).unwrap(), total - reserved);
        assert!(p.offlined_frames >= reserved);
    }

    #[test]
    fn guest_node_capacity_is_group_capacity() {
        let p = provision_mini();
        let group_frames = SilozConfig::mini().subarray_group_bytes() / 4096;
        for &n in &p.guest_nodes {
            assert_eq!(p.topo.free_frames(n).unwrap(), group_frames);
        }
    }

    #[test]
    fn inter_subarray_repairs_offline_pages_in_guest_nodes() {
        let config = SilozConfig::mini();
        let decoder = SystemAddressDecoder::new(config.geometry, config.decoder).unwrap();
        let mut repairs = RepairMap::new();
        // Repair a row in guest territory (row 600, bank 0) across
        // subarrays (mini geometry: 256-row subarrays).
        repairs.insert(dram_addr::BankId(0), 600, 100);
        let p = ProvisionedTopology::provision(&config, &decoder, &repairs).unwrap();
        let clean = provision_mini();
        let total_free: u64 = p
            .topo
            .nodes()
            .map(|i| p.topo.free_frames(i.id).unwrap())
            .sum();
        let clean_free: u64 = clean
            .topo
            .nodes()
            .map(|i| clean.topo.free_frames(i.id).unwrap())
            .sum();
        assert!(total_free < clean_free, "repair holes reduce capacity");
    }

    #[test]
    fn bad_host_group_counts_rejected() {
        let mut config = SilozConfig::mini();
        let decoder = SystemAddressDecoder::new(config.geometry, config.decoder).unwrap();
        config.host_groups_per_socket = 0;
        assert!(ProvisionedTopology::provision(&config, &decoder, &RepairMap::new()).is_err());
        config.host_groups_per_socket = 8; // all groups: nothing for guests
        assert!(ProvisionedTopology::provision(&config, &decoder, &RepairMap::new()).is_err());
    }
}
