//! Caching subarray-group ranges across boots (§5.3).
//!
//! Physical-to-media mappings are fixed by BIOS settings, so the group
//! address ranges computed during early boot "can be cached across boots in
//! a bootloader or firmware". This module provides that cache: a compact,
//! self-validating text format binding the ranges to the exact geometry,
//! decoder configuration, and presumed subarray size they were computed
//! for — a cache from a different BIOS configuration is rejected rather
//! than silently trusted.

use crate::group::{GroupId, GroupInfo, SubarrayGroupMap};
use crate::SilozError;
use dram_addr::SystemAddressDecoder;
use std::fmt::Write as _;

/// Magic/version header of the cache format.
const HEADER: &str = "siloz-group-cache v1";

/// A fingerprint binding a cache to its boot configuration.
fn fingerprint(decoder: &SystemAddressDecoder, presumed_rows: u32) -> u64 {
    let g = decoder.geometry();
    let c = decoder.config();
    let fields = [
        g.sockets as u64,
        g.channels_per_socket as u64,
        g.dimms_per_channel as u64,
        g.ranks_per_dimm as u64,
        g.bank_groups as u64,
        g.banks_per_group as u64,
        g.rows_per_bank as u64,
        g.row_bytes,
        g.rows_per_subarray as u64,
        c.row_groups_per_block as u64,
        c.jump_bytes,
        match c.bank_hash {
            dram_addr::BankHash::None => 0,
            dram_addr::BankHash::XorRow => 1,
        },
        presumed_rows as u64,
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in fields {
        h ^= f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serializes a computed group map into the cache format.
#[must_use]
pub fn to_cache(map: &SubarrayGroupMap) -> String {
    let mut out = String::new();
    let fp = fingerprint(map.decoder(), map.presumed_rows());
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "fingerprint {fp:#018x}");
    let _ = writeln!(out, "presumed-rows {}", map.presumed_rows());
    let _ = writeln!(out, "groups {}", map.groups().len());
    for g in map.groups() {
        let _ = write!(
            out,
            "group {} socket {} rows {} {} frames",
            g.id.0, g.socket, g.rows.start, g.rows.end
        );
        for r in &g.frames {
            let _ = write!(out, " {}..{}", r.start, r.end);
        }
        let _ = writeln!(out);
    }
    out
}

/// Parses and validates a cache against the current boot configuration.
///
/// Returns the reconstructed map, or an error if the cache is malformed or
/// was produced under different BIOS settings / boot parameters.
pub fn from_cache(
    cache: &str,
    decoder: &SystemAddressDecoder,
    presumed_rows: u32,
) -> Result<SubarrayGroupMap, SilozError> {
    let mut lines = cache.lines();
    let bad = |what: &str| SilozError::BadConfig(format!("group cache: {what}"));
    if lines.next() != Some(HEADER) {
        return Err(bad("missing header"));
    }
    let fp_line = lines.next().ok_or_else(|| bad("missing fingerprint"))?;
    let fp_hex = fp_line
        .strip_prefix("fingerprint 0x")
        .ok_or_else(|| bad("malformed fingerprint"))?;
    let fp = u64::from_str_radix(fp_hex, 16).map_err(|_| bad("unparseable fingerprint"))?;
    if fp != fingerprint(decoder, presumed_rows) {
        return Err(bad(
            "fingerprint mismatch: BIOS settings or boot parameters changed; recompute",
        ));
    }
    let rows_line = lines.next().ok_or_else(|| bad("missing presumed-rows"))?;
    let rows: u32 = rows_line
        .strip_prefix("presumed-rows ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("malformed presumed-rows"))?;
    if rows != presumed_rows {
        return Err(bad("presumed-rows mismatch"));
    }
    let count_line = lines.next().ok_or_else(|| bad("missing group count"))?;
    let count: usize = count_line
        .strip_prefix("groups ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("malformed group count"))?;
    let mut groups = Vec::with_capacity(count);
    for line in lines {
        let mut w = line.split_whitespace();
        let kw = |t: Option<&str>, want: &str| -> Result<(), SilozError> {
            if t == Some(want) {
                Ok(())
            } else {
                Err(bad(&format!("expected '{want}'")))
            }
        };
        kw(w.next(), "group")?;
        let id: u32 = w
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("group id"))?;
        kw(w.next(), "socket")?;
        let socket: u16 = w
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("socket"))?;
        kw(w.next(), "rows")?;
        let rs: u32 = w
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("rows start"))?;
        let re: u32 = w
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("rows end"))?;
        kw(w.next(), "frames")?;
        let mut frames = Vec::new();
        for token in w {
            let (a, b) = token.split_once("..").ok_or_else(|| bad("frame range"))?;
            let a: u64 = a.parse().map_err(|_| bad("frame start"))?;
            let b: u64 = b.parse().map_err(|_| bad("frame end"))?;
            frames.push(a..b);
        }
        groups.push(GroupInfo {
            id: GroupId(id),
            socket,
            rows: rs..re,
            frames,
        });
    }
    if groups.len() != count {
        return Err(bad("group count mismatch"));
    }
    SubarrayGroupMap::from_parts(decoder.clone(), presumed_rows, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_addr::{mini_decoder, skylake_decoder};

    #[test]
    fn cache_roundtrips_exactly() {
        let dec = mini_decoder();
        let map = SubarrayGroupMap::compute(&dec, 256).unwrap();
        let cache = to_cache(&map);
        let restored = from_cache(&cache, &dec, 256).unwrap();
        assert_eq!(map.groups(), restored.groups());
        assert_eq!(
            map.group_of_phys(12345678).unwrap(),
            restored.group_of_phys(12345678).unwrap()
        );
    }

    #[test]
    fn evaluation_scale_cache_roundtrips() {
        let dec = skylake_decoder();
        let map = SubarrayGroupMap::compute(&dec, 1024).unwrap();
        let cache = to_cache(&map);
        assert!(
            cache.len() < 64 << 10,
            "cache stays compact: {}",
            cache.len()
        );
        let restored = from_cache(&cache, &dec, 1024).unwrap();
        assert_eq!(map.groups().len(), restored.groups().len());
    }

    #[test]
    fn changed_bios_settings_invalidate_the_cache() {
        let dec = mini_decoder();
        let map = SubarrayGroupMap::compute(&dec, 256).unwrap();
        let cache = to_cache(&map);
        // Different presumed size: rejected.
        assert!(from_cache(&cache, &dec, 512).is_err());
        // Different decoder config (bank hash off): rejected.
        let cfg = dram_addr::decoder::DecoderConfig {
            bank_hash: dram_addr::BankHash::None,
            ..*dec.config()
        };
        let other = SystemAddressDecoder::new(*dec.geometry(), cfg).unwrap();
        assert!(from_cache(&cache, &other, 256).is_err());
    }

    #[test]
    fn malformed_caches_are_rejected() {
        let dec = mini_decoder();
        assert!(from_cache("", &dec, 256).is_err());
        assert!(from_cache("garbage header\n", &dec, 256).is_err());
        let map = SubarrayGroupMap::compute(&dec, 256).unwrap();
        let mut cache = to_cache(&map);
        cache.push_str("group NOTANUMBER socket 0 rows 0 1 frames 0..1\n");
        assert!(from_cache(&cache, &dec, 256).is_err());
        // Truncated (count mismatch).
        let cache = to_cache(&map);
        let truncated: Vec<&str> = cache.lines().take(6).collect();
        assert!(from_cache(&truncated.join("\n"), &dec, 256).is_err());
    }

    #[test]
    fn tampered_extents_fail_integrity_checks() {
        // from_parts re-validates coverage; a tampered range is caught.
        let dec = mini_decoder();
        let map = SubarrayGroupMap::compute(&dec, 256).unwrap();
        let cache = to_cache(&map).replace("rows 0 256", "rows 0 255");
        assert!(from_cache(&cache, &dec, 256).is_err());
    }
}
