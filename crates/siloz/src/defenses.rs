//! Competing software Rowhammer defenses (§3, §8.3), for comparison.
//!
//! Three families the paper analyzes:
//!
//! - **Guard-row schemes** (ZebRAM-like): reserve guard rows between normal
//!   rows. Protecting arbitrary data costs ≥50% of DRAM at 1 guard per
//!   normal row, rising to 80% at the 4 guards modern DIMMs require — versus
//!   Siloz's ≈0.024%/bank reservation for EPTs only.
//! - **Software refresh** (SoftTRR-like, §8.3): periodically refresh
//!   protected rows from software. Needs hard ≤1 ms periods, which generic
//!   Linux scheduling cannot guarantee: the paper observed gaps beyond 32 ms.
//! - **Copy-on-Flip**: react to ECC-corrected errors by migrating the
//!   attacked (movable) pages; leaves unmovable pages unprotected and leaks
//!   through corrected-error side channels.

use crate::hypervisor::Hypervisor;
use crate::vm::VmHandle;
use crate::SilozError;
use rand::Rng;

/// DRAM overhead of a guard-row scheme protecting arbitrary data with
/// `guards` guard rows per normal row (§3).
#[must_use]
pub fn guard_row_overhead(guards: u32) -> f64 {
    guards as f64 / (guards as f64 + 1.0)
}

/// Guard-row cost of protecting a region of `protect_rows` rows, in total
/// reserved rows.
#[must_use]
pub fn guard_rows_needed(protect_rows: u64, guards: u32) -> u64 {
    protect_rows * guards as u64
}

/// Report of a simulated software-refresh run (§8.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftRefreshReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Minimum achieved period, milliseconds.
    pub min_period_ms: f64,
    /// Maximum achieved period, milliseconds.
    pub max_period_ms: f64,
    /// Mean achieved period, milliseconds.
    pub mean_period_ms: f64,
    /// Periods exceeding the 1 ms protection deadline.
    pub missed_deadlines: u64,
    /// Periods exceeding 32 ms (over 32 times a safe period, §8.3).
    pub gross_misses: u64,
}

impl SoftRefreshReport {
    /// Whether the run left protected rows exposed at any point.
    #[must_use]
    pub fn left_rows_vulnerable(&self) -> bool {
        self.missed_deadlines > 0
    }
}

/// Scheduling environment for the software-refresh daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerModel {
    /// Scheduler timeslice granularity in ms: a woken task waits at least
    /// this long between runs (Linux: ≥1 ms; §8.3: "we observed a minimum
    /// of 1 ms between software refreshes").
    pub min_period_ms: f64,
    /// Probability a tick is delayed by preemption/softirq pressure.
    pub preempt_prob: f64,
    /// Maximum preemption delay, ms.
    pub preempt_max_ms: f64,
    /// Probability a tick is dropped/delayed with interrupts disabled or
    /// the tick stopped on an idle core (§8.3), causing a long gap.
    pub tick_drop_prob: f64,
    /// Maximum long-gap length, ms.
    pub tick_drop_max_ms: f64,
}

impl Default for SchedulerModel {
    /// A generic production configuration (no real-time patches).
    fn default() -> Self {
        Self {
            min_period_ms: 1.0,
            preempt_prob: 0.02,
            preempt_max_ms: 4.0,
            tick_drop_prob: 0.0005,
            tick_drop_max_ms: 40.0,
        }
    }
}

/// Simulates a SoftTRR-style refresh daemon targeting a 1 ms period for
/// `ticks` iterations under `model` (§8.3).
pub fn simulate_soft_refresh<R: Rng>(
    model: &SchedulerModel,
    ticks: u64,
    rng: &mut R,
) -> SoftRefreshReport {
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut sum = 0.0;
    let mut missed = 0u64;
    let mut gross = 0u64;
    for _ in 0..ticks {
        let mut period = model.min_period_ms * (1.0 + rng.gen_range(0.0..0.05));
        if rng.gen_bool(model.preempt_prob) {
            period += rng.gen_range(0.0..model.preempt_max_ms);
        }
        if rng.gen_bool(model.tick_drop_prob) {
            period += rng.gen_range(model.tick_drop_max_ms / 2.0..model.tick_drop_max_ms);
        }
        min = min.min(period);
        max = max.max(period);
        sum += period;
        if period > 1.0 {
            missed += 1;
        }
        if period > 32.0 {
            gross += 1;
        }
    }
    SoftRefreshReport {
        ticks,
        min_period_ms: min,
        max_period_ms: max,
        mean_period_ms: sum / ticks.max(1) as f64,
        missed_deadlines: missed,
        gross_misses: gross,
    }
}

/// Result of a Copy-on-Flip response pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CopyOnFlipReport {
    /// Corrected-error locations observed by the scrub.
    pub corrected_errors: usize,
    /// VM blocks migrated away from attacked rows.
    pub migrated_blocks: usize,
    /// Corrected errors in unmovable (non-VM) memory: Copy-on-Flip cannot
    /// protect these (§3).
    pub unmovable_hits: usize,
}

/// Runs one Copy-on-Flip response cycle for `vm`: patrol-scrubs the DRAM,
/// then migrates every VM backing block containing a corrected error.
///
/// Mirrors the §3 defense: it reacts only *after* ECC already corrected a
/// disturbance (which itself is a side channel), and cannot move unmovable
/// pages.
pub fn copy_on_flip_respond(
    hv: &mut Hypervisor,
    vm: VmHandle,
    max_migrations: usize,
) -> Result<CopyOnFlipReport, SilozError> {
    let scrub = hv.dram_mut().scrub();
    let mut report = CopyOnFlipReport {
        corrected_errors: scrub.corrected.len(),
        ..CopyOnFlipReport::default()
    };
    let backing = hv.vm_unmediated_backing(vm)?;
    let decoder = hv.decoder().clone();
    // Sorted for O(log n) dedup below — a scrub pass over a wide blast
    // radius revisits the same blocks once per corrected line, and the
    // former `contains` scan made the loop quadratic in migrated blocks.
    let mut migrated_gpas: Vec<u64> = Vec::new();
    for (bank, row, _byte) in &scrub.corrected {
        // Which frames have lines in the corrected (bank, row)?
        let frames = crate::artificial::frames_touching_bank_row(&decoder, *bank, *row)?;
        let mut hit_vm = false;
        for frame in frames {
            let phys = frame * 4096;
            if let Some(block) = backing
                .iter()
                .find(|b| phys >= b.hpa() && phys < b.hpa() + b.bytes())
            {
                hit_vm = true;
                let gpa = block.gpa;
                if let Err(slot) = migrated_gpas.binary_search(&gpa) {
                    if report.migrated_blocks < max_migrations {
                        hv.migrate_block(vm, gpa)?;
                        migrated_gpas.insert(slot, gpa);
                        report.migrated_blocks += 1;
                    }
                }
            }
        }
        if !hit_vm {
            report.unmovable_hits += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn guard_row_overheads_match_paper() {
        // §3: ZebRAM's 50% at 1:1 rises to 80% at 4 guards per normal row.
        assert!((guard_row_overhead(1) - 0.5).abs() < 1e-12);
        assert!((guard_row_overhead(4) - 0.8).abs() < 1e-12);
        assert_eq!(guard_rows_needed(1000, 4), 4000);
    }

    #[test]
    fn soft_refresh_misses_deadlines_under_generic_scheduling() {
        // §8.3: scheduling a 1 ms software refresh on a generic kernel does
        // not consistently meet deadlines; gaps can exceed 32 ms.
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let report = simulate_soft_refresh(&SchedulerModel::default(), 100_000, &mut rng);
        assert!(
            report.min_period_ms >= 1.0,
            "Linux enforces >= 1 ms periods"
        );
        assert!(report.missed_deadlines > 0);
        assert!(report.gross_misses > 0, "some gaps exceed 32 ms");
        assert!(report.max_period_ms > 32.0);
        assert!(report.left_rows_vulnerable());
    }

    #[test]
    fn ideal_real_time_scheduler_would_be_safe_but_is_unavailable() {
        // With zero jitter the scheme works — the paper's point is that
        // generic production kernels cannot provide this.
        let ideal = SchedulerModel {
            min_period_ms: 0.9,
            preempt_prob: 0.0,
            preempt_max_ms: 0.0,
            tick_drop_prob: 0.0,
            tick_drop_max_ms: 0.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let report = simulate_soft_refresh(&ideal, 10_000, &mut rng);
        assert_eq!(report.missed_deadlines, 0);
        assert!(!report.left_rows_vulnerable());
    }

    #[test]
    fn soft_refresh_report_statistics_are_coherent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let report = simulate_soft_refresh(&SchedulerModel::default(), 5_000, &mut rng);
        assert!(report.min_period_ms <= report.mean_period_ms);
        assert!(report.mean_period_ms <= report.max_period_ms);
        assert_eq!(report.ticks, 5_000);
        assert!(report.gross_misses <= report.missed_deadlines);
    }
}
