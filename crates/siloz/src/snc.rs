//! Sub-NUMA clustering (SNC) support (§8.1).
//!
//! Subarray group sizes follow from the number of banks a page interleaves
//! across. Today's sub-NUMA clustering BIOS option splits each socket into
//! clusters whose pages interleave over only that cluster's channels —
//! halving (for SNC-2) the row-group size and therefore the subarray group
//! size, which lets providers provision VMs at finer granularity.
//!
//! We model SNC faithfully by its architectural effect: each cluster
//! behaves as an independent physical node with `1/ways` of the socket's
//! channels, cores, and address space. [`apply_snc`] rewrites a
//! [`SilozConfig`] accordingly; [`SncMap`] remembers which clusters share a
//! physical socket so placement policies can still reason about true
//! socket locality.

use crate::config::SilozConfig;
use crate::SilozError;

/// Mapping from SNC cluster index to the physical socket that hosts it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SncMap {
    /// SNC ways (clusters per socket); 1 = SNC off.
    pub ways: u16,
    /// Physical sockets before clustering.
    pub physical_sockets: u16,
}

impl SncMap {
    /// The physical socket hosting `cluster`.
    #[must_use]
    pub fn socket_of_cluster(&self, cluster: u16) -> u16 {
        cluster / self.ways
    }

    /// All clusters hosted by `socket`.
    #[must_use]
    pub fn clusters_of_socket(&self, socket: u16) -> Vec<u16> {
        (socket * self.ways..(socket + 1) * self.ways).collect()
    }

    /// Whether two clusters share a physical socket (same local DRAM
    /// latency class).
    #[must_use]
    pub fn same_socket(&self, a: u16, b: u16) -> bool {
        self.socket_of_cluster(a) == self.socket_of_cluster(b)
    }
}

/// Rewrites a configuration for `ways`-way sub-NUMA clustering.
///
/// Each cluster gets `channels / ways` channels and `cores / ways` cores;
/// geometry "sockets" become clusters. Subarray group sizes shrink by
/// `ways` (§8.1: "sub-NUMA clustering can reduce group sizes by 50%").
pub fn apply_snc(config: &SilozConfig, ways: u16) -> Result<(SilozConfig, SncMap), SilozError> {
    if ways == 0 {
        return Err(SilozError::BadConfig("SNC ways must be >= 1".into()));
    }
    if !config.geometry.channels_per_socket.is_multiple_of(ways) {
        return Err(SilozError::BadConfig(format!(
            "{} channels per socket not divisible by SNC-{ways}",
            config.geometry.channels_per_socket
        )));
    }
    if !config.cores_per_socket.is_multiple_of(ways as u32) {
        return Err(SilozError::BadConfig(format!(
            "{} cores per socket not divisible by SNC-{ways}",
            config.cores_per_socket
        )));
    }
    let mut clustered = config.clone();
    clustered.geometry.sockets = config.geometry.sockets * ways;
    clustered.geometry.channels_per_socket = config.geometry.channels_per_socket / ways;
    clustered.cores_per_socket = config.cores_per_socket / ways as u32;
    // The mapping jump must still tile the (smaller) cluster address space
    // and its blocks; shrink it proportionally.
    clustered.decoder.jump_bytes = config.decoder.jump_bytes / ways as u64;
    clustered
        .geometry
        .validate()
        .map_err(SilozError::BadConfig)?;
    let map = SncMap {
        ways,
        physical_sockets: config.geometry.sockets,
    };
    Ok((clustered, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervisor::{Hypervisor, HypervisorKind};
    use crate::vm::VmSpec;

    #[test]
    fn snc2_halves_group_sizes_on_the_evaluation_server() {
        let base = SilozConfig::evaluation();
        let (snc, map) = apply_snc(&base, 2).unwrap();
        assert_eq!(
            snc.subarray_group_bytes(),
            base.subarray_group_bytes() / 2,
            "SNC-2 halves the subarray group size (§8.1)"
        );
        assert_eq!(snc.geometry.sockets, 4, "2 sockets x 2 clusters");
        assert_eq!(snc.geometry.banks_per_socket(), 96);
        assert_eq!(map.socket_of_cluster(0), 0);
        assert_eq!(map.socket_of_cluster(1), 0);
        assert_eq!(map.socket_of_cluster(2), 1);
        assert!(map.same_socket(0, 1));
        assert!(!map.same_socket(1, 2));
        assert_eq!(map.clusters_of_socket(1), vec![2, 3]);
    }

    #[test]
    fn snc_machine_boots_and_provisions_finer_vms() {
        let (snc, _) = apply_snc(&SilozConfig::mini(), 2).unwrap();
        let group = snc.subarray_group_bytes();
        assert_eq!(group, SilozConfig::mini().subarray_group_bytes() / 2);
        let mut hv = Hypervisor::boot(snc, HypervisorKind::Siloz).unwrap();
        // A VM sized to one *clustered* group wastes nothing.
        let vm = hv.create_vm(VmSpec::new("micro", 1, group)).unwrap();
        assert_eq!(hv.vm_groups(vm).unwrap().len(), 1);
    }

    #[test]
    fn snc_rejects_indivisible_configs() {
        assert!(apply_snc(&SilozConfig::evaluation(), 0).is_err());
        assert!(
            apply_snc(&SilozConfig::evaluation(), 4).is_err(),
            "6 channels / 4"
        );
        // SNC-3 divides 6 channels but the jump must stay block-aligned.
        let r = apply_snc(&SilozConfig::evaluation(), 3);
        if let Ok((cfg, _)) = r {
            // If accepted, the decoder must still construct.
            assert!(dram_addr::SystemAddressDecoder::new(cfg.geometry, cfg.decoder).is_ok());
        }
    }

    #[test]
    fn snc_preserves_containment_boundaries() {
        // Groups under SNC still partition rows exactly.
        let (snc, _) = apply_snc(&SilozConfig::mini(), 2).unwrap();
        let decoder = dram_addr::SystemAddressDecoder::new(snc.geometry, snc.decoder).unwrap();
        let map =
            crate::group::SubarrayGroupMap::compute(&decoder, snc.presumed_subarray_rows).unwrap();
        let total: u64 = map.groups().iter().map(|gr| gr.bytes()).sum();
        assert_eq!(total, decoder.capacity());
    }
}
