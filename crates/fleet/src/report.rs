//! Fleet run reports and their JSON artifact (`FLEET_{label}.json`).

use analysis::report::Json;
use std::io::Write;
use std::path::PathBuf;

/// End-of-run summary of one fleet scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Placement strategy name (`first_fit` / `best_fit` /
    /// `socket_affine`).
    pub strategy: &'static str,
    /// Deployed mitigation backend name (`none` / `siloz` / `blockhammer`
    /// / `breakhammer`).
    pub mitigation: &'static str,
    /// Scenario master seed.
    pub seed: u64,
    /// Events dispatched (trace + dynamic departures/re-admissions).
    pub events_processed: u64,
    /// Tenant arrivals.
    pub arrivals: u64,
    /// Admissions on first try.
    pub admitted: u64,
    /// Admissions after deferral.
    pub deferred_admits: u64,
    /// Capacity rejections.
    pub rejections: u64,
    /// Deferred requests abandoned on queue overflow.
    pub abandoned: u64,
    /// VMs destroyed.
    pub departures: u64,
    /// Successful growth bursts.
    pub expansions: u64,
    /// Growth bursts denied for capacity.
    pub expand_denials: u64,
    /// Workload slices executed.
    pub slices: u64,
    /// Attack campaigns launched.
    pub attacks: u64,
    /// Flips induced by attacks.
    pub attack_flips: u64,
    /// Flips escaping the aggressor's domain (0 under Siloz).
    pub attack_escapes: u64,
    /// Blocks migrated by defragmentation.
    pub defrag_migrations: u64,
    /// Blocks migrated by Copy-on-Flip responses.
    pub cof_migrated: u64,
    /// Events whose tenant was never admitted or already gone.
    pub orphan_events: u64,
    /// Peak simultaneously-live VMs.
    pub peak_live: u64,
    /// VMs still live when the trace drained.
    pub final_live: u64,
    /// Guest subarray groups on the host.
    pub groups_total: u64,
    /// Groups claimed at the end of the run.
    pub groups_claimed: u64,
    /// Final group-pool fragmentation (percent).
    pub fragmentation_pct: u64,
    /// Arrivals vetoed by the mitigation backend before placement.
    pub admission_vetoes: u64,
    /// Incremental boundary checks performed.
    pub incremental_checks: u64,
    /// Incremental checks served by the clean-tenant fast path.
    pub incremental_fast_checks: u64,
    /// Full isolation proofs performed.
    pub full_proofs: u64,
    /// Isolation violations (0 under Siloz).
    pub violations_total: u64,
    /// First few violation messages.
    pub violation_samples: Vec<String>,
}

impl FleetReport {
    /// Whether the run upheld the isolation invariant throughout.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations_total == 0 && self.attack_escapes == 0
    }

    /// Attack flips that stayed inside the aggressors' own domains — the
    /// arena's containment quantity.
    #[must_use]
    pub fn attack_flips_contained(&self) -> u64 {
        self.attack_flips.saturating_sub(self.attack_escapes)
    }

    /// This report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("strategy", Json::Str(self.strategy.to_string())),
            ("mitigation", Json::Str(self.mitigation.to_string())),
            ("seed", Json::Num(self.seed.into())),
            ("events_processed", Json::Num(self.events_processed.into())),
            ("arrivals", Json::Num(self.arrivals.into())),
            ("admitted", Json::Num(self.admitted.into())),
            ("deferred_admits", Json::Num(self.deferred_admits.into())),
            ("rejections", Json::Num(self.rejections.into())),
            ("abandoned", Json::Num(self.abandoned.into())),
            ("departures", Json::Num(self.departures.into())),
            ("expansions", Json::Num(self.expansions.into())),
            ("expand_denials", Json::Num(self.expand_denials.into())),
            ("slices", Json::Num(self.slices.into())),
            ("attacks", Json::Num(self.attacks.into())),
            ("attack_flips", Json::Num(self.attack_flips.into())),
            ("attack_escapes", Json::Num(self.attack_escapes.into())),
            (
                "attack_flips_contained",
                Json::Num(self.attack_flips_contained().into()),
            ),
            (
                "defrag_migrations",
                Json::Num(self.defrag_migrations.into()),
            ),
            ("cof_migrated", Json::Num(self.cof_migrated.into())),
            ("orphan_events", Json::Num(self.orphan_events.into())),
            ("peak_live", Json::Num(self.peak_live.into())),
            ("final_live", Json::Num(self.final_live.into())),
            ("groups_total", Json::Num(self.groups_total.into())),
            ("groups_claimed", Json::Num(self.groups_claimed.into())),
            (
                "fragmentation_pct",
                Json::Num(self.fragmentation_pct.into()),
            ),
            ("admission_vetoes", Json::Num(self.admission_vetoes.into())),
            (
                "incremental_checks",
                Json::Num(self.incremental_checks.into()),
            ),
            (
                "incremental_fast_checks",
                Json::Num(self.incremental_fast_checks.into()),
            ),
            ("full_proofs", Json::Num(self.full_proofs.into())),
            ("violations_total", Json::Num(self.violations_total.into())),
            (
                "violation_samples",
                Json::Arr(
                    self.violation_samples
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("clean", Json::Bool(self.clean())),
        ])
    }
}

/// Writes `FLEET_{label}.json` holding every report (one object per run)
/// plus a schema version, honouring `SILOZ_TELEMETRY_DIR` like the
/// telemetry writer. Returns the path written.
pub fn write_reports(label: &str, reports: &[FleetReport]) -> std::io::Result<PathBuf> {
    let doc = Json::obj(vec![
        ("fleet_schema", Json::Num(1u32.into())),
        ("label", Json::Str(label.to_string())),
        (
            "runs",
            Json::Arr(reports.iter().map(FleetReport::to_json).collect()),
        ),
    ]);
    let dir = std::env::var_os("SILOZ_TELEMETRY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("FLEET_{label}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(doc.render().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetReport {
        FleetReport {
            strategy: "first_fit",
            mitigation: "siloz",
            seed: 1,
            events_processed: 10,
            arrivals: 3,
            admitted: 2,
            deferred_admits: 1,
            rejections: 1,
            abandoned: 0,
            departures: 3,
            expansions: 1,
            expand_denials: 0,
            slices: 2,
            attacks: 1,
            attack_flips: 5,
            attack_escapes: 0,
            defrag_migrations: 2,
            cof_migrated: 1,
            orphan_events: 0,
            peak_live: 2,
            final_live: 0,
            groups_total: 7,
            groups_claimed: 0,
            fragmentation_pct: 0,
            admission_vetoes: 0,
            incremental_checks: 9,
            incremental_fast_checks: 4,
            full_proofs: 1,
            violations_total: 0,
            violation_samples: Vec::new(),
        }
    }

    #[test]
    fn report_json_roundtrips_key_fields() {
        let rendered = sample().to_json().render();
        assert!(rendered.contains("\"strategy\": \"first_fit\""));
        assert!(rendered.contains("\"attack_escapes\": 0"));
        assert!(rendered.contains("\"clean\": true"));
    }

    #[test]
    fn escapes_make_a_report_dirty() {
        let mut r = sample();
        r.attack_escapes = 1;
        assert!(!r.clean());
    }

    #[test]
    fn write_reports_emits_the_artifact() {
        let dir = std::env::temp_dir().join("fleet_report_test");
        std::env::set_var("SILOZ_TELEMETRY_DIR", &dir);
        let path = write_reports("unittest", &[sample()]).unwrap();
        std::env::remove_var("SILOZ_TELEMETRY_DIR");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(path.ends_with("FLEET_unittest.json"));
        assert!(body.contains("\"fleet_schema\": 1"));
        assert!(body.contains("\"runs\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
