//! The discrete-event fleet engine.
//!
//! [`FleetSim`] drains an [`EventQueue`] against a live [`Hypervisor`],
//! maintaining the central §4.1 invariant — *no two live VMs share a
//! subarray group* — at **every** event boundary. In
//! [`CheckMode::Incremental`] the engine keeps a dense group→tenant
//! ownership map and re-checks only what an event touched (with periodic
//! full proofs); in [`CheckMode::FullProof`] it re-proves the whole host
//! after each event via [`analysis::isolation::verify_live_placements`];
//! [`CheckMode::Off`] skips checking entirely (the perfsuite's perf floor
//! for measuring check cost differentially — never a correctness gate).

use crate::events::{CheckMode, Event, EventKind, Scenario};
use crate::policy::{AdmissionControl, PendingVm};
use crate::queue::EventQueue;
use crate::report::FleetReport;
use analysis::isolation::verify_live_placements;
use dram::{DimmProfile, DramSystemBuilder};
use dram_addr::RepairMap;
use hammer::FuzzConfig;
use memctrl::{CompiledTrace, MemoryController};
use mitigation::DomainPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use siloz::{GroupId, Hypervisor, HypervisorKind, SilozError, VmHandle};
use sim::GuestLedger;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Max violation messages retained verbatim (the total is always counted).
const VIOLATION_SAMPLES: usize = 16;

/// A live tenant's runtime state.
#[derive(Debug, Clone, Copy)]
struct LiveVm {
    handle: VmHandle,
    vcpus: u32,
    /// Rotation cursor for defragmentation sweeps.
    defrag_cursor: u32,
}

/// Counters accumulated over a run.
#[derive(Debug, Default, Clone)]
pub struct FleetStats {
    /// Events dequeued and dispatched.
    pub events_processed: u64,
    /// Tenant arrival events.
    pub arrivals: u64,
    /// VMs destroyed.
    pub departures: u64,
    /// Successful growth bursts.
    pub expansions: u64,
    /// Growth bursts denied for capacity.
    pub expand_denials: u64,
    /// Workload slices executed.
    pub slices: u64,
    /// Total memory operations across slices.
    pub slice_ops: u64,
    /// Tenant ledgers compiled (config-independent; reused across respawns).
    pub ledger_compiles: u64,
    /// Ledger→backing binds (re-done only when a tenant's backing changes).
    pub program_binds: u64,
    /// Attack campaigns launched.
    pub attacks: u64,
    /// Flips induced by attacks (anywhere).
    pub attack_flips: u64,
    /// Flips that escaped the aggressor's domain (must stay 0 under Siloz).
    pub attack_escapes: u64,
    /// Defragmentation sweeps run.
    pub defrag_sweeps: u64,
    /// Blocks migrated by defragmentation.
    pub defrag_migrations: u64,
    /// Defrag migrations skipped because the node had no spare block.
    pub defrag_oom: u64,
    /// Copy-on-Flip response passes run.
    pub cof_runs: u64,
    /// Blocks migrated by Copy-on-Flip.
    pub cof_migrated: u64,
    /// Corrected errors observed by Copy-on-Flip scrubs.
    pub cof_corrected: u64,
    /// Copy-on-Flip passes aborted because migration found no spare block.
    pub cof_oom: u64,
    /// Events targeting tenants that were never admitted or already left.
    pub orphan_events: u64,
    /// Peak simultaneously-live VMs.
    pub peak_live: u64,
    /// Arrivals vetoed outright by the mitigation backend.
    pub admission_vetoes: u64,
    /// Incremental boundary checks performed.
    pub incremental_checks: u64,
    /// Incremental checks satisfied from the clean-tenant fast path (pure
    /// ownership-map lookups, no hypervisor re-derivation).
    pub incremental_fast_checks: u64,
    /// Full isolation proofs performed.
    pub full_proofs: u64,
    /// Isolation violations detected (must stay 0 under Siloz).
    pub violations_total: u64,
    /// Wall-clock nanoseconds spent inside isolation checks and proofs.
    /// Volatile (scheduling-dependent): exported as a volatile counter,
    /// never part of [`FleetReport`] — the perfsuite reads it to compare
    /// checking modes without the event-loop floor drowning the signal.
    pub check_wall_ns: u64,
    /// First few violation messages, verbatim.
    pub violation_samples: Vec<String>,
}

/// The simulator: a hypervisor, a memory controller, an event queue, and
/// the admission controller, advanced one event at a time.
pub struct FleetSim {
    scenario: Scenario,
    hv: Hypervisor,
    ctrl: MemoryController,
    queue: EventQueue,
    admission: AdmissionControl,
    live: BTreeMap<u32, LiveVm>,
    /// Persistent interval map of group→tenant claims, indexed by
    /// `GroupId.0`: O(1) point lookup, O(touched) tenant release,
    /// O(1) claim census for the full proof.
    claims: numa::ClaimMap,
    /// Per-tenant cached group claims, refreshed whenever the slow
    /// incremental check re-derives them from the hypervisor.
    group_cache: BTreeMap<u32, Vec<GroupId>>,
    /// Tenants whose backing may have changed since their cache entry was
    /// refreshed; a dirty tenant always takes the slow check path.
    dirty: BTreeSet<u32>,
    /// The deployed defense's controller-side state (rivals only; `None`
    /// for the `none` and `siloz` backends, whose fast path stays intact).
    defense: Option<Box<dyn mitigation::Mitigation>>,
    /// Compiled per-tenant load-generator ledgers, keyed by
    /// `(tenant, ops, threads)`. Backing-independent: entries survive the
    /// tenant's departure and are reused verbatim if it is readmitted —
    /// or, when a shared [`sim::TraceCache`] is installed, if the tenant
    /// re-materializes on a *different* host of the same cluster.
    ledgers: BTreeMap<(u32, u32, u16), Arc<GuestLedger>>,
    /// Ledgers bound to the owning tenant's *current* backing, same key.
    /// Invalidated whenever an event moves the tenant's memory.
    programs: BTreeMap<(u32, u32, u16), CompiledTrace>,
    /// Optional cluster-wide ledger memoization: when set, ledger lookups
    /// go through the shared [`sim::TraceCache`] first, so a tenant
    /// migrated across hosts re-binds its existing compiled trace instead
    /// of regenerating it.
    cache: Option<Arc<sim::TraceCache>>,
    stats: FleetStats,
    events_since_proof: u32,
}

impl FleetSim {
    /// Boots the host described by the scenario and loads its
    /// pre-generated trace. The DRAM is built vulnerable (evaluation DIMM
    /// profiles, deployed TRR) so injected attacks actually flip bits.
    ///
    /// The scenario's [`mitigation::Backend`] decides the hypervisor kind:
    /// `Siloz` boots with isolation domains (and the engine proves the
    /// §4.1 invariant at every boundary); every other backend boots the
    /// shared baseline, so flips may escape and the per-backend report
    /// records how many its controller hook contained.
    pub fn new(scenario: Scenario) -> Result<Self, SilozError> {
        let dram = DramSystemBuilder::new(scenario.config.geometry)
            .internal_map(scenario.config.internal_map)
            .profiles(DimmProfile::evaluation_dimms())
            .trr(4, 2)
            .build();
        let kind = match scenario.mitigation.domain_policy() {
            DomainPolicy::IsolationDomains => HypervisorKind::Siloz,
            DomainPolicy::Shared => HypervisorKind::Baseline,
        };
        let defense = scenario.mitigation.controller_hook();
        let mut hv = Hypervisor::boot_with(scenario.config.clone(), kind, dram, RepairMap::new())?;
        hv.set_placement_strategy(scenario.strategy);
        let ctrl = MemoryController::new(hv.decoder().clone()).without_physics();
        let (events, next_seq) = crate::events::generate_trace(&scenario);
        let queue = EventQueue::new(events, next_seq);
        let admission = AdmissionControl::new(scenario.defer_cap);
        let claims = numa::ClaimMap::new(hv.groups().groups().len());
        Ok(Self {
            scenario,
            hv,
            ctrl,
            queue,
            admission,
            live: BTreeMap::new(),
            claims,
            group_cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            defense,
            ledgers: BTreeMap::new(),
            programs: BTreeMap::new(),
            cache: None,
            stats: FleetStats::default(),
            events_since_proof: 0,
        })
    }

    /// The hypervisor under simulation.
    #[must_use]
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Stats so far.
    #[must_use]
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The admission controller's accounting.
    #[must_use]
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Live VM count.
    #[must_use]
    pub fn live_vms(&self) -> usize {
        self.live.len()
    }

    /// Injects one dynamic event (used by property tests to drive
    /// arbitrary traces through the engine).
    pub fn inject(&mut self, at: u64, tenant: u32, kind: EventKind) {
        self.queue.push(at, tenant, kind);
    }

    /// Replaces the live defense state (tests and experiments that need a
    /// custom [`mitigation::Mitigation`], e.g. an admission-vetoing one).
    pub fn set_defense(&mut self, defense: Box<dyn mitigation::Mitigation>) {
        self.defense = Some(defense);
    }

    /// Whether the isolation prover applies: only the Siloz backend makes
    /// the §4.1 claim. The prover stays Siloz-only-aware — on a shared
    /// baseline there is no group-exclusivity invariant to check, and
    /// escaped flips are a measured outcome, not a violation.
    fn proves_isolation(&self) -> bool {
        self.scenario.check != CheckMode::Off
            && self.scenario.mitigation.domain_policy() == DomainPolicy::IsolationDomains
    }

    fn violation(&mut self, msg: String) {
        self.stats.violations_total += 1;
        if self.stats.violation_samples.len() < VIOLATION_SAMPLES {
            self.stats.violation_samples.push(msg);
        }
    }

    /// Incremental boundary check for one tenant: its claimed groups must
    /// be exclusively its own in the ownership map (`allow_claims` lets an
    /// admission/expansion record new claims), and both endpoints of every
    /// unmediated backing block must decode into one of those groups.
    ///
    /// A tenant whose backing has not changed since its last slow check
    /// (not in the dirty set) is verified from its cached claim list with
    /// pure ownership-map lookups — no hypervisor re-derivation. Events
    /// that move memory mark the tenant dirty (via
    /// [`FleetSim::invalidate_programs`]), forcing the slow path, which
    /// re-derives the claims and refreshes the cache.
    fn check_tenant(&mut self, tenant: u32, allow_claims: bool) -> Result<(), SilozError> {
        if !self.proves_isolation() {
            return Ok(());
        }
        let t = std::time::Instant::now();
        let out = self.check_tenant_inner(tenant, allow_claims);
        self.stats.check_wall_ns += t.elapsed().as_nanos() as u64;
        out
    }

    fn check_tenant_inner(&mut self, tenant: u32, allow_claims: bool) -> Result<(), SilozError> {
        let Some(vm) = self.live.get(&tenant).copied() else {
            return Ok(());
        };
        self.stats.incremental_checks += 1;
        if !allow_claims && !self.dirty.contains(&tenant) {
            if let Some(cached) = self.group_cache.remove(&tenant) {
                self.stats.incremental_fast_checks += 1;
                for gid in &cached {
                    match self.claims.owner_of(gid.0) {
                        Some(owner) if owner == tenant => {}
                        other => self.violation(format!(
                            "cached group {} of tenant {tenant} is owned by {other:?}",
                            gid.0
                        )),
                    }
                }
                self.group_cache.insert(tenant, cached);
                return Ok(());
            }
        }
        let groups = self.hv.vm_groups(vm.handle)?;
        let mut pending = Vec::new();
        for gid in &groups {
            match self.claims.owner_of(gid.0) {
                None if allow_claims => pending.push(gid.0),
                None => self.violation(format!(
                    "tenant {tenant} holds unclaimed group {} after a non-claiming event",
                    gid.0
                )),
                Some(owner) if owner == tenant => {}
                Some(owner) => self.violation(format!(
                    "group {} owned by tenant {owner} but claimed by tenant {tenant}",
                    gid.0
                )),
            }
        }
        for g in pending {
            self.claims.claim(tenant, g);
        }
        let blocks = self.hv.vm_unmediated_backing(vm.handle)?;
        for block in &blocks {
            for phys in [block.hpa(), block.hpa() + block.bytes() - 1] {
                match self.hv.groups().group_of_phys(phys) {
                    Ok(g) if groups.contains(&g) => {}
                    got => self.violation(format!(
                        "tenant {tenant} block at {phys:#x} resolves to {got:?}, outside its groups"
                    )),
                }
            }
        }
        self.group_cache.insert(tenant, groups);
        self.dirty.remove(&tenant);
        Ok(())
    }

    /// Full proof: re-derives every live VM's claims and backing from the
    /// hypervisor and cross-checks the incremental ownership map against
    /// it.
    fn full_proof(&mut self) {
        if !self.proves_isolation() {
            return;
        }
        let t = std::time::Instant::now();
        self.stats.full_proofs += 1;
        let proof = verify_live_placements(&self.hv);
        for v in proof.violations {
            self.violation(format!("full proof: {v}"));
        }
        let mapped = self.claims.claimed_total();
        if mapped != proof.group_claims {
            self.violation(format!(
                "ownership map tracks {mapped} claims but the hypervisor proves {}",
                proof.group_claims
            ));
        }
        self.stats.check_wall_ns += t.elapsed().as_nanos() as u64;
    }

    fn admit(&mut self, now: u64, vm: PendingVm) -> Result<(), SilozError> {
        if let Some(d) = self.defense.as_deref_mut() {
            if !d.admit(vm.tenant, vm.mem_bytes) {
                self.stats.admission_vetoes += 1;
                self.admission.rejections += 1;
                return Ok(());
            }
        }
        if let Some(handle) = self.admission.admit_or_defer(&mut self.hv, vm)? {
            self.live.insert(
                vm.tenant,
                LiveVm {
                    handle,
                    vcpus: vm.vcpus,
                    defrag_cursor: 0,
                },
            );
            self.queue
                .push(now + vm.lifetime, vm.tenant, EventKind::Depart);
            self.stats.peak_live = self.stats.peak_live.max(self.live.len() as u64);
            self.invalidate_programs(vm.tenant);
            self.check_tenant(vm.tenant, true)?;
        }
        Ok(())
    }

    /// Tears down every trace the incremental checker keeps for a departed
    /// tenant: its ownership-map claims, its cached claim list, and its
    /// dirty-set entry. Shared by internal departures and
    /// [`FleetSim::depart_external`], so externally-driven migration
    /// departures leave the incremental state exactly as internal ones do.
    fn release_tenant_tracking(&mut self, tenant: u32) {
        self.invalidate_programs(tenant);
        self.group_cache.remove(&tenant);
        self.dirty.remove(&tenant);
        self.claims.release_tenant(tenant);
    }

    fn depart(&mut self, now: u64, tenant: u32) -> Result<(), SilozError> {
        let Some(vm) = self.live.remove(&tenant) else {
            self.stats.orphan_events += 1;
            return Ok(());
        };
        self.hv.destroy_vm(vm.handle)?;
        self.stats.departures += 1;
        self.release_tenant_tracking(tenant);
        // Freed capacity: retry the deferred queue in arrival order.
        let readmitted = self.admission.retry_deferred(&mut self.hv)?;
        for (pending, handle) in readmitted {
            self.live.insert(
                pending.tenant,
                LiveVm {
                    handle,
                    vcpus: pending.vcpus,
                    defrag_cursor: 0,
                },
            );
            self.queue
                .push(now + pending.lifetime, pending.tenant, EventKind::Depart);
            self.stats.peak_live = self.stats.peak_live.max(self.live.len() as u64);
            self.invalidate_programs(pending.tenant);
            self.check_tenant(pending.tenant, true)?;
        }
        Ok(())
    }

    fn expand(&mut self, tenant: u32, extra_bytes: u64) -> Result<(), SilozError> {
        let Some(vm) = self.live.get(&tenant).copied() else {
            self.stats.orphan_events += 1;
            return Ok(());
        };
        match self.hv.expand_vm(vm.handle, extra_bytes) {
            Ok(()) => {
                self.stats.expansions += 1;
                self.invalidate_programs(tenant);
                self.check_tenant(tenant, true)?;
            }
            // `Numa(_)` is the baseline allocator's capacity error.
            Err(SilozError::InsufficientCapacity { .. } | SilozError::Numa(_)) => {
                self.stats.expand_denials += 1;
                self.check_tenant(tenant, false)?;
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Drops a tenant's bound replay programs and marks it dirty for the
    /// incremental checker. Called whenever an event changes the tenant's
    /// backing (admission, departure, expansion, defrag or Copy-on-Flip
    /// migration); the next slice re-binds the cached ledger against the
    /// new backing, and the next boundary check re-derives the tenant's
    /// claims from the hypervisor. Ledgers themselves are
    /// backing-independent and never invalidated.
    fn invalidate_programs(&mut self, tenant: u32) {
        self.programs.retain(|k, _| k.0 != tenant);
        self.dirty.insert(tenant);
    }

    /// Replays one load-generator slice for `tenant`. The tenant's guest
    /// trace is a fixed draw — seeded by `(scenario seed, tenant)` — so it
    /// compiles to a [`GuestLedger`] exactly once and each slice replays
    /// the pre-bound program through the controller; only a backing change
    /// forces a re-bind.
    fn slice(&mut self, tenant: u32, ops: u32) -> Result<(), SilozError> {
        let Some(vm) = self.live.get(&tenant).copied() else {
            self.stats.orphan_events += 1;
            return Ok(());
        };
        let threads = vm.vcpus.clamp(1, 4) as u16;
        let key = (tenant, ops, threads);
        if !self.ledgers.contains_key(&key) {
            let working_set = self.scenario.slice_working_set;
            let seed = self.scenario.seed ^ (u64::from(tenant) << 17);
            let mut workload = workloads::fleet_tenant_workload(tenant, working_set);
            let name = workload.name();
            let mut build = || {
                let mut rng = StdRng::seed_from_u64(seed);
                Arc::new(GuestLedger::generate(
                    workload.as_mut(),
                    ops as usize,
                    threads,
                    &mut rng,
                ))
            };
            // When two hosts of one cluster race to compile the same
            // migrated tenant's ledger inside a barrier epoch, only the
            // host whose build won the cache insert counts the compile:
            // the cluster-wide total stays 1 for any worker count.
            let ledger = match &self.cache {
                Some(cache) => {
                    let mut mine: Option<Arc<GuestLedger>> = None;
                    let got =
                        cache.guest_ledger(&name, working_set, ops as usize, threads, seed, || {
                            let built = build();
                            mine = Some(built.clone());
                            built
                        });
                    if mine.as_ref().is_some_and(|m| Arc::ptr_eq(m, &got)) {
                        self.stats.ledger_compiles += 1;
                    }
                    got
                }
                None => {
                    self.stats.ledger_compiles += 1;
                    build()
                }
            };
            self.ledgers.insert(key, ledger);
        }
        if !self.programs.contains_key(&key) {
            let thread_base = ((u64::from(tenant) * 16) % 65536) as u16;
            let program = sim::vm_compiled(&self.hv, vm.handle, &self.ledgers[&key], thread_base)?;
            self.programs.insert(key, program);
            self.stats.program_binds += 1;
        }
        let _ = self
            .ctrl
            .run_compiled(self.hv.dram_mut(), &self.programs[&key]);
        self.ctrl.sync_dram_time(self.hv.dram_mut());
        self.stats.slices += 1;
        self.stats.slice_ops += u64::from(ops);
        self.check_tenant(tenant, false)?;
        Ok(())
    }

    fn attack(&mut self, tenant: u32, ev: &Event) -> Result<(), SilozError> {
        let Some(vm) = self.live.get(&tenant).copied() else {
            self.stats.orphan_events += 1;
            return Ok(());
        };
        let mut rng = StdRng::seed_from_u64(
            self.scenario.seed ^ 0xa77a_c000 ^ (u64::from(tenant) << 20) ^ ev.seq,
        );
        let mut campaign = FuzzConfig::fleet_campaign();
        campaign.extra_open_ns = self.scenario.attack_open_ns;
        let report = match self.defense.as_deref_mut() {
            Some(d) => hammer::hammer_vm_defended(
                &mut self.hv,
                vm.handle,
                1,
                campaign,
                &mut rng,
                d,
                (tenant % u64::from(u16::MAX) as u32) as u16,
            )?,
            None => hammer::hammer_vm(&mut self.hv, vm.handle, 1, campaign, &mut rng)?,
        };
        self.stats.attacks += 1;
        self.stats.attack_flips += report.flips_total as u64;
        self.stats.attack_escapes += report.escapes.len() as u64;
        if self.proves_isolation() && !report.escapes.is_empty() {
            self.violation(format!(
                "attack by tenant {tenant} escaped its domain: {} flips outside",
                report.escapes.len()
            ));
        }
        if self.scenario.copy_on_flip {
            // The host's §3-style response: one colocated victim (the
            // lowest live tenant id that is not the aggressor) runs a
            // Copy-on-Flip pass over the scrub results.
            let victim = self
                .live
                .iter()
                .find(|(&t, _)| t != tenant)
                .map(|(&t, v)| (t, v.handle));
            if let Some((vt, vh)) = victim {
                let max = self.scenario.cof_max_migrations;
                match siloz::defenses::copy_on_flip_respond(&mut self.hv, vh, max) {
                    Ok(r) => {
                        self.stats.cof_runs += 1;
                        self.stats.cof_migrated += r.migrated_blocks as u64;
                        self.stats.cof_corrected += r.corrected_errors as u64;
                        if r.migrated_blocks > 0 {
                            self.invalidate_programs(vt);
                        }
                        self.check_tenant(vt, false)?;
                    }
                    // A fully-packed node has no spare block to copy into;
                    // the defense simply cannot act (§3's availability
                    // caveat).
                    Err(SilozError::Numa(_)) => self.stats.cof_oom += 1,
                    Err(e) => return Err(e),
                }
            }
        }
        self.check_tenant(tenant, false)?;
        Ok(())
    }

    fn defrag(&mut self) -> Result<(), SilozError> {
        self.stats.defrag_sweeps += 1;
        let mut budget = self.scenario.defrag_per_sweep;
        let tenants: Vec<u32> = self.live.keys().copied().collect();
        for tenant in tenants {
            if budget == 0 {
                break;
            }
            let Some(vm) = self.live.get(&tenant).copied() else {
                continue;
            };
            let blocks = self.hv.vm_unmediated_backing(vm.handle)?;
            if blocks.is_empty() {
                continue;
            }
            let idx = vm.defrag_cursor as usize % blocks.len();
            let gpa = blocks[idx].gpa;
            match self.hv.migrate_block(vm.handle, gpa) {
                Ok(()) => {
                    self.stats.defrag_migrations += 1;
                    self.invalidate_programs(tenant);
                    budget -= 1;
                }
                // The VM exactly fills its groups: nothing to compact.
                Err(SilozError::Numa(_)) => self.stats.defrag_oom += 1,
                Err(e) => return Err(e),
            }
            if let Some(vm) = self.live.get_mut(&tenant) {
                vm.defrag_cursor = vm.defrag_cursor.wrapping_add(1);
            }
            self.check_tenant(tenant, false)?;
        }
        Ok(())
    }

    /// Dispatches one event and re-establishes the isolation invariant at
    /// its boundary. Returns `false` once the queue is drained.
    pub fn step(&mut self) -> Result<bool, SilozError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(false);
        };
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::Arrive {
                mem_bytes,
                vcpus,
                lifetime,
            } => {
                self.stats.arrivals += 1;
                self.admit(
                    ev.at,
                    PendingVm {
                        tenant: ev.tenant,
                        mem_bytes,
                        vcpus,
                        lifetime,
                    },
                )?;
            }
            EventKind::Depart => self.depart(ev.at, ev.tenant)?,
            EventKind::Expand { extra_bytes } => self.expand(ev.tenant, extra_bytes)?,
            EventKind::Slice { ops } => self.slice(ev.tenant, ops)?,
            EventKind::Attack => self.attack(ev.tenant, &ev)?,
            EventKind::Defrag => self.defrag()?,
        }
        match self.scenario.check {
            CheckMode::Off => {}
            CheckMode::FullProof => self.full_proof(),
            CheckMode::Incremental => {
                self.events_since_proof += 1;
                if self.events_since_proof >= self.scenario.proof_period {
                    self.events_since_proof = 0;
                    self.full_proof();
                }
            }
        }
        Ok(true)
    }

    // ---- External-driver hooks -------------------------------------
    //
    // A cluster-level scheduler (`crates/cluster`) owns sandbox lifecycles
    // across many hosts: it steps each host's queue up to a barrier
    // horizon and drives admissions/departures directly, without the
    // engine's own deferral queue or auto-scheduled departures. The hooks
    // below keep the incremental §4.1 prover's state — ownership map,
    // claim cache, dirty set — exactly as the internal event paths do, so
    // a cross-host migration (external depart + external admit) stays on
    // the incremental checking path on both hosts.

    /// Installs a shared cross-host trace cache. Subsequent slices look up
    /// their [`GuestLedger`] there before compiling, so a tenant migrated
    /// from another host (same cluster seed) reuses its compiled trace.
    pub fn set_trace_cache(&mut self, cache: Arc<sim::TraceCache>) {
        self.cache = Some(cache);
    }

    /// Whether `tenant` currently holds a live VM on this host.
    #[must_use]
    pub fn is_live(&self, tenant: u32) -> bool {
        self.live.contains_key(&tenant)
    }

    /// Tenants currently live on this host, ascending. A cluster-level
    /// driver cross-checks this against its own placement records at
    /// every sync barrier.
    #[must_use]
    pub fn live_tenants(&self) -> Vec<u32> {
        self.live.keys().copied().collect()
    }

    /// Events still queued on this host.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Admits a VM on behalf of an external scheduler. Unlike the internal
    /// [`EventKind::Arrive`] path this never defers (the cluster scheduler
    /// owns retry policy) and never schedules an internal departure (the
    /// cluster queue owns the sandbox lifecycle). The mitigation backend's
    /// admission veto and the incremental boundary check run exactly as
    /// for an internal arrival. Returns `None` on a veto or capacity
    /// rejection; non-capacity errors propagate.
    pub fn admit_external(&mut self, vm: PendingVm) -> Result<Option<VmHandle>, SilozError> {
        if let Some(d) = self.defense.as_deref_mut() {
            if !d.admit(vm.tenant, vm.mem_bytes) {
                self.stats.admission_vetoes += 1;
                self.admission.rejections += 1;
                return Ok(None);
            }
        }
        let Some(handle) = self.admission.admit_now(&mut self.hv, vm)? else {
            return Ok(None);
        };
        self.live.insert(
            vm.tenant,
            LiveVm {
                handle,
                vcpus: vm.vcpus,
                defrag_cursor: 0,
            },
        );
        self.stats.peak_live = self.stats.peak_live.max(self.live.len() as u64);
        self.invalidate_programs(vm.tenant);
        self.check_tenant(vm.tenant, true)?;
        Ok(Some(handle))
    }

    /// Departs a tenant on behalf of an external scheduler: destroys the
    /// VM and releases every incremental-checker trace of it, exactly like
    /// an internal departure, but without retrying this host's deferred
    /// queue (the cluster scheduler owns placement retries). Returns
    /// whether the tenant was live here.
    pub fn depart_external(&mut self, tenant: u32) -> Result<bool, SilozError> {
        let Some(vm) = self.live.remove(&tenant) else {
            self.stats.orphan_events += 1;
            return Ok(false);
        };
        self.hv.destroy_vm(vm.handle)?;
        self.stats.departures += 1;
        self.release_tenant_tracking(tenant);
        Ok(true)
    }

    /// Dispatches every queued event with `at <= horizon`, in `(at, seq)`
    /// order, and returns how many ran. The barrier primitive for an
    /// external driver: later events stay queued untouched.
    pub fn step_until(&mut self, horizon: u64) -> Result<u64, SilozError> {
        let mut ran = 0u64;
        while self.queue.peek().is_some_and(|e| e.at <= horizon) {
            if !self.step()? {
                break;
            }
            ran += 1;
        }
        Ok(ran)
    }

    /// Runs one full isolation proof right now (a no-op under
    /// [`CheckMode::Off`] or a shared baseline). External drivers call
    /// this at cluster-wide sync points on every touched host.
    pub fn full_proof_now(&mut self) {
        self.full_proof();
    }

    /// Drains the queue, then runs a final full proof and builds the
    /// report.
    pub fn run_to_completion(&mut self) -> Result<FleetReport, SilozError> {
        while self.step()? {}
        self.full_proof();
        Ok(self.report())
    }

    /// Snapshots the run into a [`FleetReport`].
    #[must_use]
    pub fn report(&self) -> FleetReport {
        let occ = self.hv.occupancy();
        FleetReport {
            strategy: self.scenario.strategy.name(),
            mitigation: self.scenario.mitigation.name(),
            seed: self.scenario.seed,
            events_processed: self.stats.events_processed,
            arrivals: self.stats.arrivals,
            admitted: self.admission.admitted,
            deferred_admits: self.admission.deferred_admits,
            rejections: self.admission.rejections,
            abandoned: self.admission.abandoned,
            departures: self.stats.departures,
            expansions: self.stats.expansions,
            expand_denials: self.stats.expand_denials,
            slices: self.stats.slices,
            attacks: self.stats.attacks,
            attack_flips: self.stats.attack_flips,
            attack_escapes: self.stats.attack_escapes,
            defrag_migrations: self.stats.defrag_migrations,
            cof_migrated: self.stats.cof_migrated,
            orphan_events: self.stats.orphan_events,
            peak_live: self.stats.peak_live,
            final_live: self.live.len() as u64,
            groups_total: occ.total(),
            groups_claimed: occ.claimed(),
            fragmentation_pct: occ.fragmentation_pct(),
            admission_vetoes: self.stats.admission_vetoes,
            incremental_checks: self.stats.incremental_checks,
            incremental_fast_checks: self.stats.incremental_fast_checks,
            full_proofs: self.stats.full_proofs,
            violations_total: self.stats.violations_total,
            violation_samples: self.stats.violation_samples.clone(),
        }
    }

    /// Exports run telemetry: `fleet` (engine counters), `hv`, `ctrl`, and
    /// `dram` children.
    pub fn export_telemetry(&self, reg: &telemetry::Registry) {
        let fleet = reg.child("fleet");
        fleet
            .counter("events_processed")
            .add(self.stats.events_processed);
        fleet.counter("arrivals").add(self.stats.arrivals);
        fleet.counter("admissions").add(self.admission.admitted);
        fleet
            .counter("admissions_deferred")
            .add(self.admission.deferred_admits);
        fleet.counter("rejections").add(self.admission.rejections);
        fleet.counter("abandoned").add(self.admission.abandoned);
        fleet.counter("departures").add(self.stats.departures);
        fleet.counter("expansions").add(self.stats.expansions);
        fleet
            .counter("expand_denials")
            .add(self.stats.expand_denials);
        fleet.counter("slices").add(self.stats.slices);
        fleet.counter("slice_ops").add(self.stats.slice_ops);
        fleet
            .counter("ledger_compiles")
            .add(self.stats.ledger_compiles);
        fleet.counter("program_binds").add(self.stats.program_binds);
        fleet.counter("attacks").add(self.stats.attacks);
        fleet.counter("attack_flips").add(self.stats.attack_flips);
        fleet
            .counter("attack_escapes")
            .add(self.stats.attack_escapes);
        fleet.counter("defrag_sweeps").add(self.stats.defrag_sweeps);
        fleet
            .counter("defrag_migrations")
            .add(self.stats.defrag_migrations);
        fleet.counter("defrag_oom").add(self.stats.defrag_oom);
        fleet.counter("cof_runs").add(self.stats.cof_runs);
        fleet.counter("cof_migrated").add(self.stats.cof_migrated);
        fleet.counter("cof_corrected").add(self.stats.cof_corrected);
        fleet.counter("cof_oom").add(self.stats.cof_oom);
        fleet.counter("orphan_events").add(self.stats.orphan_events);
        fleet
            .counter("admission_vetoes")
            .add(self.stats.admission_vetoes);
        fleet
            .counter("isolation_checks")
            .add(self.stats.incremental_checks);
        fleet
            .counter("isolation_checks_fast")
            .add(self.stats.incremental_fast_checks);
        fleet
            .counter("isolation_proofs")
            .add(self.stats.full_proofs);
        fleet
            .counter("isolation_violations")
            .add(self.stats.violations_total);
        fleet
            .counter_volatile("check_wall_ns")
            .add(self.stats.check_wall_ns);
        fleet.counter("claim_releases").add(self.claims.releases);
        fleet
            .counter("claim_released_groups")
            .add(self.claims.released_groups);
        fleet.gauge("live_vms").add(self.live.len() as i64);
        fleet
            .gauge("peak_live_vms")
            .add(self.stats.peak_live as i64);
        fleet
            .gauge("deferred_pending")
            .add(self.admission.deferred_len() as i64);
        self.hv.export_telemetry(&reg.child("hv"));
        self.ctrl.export_telemetry(&reg.child("ctrl"));
        self.hv.dram().export_telemetry(&reg.child("dram"));
        if let Some(d) = self.defense.as_deref() {
            d.export_telemetry(&reg.child("mitigation"));
        }
    }
}

/// Runs a scenario end to end and returns its report.
pub fn run_fleet(scenario: Scenario) -> Result<FleetReport, SilozError> {
    run_fleet_observed(scenario, &telemetry::Registry::new())
}

/// [`run_fleet`] that also exports run telemetry into `reg` (children:
/// `fleet`, `hv`, `ctrl`, `dram`).
pub fn run_fleet_observed(
    scenario: Scenario,
    reg: &telemetry::Registry,
) -> Result<FleetReport, SilozError> {
    let mut sim = FleetSim::new(scenario)?;
    let report = sim.run_to_completion()?;
    sim.export_telemetry(reg);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa::PlacementStrategy;

    fn tiny(strategy: PlacementStrategy) -> Scenario {
        let mut s = Scenario::quick(5, strategy);
        s.target_events = 120;
        s.attack_prob = 0.05;
        s
    }

    #[test]
    fn quick_fleet_run_is_clean_under_every_strategy() {
        for strategy in PlacementStrategy::ALL {
            let report = run_fleet(tiny(strategy)).unwrap();
            assert_eq!(report.violations_total, 0, "{report:?}");
            assert_eq!(report.attack_escapes, 0);
            assert!(report.events_processed >= 120);
            assert!(report.admitted > 0);
            assert!(report.full_proofs > 0);
            assert_eq!(report.strategy, strategy.name());
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = run_fleet(tiny(PlacementStrategy::BestFit)).unwrap();
        let b = run_fleet(tiny(PlacementStrategy::BestFit)).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn full_proof_mode_checks_every_event() {
        let mut s = tiny(PlacementStrategy::FirstFit);
        s.target_events = 40;
        s.check = CheckMode::FullProof;
        s.attack_prob = 0.0;
        let report = run_fleet(s).unwrap();
        // One proof per event plus the final one.
        assert_eq!(report.full_proofs, report.events_processed + 1);
        assert_eq!(report.violations_total, 0);
    }

    #[test]
    fn incremental_fast_path_kicks_in_without_changing_history() {
        // The dirty-set optimization must be invisible to everything except
        // checking cost: same admissions, same departures, same attack
        // outcomes as re-proving every event, with most incremental checks
        // served from the cache.
        let mut inc = tiny(PlacementStrategy::FirstFit);
        inc.target_events = 200;
        let mut full = inc.clone();
        full.check = CheckMode::FullProof;
        let a = run_fleet(inc).unwrap();
        let b = run_fleet(full).unwrap();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.attack_flips, b.attack_flips);
        assert_eq!(a.violations_total, 0);
        assert_eq!(b.violations_total, 0);
        assert!(
            a.incremental_fast_checks >= a.incremental_checks / 3,
            "a healthy share of boundary checks must hit the fast path: {} of {}",
            a.incremental_fast_checks,
            a.incremental_checks
        );
    }

    #[test]
    fn off_mode_skips_every_check_without_changing_history() {
        // The perf floor: checks never steer the simulation, so disabling
        // them must reproduce the exact event history with zero proofs.
        let mut on = tiny(PlacementStrategy::FirstFit);
        on.target_events = 200;
        let mut off = on.clone();
        off.check = CheckMode::Off;
        let a = run_fleet(on).unwrap();
        let b = run_fleet(off).unwrap();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.departures, b.departures);
        assert_eq!(a.attack_flips, b.attack_flips);
        assert_eq!(b.full_proofs, 0, "off mode must run no proofs");
        assert_eq!(b.incremental_checks, 0, "off mode must run no checks");
    }

    #[test]
    fn shared_backends_skip_the_isolation_prover() {
        let mut s = tiny(PlacementStrategy::FirstFit);
        s.target_events = 80;
        s.mitigation = mitigation::Backend::None;
        let report = run_fleet(s).unwrap();
        assert_eq!(report.mitigation, "none");
        assert_eq!(report.full_proofs, 0, "no §4.1 claim on the baseline");
        assert_eq!(report.incremental_checks, 0);
        assert_eq!(report.violations_total, 0);
        assert!(report.admitted > 0);
    }

    #[test]
    fn rival_backend_contains_flips_the_undefended_baseline_leaks() {
        let mk = |backend| {
            let mut s = tiny(PlacementStrategy::FirstFit);
            s.target_events = 160;
            s.attack_prob = 0.4;
            s.copy_on_flip = false;
            s.mitigation = backend;
            s
        };
        let undefended = run_fleet(mk(mitigation::Backend::None)).unwrap();
        assert!(undefended.attacks > 0, "scenario must inject campaigns");
        assert!(undefended.attack_flips > 0, "undefended attacks must flip");
        let defended = run_fleet(mk(mitigation::Backend::BlockHammer)).unwrap();
        assert_eq!(defended.mitigation, "blockhammer");
        assert_eq!(defended.attacks, undefended.attacks);
        assert!(
            defended.attack_flips < undefended.attack_flips,
            "BlockHammer must suppress flips: {} vs {}",
            defended.attack_flips,
            undefended.attack_flips
        );
    }

    #[test]
    fn defense_admission_veto_rejects_before_placement() {
        #[derive(Debug)]
        struct VetoAll;
        impl mitigation::Mitigation for VetoAll {
            fn name(&self) -> &'static str {
                "veto_all"
            }
            fn admit(&mut self, _tenant: u32, _mem_bytes: u64) -> bool {
                false
            }
            fn export_telemetry(&self, _reg: &telemetry::Registry) {}
        }
        let mut s = tiny(PlacementStrategy::FirstFit);
        s.target_events = 1;
        let mut sim = FleetSim::new(s).unwrap();
        sim.set_defense(Box::new(VetoAll));
        sim.inject(
            0,
            700,
            EventKind::Arrive {
                mem_bytes: 32 << 20,
                vcpus: 1,
                lifetime: 10,
            },
        );
        while sim.step().unwrap() {}
        let report = sim.report();
        assert!(report.admission_vetoes >= 1);
        assert!(report.rejections >= report.admission_vetoes);
        assert_eq!(sim.live_vms(), 0);
    }

    #[test]
    fn injected_events_drive_the_engine() {
        let mut s = tiny(PlacementStrategy::FirstFit);
        s.target_events = 1; // minimal pre-generated trace
        let mut sim = FleetSim::new(s).unwrap();
        sim.inject(
            0,
            900,
            EventKind::Arrive {
                mem_bytes: 64 << 20,
                vcpus: 2,
                lifetime: 50,
            },
        );
        sim.inject(10, 900, EventKind::Slice { ops: 200 });
        while sim.step().unwrap() {}
        assert!(sim.stats().slices >= 1);
        assert_eq!(sim.stats().violations_total, 0);
        assert_eq!(sim.live_vms(), 0, "departures must drain the fleet");
    }
}
