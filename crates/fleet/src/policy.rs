//! Admission control: group-aware placement with deferral.
//!
//! The placement *strategy* itself lives in the hypervisor
//! ([`numa::PlacementStrategy`], applied by `pick_nodes`); this module
//! wraps it with cloud-style admission mechanics — a bounded FIFO of
//! deferred requests retried on every departure, and per-outcome
//! accounting.

use siloz::{Hypervisor, SilozError, VmHandle, VmSpec};
use std::collections::VecDeque;

/// A tenant's VM request, queued until capacity frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingVm {
    /// Tenant id (names the VM's control group, `t{tenant}`).
    pub tenant: u32,
    /// Requested guest RAM, bytes.
    pub mem_bytes: u64,
    /// Requested vCPUs.
    pub vcpus: u32,
    /// Lifetime in ticks, counted from *admission*.
    pub lifetime: u64,
}

impl PendingVm {
    fn spec(&self) -> VmSpec {
        VmSpec::new(&format!("t{}", self.tenant), self.vcpus, self.mem_bytes)
    }
}

/// Admission controller with a bounded deferred queue.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    deferred: VecDeque<PendingVm>,
    cap: usize,
    /// Requests admitted on first try.
    pub admitted: u64,
    /// Requests admitted after deferral.
    pub deferred_admits: u64,
    /// Capacity rejections observed (each one defers the request).
    pub rejections: u64,
    /// Deferred requests dropped because the queue overflowed.
    pub abandoned: u64,
}

impl AdmissionControl {
    /// Creates a controller whose deferred queue holds up to `cap`
    /// requests.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            ..Self::default()
        }
    }

    /// Tries to admit `vm` now; on a capacity rejection the request joins
    /// the deferred queue (abandoning the oldest entry if full) and `None`
    /// is returned. Non-capacity errors propagate.
    ///
    /// Capacity exhaustion surfaces as `InsufficientCapacity` under Siloz
    /// (group accounting) but as a raw allocator `Numa` error under the
    /// baseline hypervisor; both defer (`create_vm` rolls back partial
    /// allocations on failure).
    pub fn admit_or_defer(
        &mut self,
        hv: &mut Hypervisor,
        vm: PendingVm,
    ) -> Result<Option<VmHandle>, SilozError> {
        match hv.create_vm(vm.spec()) {
            Ok(handle) => {
                self.admitted += 1;
                Ok(Some(handle))
            }
            Err(SilozError::InsufficientCapacity { .. } | SilozError::Numa(_)) => {
                self.rejections += 1;
                if self.deferred.len() == self.cap {
                    self.deferred.pop_front();
                    self.abandoned += 1;
                }
                self.deferred.push_back(vm);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Tries to admit `vm` now, *without* deferral: a capacity rejection
    /// is counted and reported as `None`, leaving retry policy to the
    /// caller. This is the admission primitive for an external (cluster)
    /// scheduler, which runs its own placement retries across hosts and
    /// must not park requests in a host-local queue.
    pub fn admit_now(
        &mut self,
        hv: &mut Hypervisor,
        vm: PendingVm,
    ) -> Result<Option<VmHandle>, SilozError> {
        match hv.create_vm(vm.spec()) {
            Ok(handle) => {
                self.admitted += 1;
                Ok(Some(handle))
            }
            Err(SilozError::InsufficientCapacity { .. } | SilozError::Numa(_)) => {
                self.rejections += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Retries the deferred queue head-first after capacity freed up,
    /// admitting as many requests as now fit (strict FIFO: the first
    /// still-unplaceable request stops the scan, preserving arrival
    /// fairness). Returns the newly admitted VMs.
    pub fn retry_deferred(
        &mut self,
        hv: &mut Hypervisor,
    ) -> Result<Vec<(PendingVm, VmHandle)>, SilozError> {
        let mut admitted = Vec::new();
        while let Some(vm) = self.deferred.front().copied() {
            match hv.create_vm(vm.spec()) {
                Ok(handle) => {
                    self.deferred.pop_front();
                    self.deferred_admits += 1;
                    admitted.push((vm, handle));
                }
                Err(SilozError::InsufficientCapacity { .. } | SilozError::Numa(_)) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(admitted)
    }

    /// Requests currently parked in the deferred queue.
    #[must_use]
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siloz::{HypervisorKind, SilozConfig};

    fn pending(tenant: u32, mem: u64) -> PendingVm {
        PendingVm {
            tenant,
            mem_bytes: mem,
            vcpus: 2,
            lifetime: 100,
        }
    }

    #[test]
    fn deferral_then_retry_after_departure() {
        // Mini machine: 7 guest groups × 128 MiB. Three 256 MiB VMs claim
        // 6 groups; a fourth defers, then lands once one departs.
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let mut ctl = AdmissionControl::new(4);
        let a = ctl
            .admit_or_defer(&mut hv, pending(0, 256 << 20))
            .unwrap()
            .unwrap();
        for t in 1..3 {
            ctl.admit_or_defer(&mut hv, pending(t, 256 << 20))
                .unwrap()
                .unwrap();
        }
        assert!(ctl
            .admit_or_defer(&mut hv, pending(3, 256 << 20))
            .unwrap()
            .is_none());
        assert_eq!(
            (ctl.admitted, ctl.rejections, ctl.deferred_len()),
            (3, 1, 1)
        );
        assert!(ctl.retry_deferred(&mut hv).unwrap().is_empty());
        hv.destroy_vm(a).unwrap();
        let back = ctl.retry_deferred(&mut hv).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0.tenant, 3);
        assert_eq!(ctl.deferred_admits, 1);
        assert_eq!(ctl.deferred_len(), 0);
    }

    #[test]
    fn overflow_abandons_the_oldest_request() {
        let mut hv = Hypervisor::boot(SilozConfig::mini(), HypervisorKind::Siloz).unwrap();
        let mut ctl = AdmissionControl::new(2);
        // Fill the machine so everything else defers.
        for t in 0..3 {
            ctl.admit_or_defer(&mut hv, pending(t, 256 << 20)).unwrap();
        }
        for t in 10..13 {
            assert!(ctl
                .admit_or_defer(&mut hv, pending(t, 512 << 20))
                .unwrap()
                .is_none());
        }
        assert_eq!(ctl.deferred_len(), 2);
        assert_eq!(ctl.abandoned, 1);
    }
}
