//! Scenario model: seeded stochastic generation of multi-tenant lifecycle
//! traces (§8 churn experiments).
//!
//! A [`Scenario`] fixes the host configuration, the admission
//! [`PlacementStrategy`], and the distributions; [`generate_trace`] expands
//! it into a deterministic event list. Departures are *not* pre-generated:
//! the engine schedules each one at admission time (`admitted_at +
//! lifetime`), so deferred admissions still get their full lifetime.

use numa::PlacementStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use siloz::SilozConfig;

/// 2 MiB — the huge-page granularity VM sizes are rounded to.
pub const HUGE_PAGE_BYTES: u64 = 2 << 20;

/// How thoroughly the engine re-proves isolation at event boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Maintain a dense group→tenant ownership map and re-check only the
    /// groups/blocks the event touched (full proofs still run every
    /// [`Scenario::proof_period`] events and at the end).
    #[default]
    Incremental,
    /// Run the full [`analysis::isolation::verify_live_placements`] proof
    /// after *every* event. Quadratic-ish and slow; the perfsuite baseline.
    FullProof,
    /// Skip every isolation check, including the final proof. The event
    /// history is identical (checks never steer the simulation), but no
    /// violations can be detected — this exists solely as the perfsuite's
    /// perf floor so the checking cost can be measured differentially.
    /// Never use it in a gate that asserts `clean()`.
    Off,
}

/// What happens at an event boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A tenant requests a VM.
    Arrive {
        /// Requested guest RAM in bytes (2 MiB-aligned).
        mem_bytes: u64,
        /// Requested vCPUs.
        vcpus: u32,
        /// Lifetime in ticks from admission to departure.
        lifetime: u64,
    },
    /// The tenant's VM is destroyed (scheduled dynamically at admission).
    Depart,
    /// The tenant's VM grows by `extra_bytes` (a growth burst).
    Expand {
        /// Extra guest RAM in bytes (2 MiB-aligned).
        extra_bytes: u64,
    },
    /// The tenant runs a workload slice through the memory controller.
    Slice {
        /// Memory operations in the slice.
        ops: u32,
    },
    /// The tenant turns aggressor: a Blacksmith campaign from inside its VM.
    Attack,
    /// Host-initiated defragmentation sweep (`migrate_block` rotation).
    Defrag,
}

/// One discrete event. Ordered by `(at, seq)`; `seq` is the global
/// generation order, which breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time (ticks).
    pub at: u64,
    /// Tie-breaking sequence number (unique).
    pub seq: u64,
    /// Owning tenant id (`u32::MAX` for host events such as `Defrag`).
    pub tenant: u32,
    /// Payload.
    pub kind: EventKind,
}

/// Tenant id used for host-initiated events.
pub const HOST_TENANT: u32 = u32::MAX;

/// A full churn scenario: host config + distributions + checking policy.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Hypervisor boot configuration.
    pub config: SilozConfig,
    /// Admission placement strategy.
    pub strategy: PlacementStrategy,
    /// Master seed; every stream derives from it.
    pub seed: u64,
    /// Events to pre-generate (departures come on top, at runtime).
    pub target_events: u32,
    /// Mean inter-arrival gap in ticks (exponential).
    pub mean_interarrival: f64,
    /// Mean VM lifetime in ticks (exponential).
    pub mean_lifetime: f64,
    /// Smallest VM RAM request, bytes.
    pub vm_bytes_min: u64,
    /// Largest VM RAM request, bytes (log-uniform between min and max).
    pub vm_bytes_max: u64,
    /// vCPUs drawn uniformly from `1..=max_vcpus`.
    pub max_vcpus: u32,
    /// Probability an arriving VM schedules a growth burst.
    pub expand_prob: f64,
    /// Growth burst size as a fraction of the original request.
    pub expand_frac: f64,
    /// Workload slices scheduled per VM.
    pub slices_per_vm: u32,
    /// Memory operations per slice.
    pub slice_ops: u32,
    /// Working-set bytes a slice touches (must be ≤ `vm_bytes_min`).
    pub slice_working_set: u64,
    /// Ticks between defragmentation sweeps (0 disables them).
    pub defrag_period: u64,
    /// Blocks migrated per defragmentation sweep.
    pub defrag_per_sweep: u32,
    /// Probability an arriving VM turns aggressor mid-life.
    pub attack_prob: f64,
    /// Extra nanoseconds attack campaigns hold aggressor rows open beyond
    /// the nominal tRAS (RowPress dwell, §2.5). 0 is classic Rowhammer;
    /// large values amplify per-ACT disturbance so rows can flip *below*
    /// ACT-counting blacklist thresholds — the arena uses this to probe
    /// throttling defenses' blind spot.
    pub attack_open_ns: u64,
    /// Whether the host answers attacks with a Copy-on-Flip pass for a
    /// colocated victim (§3).
    pub copy_on_flip: bool,
    /// Cap on blocks migrated per Copy-on-Flip response.
    pub cof_max_migrations: usize,
    /// Deferred-admission queue capacity (oldest request is abandoned when
    /// it overflows).
    pub defer_cap: usize,
    /// Boundary-checking policy.
    pub check: CheckMode,
    /// Events between full isolation proofs in incremental mode.
    pub proof_period: u32,
    /// The RowHammer defense the host deploys. [`mitigation::Backend::Siloz`]
    /// (the default) boots the Siloz hypervisor and proves domain isolation;
    /// `None` and the controller-level rivals boot the shared baseline, with
    /// rivals installing their per-ACT hook into attack campaigns.
    pub mitigation: mitigation::Backend,
}

impl Scenario {
    /// A small scenario on the mini machine (1 GiB, 7 guest groups): ~2k
    /// pre-generated events with enough memory pressure to exercise
    /// rejection, deferral, and defragmentation. The `scripts/check.sh`
    /// hard gate.
    #[must_use]
    pub fn quick(seed: u64, strategy: PlacementStrategy) -> Self {
        Self {
            config: SilozConfig::mini(),
            strategy,
            seed,
            target_events: 2_000,
            mean_interarrival: 40.0,
            mean_lifetime: 300.0,
            vm_bytes_min: 32 << 20,
            vm_bytes_max: 160 << 20,
            max_vcpus: 4,
            expand_prob: 0.25,
            expand_frac: 0.5,
            slices_per_vm: 2,
            slice_ops: 1_500,
            slice_working_set: 4 << 20,
            defrag_period: 300,
            defrag_per_sweep: 4,
            attack_prob: 0.03,
            attack_open_ns: 0,
            copy_on_flip: true,
            cof_max_migrations: 4,
            defer_cap: 16,
            check: CheckMode::Incremental,
            proof_period: 250,
            mitigation: mitigation::Backend::Siloz,
        }
    }

    /// The full soak scenario on the evaluation machine (Table 2): ≥5k
    /// pre-generated events, 768 MiB–3 GiB VMs across two sockets.
    #[must_use]
    pub fn soak(seed: u64, strategy: PlacementStrategy) -> Self {
        Self {
            config: SilozConfig::evaluation(),
            strategy,
            seed,
            target_events: 5_000,
            mean_interarrival: 30.0,
            mean_lifetime: 600.0,
            vm_bytes_min: 768 << 20,
            vm_bytes_max: 3 << 30,
            max_vcpus: 8,
            expand_prob: 0.2,
            expand_frac: 0.5,
            slices_per_vm: 2,
            slice_ops: 2_000,
            slice_working_set: 8 << 20,
            defrag_period: 400,
            defrag_per_sweep: 4,
            attack_prob: 0.008,
            attack_open_ns: 0,
            copy_on_flip: true,
            cof_max_migrations: 4,
            defer_cap: 32,
            check: CheckMode::Incremental,
            proof_period: 500,
            mitigation: mitigation::Backend::Siloz,
        }
    }
}

/// Samples an exponential with the given mean via inversion.
fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

/// Samples a log-uniform VM size in `[min, max]`, rounded up to 2 MiB.
fn vm_size<R: Rng>(rng: &mut R, min: u64, max: u64) -> u64 {
    let r: f64 = rng.gen();
    let ratio = max as f64 / min as f64;
    let raw = (min as f64 * ratio.powf(r)) as u64;
    let rounded = raw.div_ceil(HUGE_PAGE_BYTES) * HUGE_PAGE_BYTES;
    rounded.clamp(min, max)
}

/// Expands a scenario into its pre-generated event list, sorted by
/// `(at, seq)`. Returns the events and the next free sequence number (the
/// engine keeps numbering from there for dynamically scheduled events).
///
/// Arrivals form a Poisson process (exponential inter-arrival gaps); each
/// arrival may carry follow-on events (growth burst, workload slices, an
/// attack) placed at fractions of its nominal lifetime. Host
/// defragmentation sweeps tick at a fixed period across the horizon.
#[must_use]
pub fn generate_trace(s: &Scenario) -> (Vec<Event>, u64) {
    let mut rng = StdRng::seed_from_u64(s.seed);
    let mut events: Vec<Event> = Vec::new();
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    let mut tenant = 0u32;
    while events.len() < s.target_events as usize {
        clock += exp_sample(&mut rng, s.mean_interarrival);
        let at = clock as u64;
        let mem_bytes = vm_size(&mut rng, s.vm_bytes_min, s.vm_bytes_max);
        let vcpus = rng.gen_range(1..=s.max_vcpus);
        let lifetime = exp_sample(&mut rng, s.mean_lifetime) as u64 + 1;
        events.push(Event {
            at,
            seq,
            tenant,
            kind: EventKind::Arrive {
                mem_bytes,
                vcpus,
                lifetime,
            },
        });
        seq += 1;
        if rng.gen_bool(s.expand_prob) {
            let frac: f64 = rng.gen_range(0.3..0.8);
            let raw = (mem_bytes as f64 * s.expand_frac) as u64;
            let extra_bytes = raw.div_ceil(HUGE_PAGE_BYTES).max(1) * HUGE_PAGE_BYTES;
            events.push(Event {
                at: at + (lifetime as f64 * frac) as u64,
                seq,
                tenant,
                kind: EventKind::Expand { extra_bytes },
            });
            seq += 1;
        }
        for _ in 0..s.slices_per_vm {
            let frac: f64 = rng.gen_range(0.05..0.95);
            events.push(Event {
                at: at + (lifetime as f64 * frac) as u64,
                seq,
                tenant,
                kind: EventKind::Slice { ops: s.slice_ops },
            });
            seq += 1;
        }
        if rng.gen_bool(s.attack_prob) {
            let frac: f64 = rng.gen_range(0.2..0.9);
            events.push(Event {
                at: at + (lifetime as f64 * frac) as u64,
                seq,
                tenant,
                kind: EventKind::Attack,
            });
            seq += 1;
        }
        tenant += 1;
    }
    if s.defrag_period > 0 {
        let horizon = events.iter().map(|e| e.at).max().unwrap_or(0);
        let mut at = s.defrag_period;
        while at <= horizon {
            events.push(Event {
                at,
                seq,
                tenant: HOST_TENANT,
                kind: EventKind::Defrag,
            });
            seq += 1;
            at += s.defrag_period;
        }
    }
    events.sort_by_key(|e| (e.at, e.seq));
    (events, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_deterministic() {
        let s = Scenario::quick(7, PlacementStrategy::FirstFit);
        let (a, na) = generate_trace(&s);
        let (b, nb) = generate_trace(&s);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert!(a.len() >= s.target_events as usize);
    }

    #[test]
    fn trace_is_sorted_with_unique_seqs() {
        let (events, next) = generate_trace(&Scenario::quick(3, PlacementStrategy::BestFit));
        let mut seen = std::collections::BTreeSet::new();
        for w in events.windows(2) {
            assert!((w[0].at, w[0].seq) < (w[1].at, w[1].seq));
        }
        for e in &events {
            assert!(e.seq < next);
            assert!(seen.insert(e.seq), "duplicate seq {}", e.seq);
        }
    }

    #[test]
    fn vm_sizes_are_huge_page_aligned_and_bounded() {
        let s = Scenario::quick(11, PlacementStrategy::FirstFit);
        let (events, _) = generate_trace(&s);
        let mut arrivals = 0;
        for e in &events {
            if let EventKind::Arrive { mem_bytes, .. } = e.kind {
                arrivals += 1;
                assert_eq!(mem_bytes % HUGE_PAGE_BYTES, 0);
                assert!(mem_bytes >= s.vm_bytes_min && mem_bytes <= s.vm_bytes_max);
            }
        }
        assert!(arrivals > 100, "quick scenario must churn many tenants");
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = generate_trace(&Scenario::quick(1, PlacementStrategy::FirstFit)).0;
        let b = generate_trace(&Scenario::quick(2, PlacementStrategy::FirstFit)).0;
        assert_ne!(a, b);
    }
}
