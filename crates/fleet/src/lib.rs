//! Multi-tenant fleet churn simulation for the Siloz reproduction (§8).
//!
//! The paper evaluates Siloz under static colocation; this crate asks the
//! operational question a cloud operator would: does the one-VM-per-group
//! invariant survive *churn* — thousands of arrivals, departures, growth
//! bursts, defragmentation migrations, and injected Rowhammer campaigns —
//! under different group-aware admission policies?
//!
//! A [`Scenario`] (seed + distributions + [`numa::PlacementStrategy`])
//! expands into a deterministic event trace; [`FleetSim`] drains it
//! against a live [`siloz::Hypervisor`], proving zero cross-VM
//! subarray-group sharing at every event boundary. [`run_fleet_observed`]
//! instruments a run with [`telemetry`]; `bench`'s `fleet_soak` binary
//! fans scenarios across seeds and policies via [`sim::engine::run_cells`]
//! and emits `FLEET_soak.json`.

#![forbid(unsafe_code)]

pub mod engine;
pub mod events;
pub mod policy;
pub mod queue;
pub mod report;

pub use engine::{run_fleet, run_fleet_observed, FleetSim, FleetStats};
pub use events::{generate_trace, CheckMode, Event, EventKind, Scenario, HOST_TENANT};
pub use policy::{AdmissionControl, PendingVm};
pub use queue::EventQueue;
pub use report::{write_reports, FleetReport};
