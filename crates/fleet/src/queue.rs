//! Flat binary-heap event queue — the engine's hot path.
//!
//! Every simulated event passes through here once on push and once on pop,
//! so the queue is a plain `Vec`-backed binary min-heap ordered by
//! `(at, seq)`: no hashing, no per-access allocation, one sift walk per
//! operation. Dynamic events (departures, deferred re-admissions) receive
//! fresh sequence numbers so ordering stays total and deterministic.

use crate::events::{Event, EventKind};

/// Min-heap of events keyed on `(at, seq)`.
#[derive(Debug)]
pub struct EventQueue {
    heap: Vec<Event>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl EventQueue {
    /// Builds a queue from a pre-generated trace. `next_seq` must be larger
    /// than every sequence number in `events` (as returned by
    /// [`crate::events::generate_trace`]).
    #[must_use]
    pub fn new(events: Vec<Event>, next_seq: u64) -> Self {
        let pushed = events.len() as u64;
        let mut q = Self {
            heap: events,
            next_seq,
            pushed,
            popped: 0,
        };
        let n = q.heap.len();
        for i in (0..n / 2).rev() {
            q.sift_down(i);
        }
        q
    }

    /// Schedules a dynamic event at time `at`, assigning it the next
    /// sequence number (so it sorts after anything generated earlier for
    /// the same tick).
    pub fn push(&mut self, at: u64, tenant: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Event {
            at,
            seq,
            tenant,
            kind,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let out = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        self.popped += 1;
        out
    }

    /// Events currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever enqueued (trace + dynamic).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events dequeued so far.
    #[must_use]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ea, eb) = (&self.heap[a], &self.heap[b]);
        (ea.at, ea.seq) < (eb.at, eb.seq)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, seq: u64) -> Event {
        Event {
            at,
            seq,
            tenant: 0,
            kind: EventKind::Defrag,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let events = [ev(5, 0), ev(1, 1), ev(5, 2), ev(0, 3), ev(1, 4)];
        let mut q = EventQueue::new(events.to_vec(), 5);
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at, e.seq))
            .collect();
        assert_eq!(order, [(0, 3), (1, 1), (1, 4), (5, 0), (5, 2)]);
        assert_eq!(q.total_popped(), 5);
    }

    #[test]
    fn dynamic_pushes_interleave_correctly() {
        let mut q = EventQueue::new(vec![ev(10, 0)], 1);
        q.push(3, 7, EventKind::Depart);
        q.push(10, 8, EventKind::Depart);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().at, 3);
        // Same tick: the trace event (seq 0) beats the dynamic one (seq 2).
        let next = q.pop().unwrap();
        assert_eq!((next.at, next.seq), (10, 0));
        assert_eq!(q.pop().unwrap().tenant, 8);
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn heap_matches_sorting_on_a_large_shuffled_trace() {
        // Deterministic pseudo-shuffle via a multiplicative hash.
        let events: Vec<Event> = (0u64..999)
            .map(|i| ev(i.wrapping_mul(2654435761) % 128, i))
            .collect();
        let mut expect: Vec<(u64, u64)> = events.iter().map(|e| (e.at, e.seq)).collect();
        expect.sort_unstable();
        let mut q = EventQueue::new(events, 999);
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at, e.seq))
            .collect();
        assert_eq!(got, expect);
    }
}
