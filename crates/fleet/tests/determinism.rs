//! Fleet determinism battery: fanning churn scenarios across worker
//! threads must not change a single deterministic bit.
//!
//! Cells (seed × placement strategy) run through
//! [`sim::run_cells_observed`] at 1, 2, and 7 workers — the same counts
//! the `SILOZ_THREADS` battery uses elsewhere — all exporting into one
//! shared registry. Reports must match exactly and the deterministic
//! telemetry snapshot must be bit-identical.

use fleet::{run_fleet_observed, FleetReport, Scenario};
use numa::PlacementStrategy;
use sim::run_cells_observed;
use telemetry::Registry;

/// A trimmed quick scenario so the 3×-thread battery stays fast.
fn cell_scenario(idx: usize) -> Scenario {
    let strategy = PlacementStrategy::ALL[idx % 3];
    let seed = 100 + (idx / 3) as u64;
    let mut s = Scenario::quick(seed, strategy);
    s.target_events = 150;
    s.attack_prob = 0.03;
    s
}

fn battery(threads: usize) -> (String, Vec<FleetReport>) {
    let reg = Registry::new();
    let reports: Vec<FleetReport> = run_cells_observed(6, threads, &reg, |idx| {
        run_fleet_observed(cell_scenario(idx), &reg).expect("fleet cell")
    });
    (reg.snapshot().deterministic().to_json(), reports)
}

#[test]
fn fleet_telemetry_is_thread_count_invariant() {
    let (ref_json, ref_reports) = battery(1);
    for r in &ref_reports {
        assert!(r.clean(), "isolation violated: {r:?}");
        assert!(r.events_processed >= 150);
    }
    assert!(
        ref_json.contains("isolation_checks"),
        "fleet metrics missing from snapshot"
    );
    for threads in [2, 7] {
        let (json, reports) = battery(threads);
        assert_eq!(
            ref_reports, reports,
            "fleet reports diverged at {threads} threads"
        );
        assert_eq!(
            ref_json, json,
            "deterministic telemetry diverged at {threads} threads"
        );
    }
}

#[test]
fn strategies_actually_differ() {
    // The three policies are distinct placements, not aliases: over the
    // same seed they should not all produce identical runs.
    let runs: Vec<String> = PlacementStrategy::ALL
        .iter()
        .map(|&strategy| {
            let mut s = Scenario::quick(42, strategy);
            s.target_events = 200;
            s.attack_prob = 0.0;
            format!("{:?}", fleet::run_fleet(s).expect("run"))
        })
        .collect();
    assert!(
        runs[0] != runs[1] || runs[0] != runs[2],
        "all three strategies behaved identically"
    );
}
