//! Property test (fleet admission invariant): for *arbitrary* event traces
//! under *every* placement policy, no two live VMs' unmediated backing
//! blocks may ever resolve to the same subarray group.
//!
//! The trace drives [`fleet::FleetSim`] directly through its injection
//! API; the invariant is re-proved with the isolation-verify machinery
//! ([`analysis::isolation::verify_live_placements`]) both mid-run — while
//! VMs are still live — and after the queue fully drains.

use analysis::isolation::verify_live_placements;
use fleet::{EventKind, FleetSim, Scenario};
use numa::PlacementStrategy;
use proptest::prelude::*;

/// Builds a mini-host simulator with an empty pre-generated trace.
fn empty_sim(strategy: PlacementStrategy) -> FleetSim {
    let mut s = Scenario::quick(9, strategy);
    s.target_events = 0;
    s.attack_prob = 0.0;
    FleetSim::new(s).expect("boot")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `(kind, target, mib, vcpus)` tuples decode into arrive / depart /
    /// expand / slice events; whatever the interleaving, every event
    /// boundary and the final state uphold group exclusivity under all
    /// three policies.
    #[test]
    fn arbitrary_traces_never_share_groups(
        ops in prop::collection::vec(
            (0u8..4, any::<prop::sample::Index>(), 16u64..200, 1u32..4),
            1..28,
        ),
    ) {
        for strategy in PlacementStrategy::ALL {
            let mut sim = empty_sim(strategy);
            let mut arrivals: u32 = 0;
            for (i, &(kind, target, mib, vcpus)) in ops.iter().enumerate() {
                let at = i as u64 * 10;
                // Lifetimes park dynamic departures far past the injected
                // trace, so the mid-run proof sees a populated fleet.
                match kind {
                    0 => {
                        sim.inject(at, arrivals, EventKind::Arrive {
                            mem_bytes: mib << 20,
                            vcpus,
                            lifetime: 50_000,
                        });
                        arrivals += 1;
                    }
                    1 => sim.inject(
                        at,
                        target.index(arrivals.max(1) as usize) as u32,
                        EventKind::Depart,
                    ),
                    2 => sim.inject(
                        at,
                        target.index(arrivals.max(1) as usize) as u32,
                        EventKind::Expand { extra_bytes: (mib / 4 + 2) << 20 },
                    ),
                    _ => sim.inject(
                        at,
                        target.index(arrivals.max(1) as usize) as u32,
                        EventKind::Slice { ops: 300 },
                    ),
                }
            }
            // Process exactly the injected events (their timestamps all
            // precede the scheduled departures), then prove isolation on
            // the live fleet.
            for _ in 0..ops.len() {
                prop_assert!(sim.step().expect("step"));
            }
            let live = sim.live_vms() as u64;
            let proof = verify_live_placements(sim.hypervisor());
            prop_assert!(proof.passed(), "{strategy:?}: {:?}", proof.violations);
            prop_assert_eq!(proof.vms, live);
            // Drain the scheduled departures; the run must finish clean
            // and empty.
            let report = sim.run_to_completion().expect("drain");
            prop_assert_eq!(report.violations_total, 0, "{:?}", report.violation_samples);
            prop_assert_eq!(sim.live_vms(), 0);
            let end = verify_live_placements(sim.hypervisor());
            prop_assert!(end.passed());
            prop_assert_eq!(end.group_claims, 0, "claims must drain with the fleet");
        }
    }
}
