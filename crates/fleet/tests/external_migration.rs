//! Externally-driven migration and the incremental §4.1 prover.
//!
//! A cluster scheduler migrates a sandbox by calling
//! [`FleetSim::depart_external`] on the source host and
//! [`FleetSim::admit_external`] on the destination. These tests pin the
//! regression the cluster engine depends on: the external hooks must
//! maintain the incremental checker's state — ownership map, dirty set,
//! cached claims — exactly like the internal arrival/departure events
//! do, so a migration costs boundary checks, never a forced full proof,
//! and a shared [`sim::TraceCache`] lets the destination re-bind the
//! guest's compiled ledger instead of recompiling it.

use fleet::{CheckMode, EventKind, FleetSim, PendingVm, Scenario};
use numa::PlacementStrategy;
use std::sync::Arc;

/// An externally-driven host: empty internal trace, incremental
/// checking, no periodic full proofs (so any full proof in the test is
/// one the test asked for), no host-local noise.
fn host_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed, PlacementStrategy::FirstFit);
    s.target_events = 0;
    s.defrag_period = 0;
    s.attack_prob = 0.0;
    s.copy_on_flip = false;
    s.slice_ops = 96;
    s.slice_working_set = 1 << 20;
    s.check = CheckMode::Incremental;
    s.proof_period = 1_000_000;
    s
}

fn vm(tenant: u32) -> PendingVm {
    PendingVm {
        tenant,
        mem_bytes: 64 << 20,
        vcpus: 2,
        lifetime: 1_000,
    }
}

#[test]
fn migration_is_depart_plus_admit_and_stays_incremental() {
    let cache = Arc::new(sim::TraceCache::new());
    let mut src = FleetSim::new(host_scenario(41)).unwrap();
    let mut dst = FleetSim::new(host_scenario(41)).unwrap();
    src.set_trace_cache(Arc::clone(&cache));
    dst.set_trace_cache(Arc::clone(&cache));

    let tenant = 7u32;
    src.admit_external(vm(tenant)).unwrap().expect("admitted");
    src.inject(10, tenant, EventKind::Slice { ops: 96 });
    src.step_until(10).unwrap();
    assert_eq!(src.stats().slices, 1);
    assert_eq!(src.stats().ledger_compiles, 1, "first slice compiles");

    let checks_before = (
        src.stats().incremental_checks,
        dst.stats().incremental_checks,
    );
    let proofs_before = (src.stats().full_proofs, dst.stats().full_proofs);

    // The migration itself: depart on the source, re-admit on the
    // destination under a fresh domain claim.
    assert!(src.depart_external(tenant).unwrap(), "tenant was live");
    assert!(!src.is_live(tenant));
    dst.admit_external(vm(tenant))
        .unwrap()
        .expect("re-admitted");
    assert!(dst.is_live(tenant));
    assert_eq!(dst.live_tenants(), vec![tenant]);

    // Incremental: the re-admission ran a boundary check on the
    // destination; neither host was forced into a full proof.
    assert_eq!(
        (src.stats().full_proofs, dst.stats().full_proofs),
        proofs_before,
        "migration must not force a full proof"
    );
    assert_eq!(src.stats().incremental_checks, checks_before.0);
    assert!(
        dst.stats().incremental_checks > checks_before.1,
        "re-admission must run the boundary check"
    );

    // The destination re-binds the compiled ledger from the shared
    // cache: one compile fleet-wide, two binds.
    dst.inject(20, tenant, EventKind::Slice { ops: 96 });
    dst.step_until(20).unwrap();
    assert_eq!(dst.stats().slices, 1);
    assert_eq!(
        src.stats().ledger_compiles + dst.stats().ledger_compiles,
        1,
        "migrated guest must re-bind, not recompile"
    );
    assert_eq!(dst.stats().program_binds, 1);

    // A second slice on an unchanged destination tenant rides the
    // clean-tenant fast path.
    let fast_before = dst.stats().incremental_fast_checks;
    dst.inject(30, tenant, EventKind::Slice { ops: 96 });
    dst.step_until(30).unwrap();
    assert!(
        dst.stats().incremental_fast_checks > fast_before,
        "second slice after migration must hit the fast path"
    );

    // And the §4.1 invariant holds on both ends.
    src.full_proof_now();
    dst.full_proof_now();
    assert_eq!(src.stats().violations_total, 0);
    assert_eq!(dst.stats().violations_total, 0);
}

#[test]
fn external_depart_releases_incremental_state_like_internal() {
    // Same single-host history driven twice: once with the internal
    // Arrive/Depart events, once with the external hooks. The
    // incremental prover must end in the same state — same check
    // counts, same claims — and the groups freed by an external depart
    // must be re-claimable without tripping the checker.
    let run = |external: bool| {
        let mut sim = FleetSim::new(host_scenario(43)).unwrap();
        let a = 1u32;
        let b = 2u32;
        if external {
            sim.admit_external(vm(a)).unwrap().expect("admitted");
            sim.depart_external(a).unwrap();
            sim.admit_external(vm(b)).unwrap().expect("admitted");
        } else {
            sim.inject(
                0,
                a,
                EventKind::Arrive {
                    mem_bytes: 64 << 20,
                    vcpus: 2,
                    lifetime: 5,
                },
            );
            sim.inject(
                10,
                b,
                EventKind::Arrive {
                    mem_bytes: 64 << 20,
                    vcpus: 2,
                    lifetime: 1_000,
                },
            );
            sim.step_until(10).unwrap();
        }
        assert!(!sim.is_live(a));
        assert!(sim.is_live(b));
        sim.full_proof_now();
        let s = sim.stats();
        (
            s.incremental_checks,
            s.incremental_fast_checks,
            s.full_proofs,
            s.violations_total,
            s.departures,
        )
    };
    let internal = run(false);
    let external = run(true);
    assert_eq!(
        internal, external,
        "external lifecycle must leave the incremental prover in the internal path's state"
    );
    assert_eq!(internal.3, 0, "no violations either way");
}
